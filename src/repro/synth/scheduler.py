"""Validation scheduling: how one pop's candidate list gets validated.

Algorithm 1's inner loop — pop a worklist tuple, speculate candidate
rewrites, validate each against the trace, push the survivors — used to
live inline in :mod:`repro.synth.synthesizer`.  The *validation* half is
embarrassingly parallel: ``validate`` is a pure function of
``(candidate, tuple, context)`` whose only shared touch-point is the
execution engine, which is side-effect-free by construction (cache fills
replay identically).  This module makes the schedule an explicit seam:

:class:`SerialScheduler`
    The legacy inline loop, moved verbatim.  Byte-exact with the
    pre-scheduler synthesizer — the default, and the ablation baseline.

:class:`PoolScheduler`
    Validates the candidate list on a thread pool, then merges results
    back *in rank order* (the same smallest-statement-first order the
    serial loop consumes), applying the per-span rewrite cap and the
    worklist pushes on the coordinating thread only.  Synthesized
    programs are byte-identical to serial because every decision that
    depends on order — cap accounting, pushes, generalization checks —
    happens in the deterministic merge, never in the workers.

Determinism caveat: the two schedulers clip differently under a per-call
*timeout* (serial can stop mid-list; the pool completes a dispatched
batch), so byte-identity is guaranteed for calls that finish within
their deadline — the regime every parity test and bench runs in.

The pool dispatches in *waves* to respect the per-span rewrite cap
without serializing: each wave submits, per span still in play, only
the next few candidates the serial loop could possibly validate (the
cap-sized head, doubling per round so sparse-success spans converge in
O(log n) waves).  A span retires once its confirmed successes reach the
cap.  The only speculative work is the tail of the wave in which a span
hits its cap — bounded by the wave size — and candidate lists below
``min_batch`` skip the pool entirely: dispatching two futures for a
three-candidate list costs more than validating it inline.

Telemetry under the pool is merge-based: each worker records engine
counters into a private :class:`~repro.engine.cache.CacheCounters`
(:meth:`ExecutionEngine.worker_counters`) and the scheduler folds them
into the session totals at join, so ``hits == exact + prefix +
consistency`` holds exactly no matter how the work interleaved.  Index
builds forced inside workers are attributed to the synthesize call's
tracker via :func:`repro.engine.index.adopt_trackers`.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

from repro.analysis.feasibility import infeasible
from repro.engine import index as dom_index
from repro.obs import context as obs_context
from repro.obs import tracing as obs_tracing
from repro.synth.config import resolved_static_prune
from repro.synth.rewrite import RewriteTuple
from repro.synth.speculate import SpeculationContext, SRewrite
from repro.synth.validate import validate
from repro.util.timer import Deadline

#: ``push(rewritten)`` — the synthesizer's worklist/store insertion.
PushFn = Callable[[RewriteTuple], None]


def _static_prune(
    current: RewriteTuple,
    candidates: list[SRewrite],
    context: SpeculationContext,
    stats,
) -> None:
    """Drop candidates Algorithm 3 provably rejects, before any dispatch.

    Two sound refutations (see :mod:`repro.analysis.feasibility`): the
    tuple has no statement boundary ``>= end + 2`` for the matched
    slice to end on, or the candidate's emission NFA cannot
    prefix-match the ``bounds[end + 2] - bounds[start]`` recorded
    actions a successful validation must reproduce.  Both only fire
    where ``validate`` would certainly return ``None``, so the pushed
    tuples — and the synthesized programs — are byte-identical with
    pruning on or off; only the engine executions saved differ
    (``stats.pruned`` counts them).

    Runs on the coordinating thread for every scheduler (the pipeline
    prunes at submit time), in place, before ranking — a pruned
    candidate costs neither a rank key nor a wave slot.
    """
    if not candidates or not resolved_static_prune(context.config):
        return
    bounds = current.bounds
    last = len(bounds) - 1
    kept: list[SRewrite] = []
    for candidate in candidates:
        boundary = candidate.end + 2
        if boundary > last:
            stats.pruned += 1
            continue
        start_action = bounds[candidate.start]
        min_count = bounds[boundary] - start_action
        if infeasible(
            candidate.stmt,
            context.actions,
            context.snapshots,
            context.data,
            start_action,
            min_count,
        ):
            stats.pruned += 1
            continue
        kept.append(candidate)
    if len(kept) != len(candidates):
        candidates[:] = kept


def _rank_order(candidates: list[SRewrite], context: SpeculationContext) -> None:
    """Sort candidates smallest-statements-first within each span.

    Validating smallest statements first makes the per-span cap keep
    the most-parametrized (hence smallest) true rewrites — e.g. a loop
    whose body fully uses the loop variable beats one that kept a raw
    first-iteration selector.
    """
    candidates.sort(
        key=lambda item: (item.start, item.end, context.statement_size(item.stmt))
    )


class ValidationScheduler:
    """Strategy for draining one pop's candidate list through validate."""

    #: Worker count the scheduler actually uses (0 = inline/serial).
    workers: int = 0

    def process_pop(
        self,
        current: RewriteTuple,
        candidates: list[SRewrite],
        context: SpeculationContext,
        deadline: Deadline,
        stats,
        push: PushFn,
    ) -> None:
        """Validate ``candidates`` against ``current``; push survivors.

        Mutates ``stats`` (``validated``, ``validations``, ``pruned``,
        ``timed_out``) and calls ``push`` on the coordinating thread
        only.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release scheduler resources (worker threads)."""


class SerialScheduler(ValidationScheduler):
    """The legacy inline validation loop (byte-exact, the default)."""

    def process_pop(
        self,
        current: RewriteTuple,
        candidates: list[SRewrite],
        context: SpeculationContext,
        deadline: Deadline,
        stats,
        push: PushFn,
    ) -> None:
        _static_prune(current, candidates, context, stats)
        _rank_order(candidates, context)
        max_per_span = context.config.max_rewrites_per_span
        per_span: dict[tuple, int] = {}
        for candidate in candidates:
            if deadline.expired():
                stats.timed_out = True
                break
            span_key = (candidate.start, candidate.end)
            if per_span.get(span_key, 0) >= max_per_span:
                continue
            stats.validations += 1
            rewritten = validate(candidate, current, context)
            if rewritten is not None:
                per_span[span_key] = per_span.get(span_key, 0) + 1
                stats.validated += 1
                push(rewritten)


class PoolScheduler(ValidationScheduler):
    """Thread-pool validation with a deterministic rank-order merge.

    Each wave's batch is split into at most ``workers`` strided chunks
    (one future each — submission overhead stays O(workers) per wave,
    not O(candidates)) and results are written back by candidate index,
    so the final merge consumes them in exactly the serial loop's order.
    Workers only ever call ``validate``; wave planning, cap bookkeeping,
    stats, and pushes stay on the coordinating thread.

    The engine behind ``context`` must be concurrency-safe —
    :meth:`ExecutionEngine.for_config` backs any config with
    ``validation_workers > 0`` by a lock-striped
    :class:`~repro.engine.cache.SharedExecutionCache` (private or
    process-level) for exactly this reason.
    """

    def __init__(self, workers: int, min_batch: Optional[int] = None) -> None:
        if workers < 2:
            raise ValueError("PoolScheduler needs at least 2 workers")
        self.workers = workers
        #: Smallest candidate list worth dispatching; shorter lists run
        #: inline (dispatch latency would exceed the validation work).
        self.min_batch = max(2 * workers, 8) if min_batch is None else min_batch
        self._pool: Optional[ThreadPoolExecutor] = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-validate"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def process_pop(
        self,
        current: RewriteTuple,
        candidates: list[SRewrite],
        context: SpeculationContext,
        deadline: Deadline,
        stats,
        push: PushFn,
    ) -> None:
        if len(candidates) < self.min_batch:
            SerialScheduler.process_pop(
                self, current, candidates, context, deadline, stats, push
            )
            return
        if deadline.expired():
            stats.timed_out = True
            return
        _static_prune(current, candidates, context, stats)
        _rank_order(candidates, context)
        max_per_span = context.config.max_rewrites_per_span
        results, clipped, executed = self._validate_waves(
            current, candidates, context, deadline, max_per_span
        )
        stats.validations += executed
        if clipped:
            stats.timed_out = True

        # deterministic rank-order merge: cap accounting and pushes see
        # candidates in exactly the serial loop's order, so the pushed
        # tuples (and through them the synthesized programs) are
        # byte-identical to the serial schedule
        per_span: dict[tuple, int] = {}
        for candidate, rewritten in zip(candidates, results):
            if rewritten is None:
                continue
            span_key = (candidate.start, candidate.end)
            if per_span.get(span_key, 0) >= max_per_span:
                continue
            per_span[span_key] = per_span.get(span_key, 0) + 1
            stats.validated += 1
            push(rewritten)

    def _validate_waves(
        self,
        current: RewriteTuple,
        candidates: list[SRewrite],
        context: SpeculationContext,
        deadline: Deadline,
        max_per_span: int,
        sink=None,
    ) -> tuple[list, bool, int]:
        """Validate cap-eligible candidates; results by candidate index.

        The second element reports whether the deadline clipped the
        wave loop before every eligible candidate was dispatched; the
        third counts the engine validations actually executed (the
        number the caller adds to ``stats.validations``).

        Spans are worked head-first: a wave takes, per span still in
        play, the next ``cap - successes`` candidates scaled by a
        doubling factor (sparse-success spans converge in O(log n)
        waves), and a span retires once its successes reach the cap —
        the candidates never taken are exactly the ones the serial loop
        would have skipped.

        ``sink`` overrides where joined worker counters are folded
        (default: straight into the engine's session totals).  The
        pipelined scheduler passes its drain task's private counter
        merge here, so the session totals are only ever touched by the
        synthesizer's coordinating thread.
        """
        engine = context.engine
        absorb = engine.absorb_counters if sink is None else sink
        trackers = dom_index.current_trackers()
        # captured once so pool threads — which do not inherit the
        # submitting thread's contextvars — still stitch their spans
        # under the request's trace
        trace_ctx = obs_context.current()

        def run_chunk(chunk: Sequence[tuple[int, SRewrite]]):
            # workers re-check the deadline between candidates, so a
            # wave overruns the per-call budget by at most one validate
            # per worker — the serial loop's overrun, times the pool
            with dom_index.adopt_trackers(trackers), obs_tracing.span(
                "validate_chunk", ctx=trace_ctx, size=len(chunk)
            ):
                with engine.worker_counters() as counters:
                    validated = []
                    for index, item in chunk:
                        if deadline.expired():
                            break
                        validated.append((index, validate(item, current, context)))
                    return validated, counters, len(validated) < len(chunk)

        spans: dict[tuple, list[tuple[int, SRewrite]]] = {}
        for index, candidate in enumerate(candidates):
            spans.setdefault((candidate.start, candidate.end), []).append(
                (index, candidate)
            )
        position = {span: 0 for span in spans}
        successes = {span: 0 for span in spans}
        results: list = [None] * len(candidates)

        def recount_successes() -> None:
            # settle per-span accounting against the merged results —
            # run after *every* wave join, clipped ones included, so a
            # resumed wave loop can never re-take (and thereby
            # double-validate) candidates a merged result already
            # settled: stale `successes` would make `want` overshoot
            for span, members in spans.items():
                confirmed = 0
                for index, _ in members[: position[span]]:
                    if results[index] is not None:
                        confirmed += 1
                        if confirmed >= max_per_span:
                            break
                successes[span] = confirmed

        pool = self._executor()
        factor = 1
        clipped = False
        executed = 0
        wave = 0
        while True:
            if deadline.expired():
                # checked before the batch is carved so `position` never
                # advances past candidates that were never dispatched
                clipped = True
                break
            batch: list[tuple[int, SRewrite]] = []
            for span, members in spans.items():
                want = max_per_span - successes[span]
                if want <= 0:
                    continue
                start = position[span]
                take = members[start : start + want * factor]
                position[span] = start + len(take)
                batch.extend(take)
            if not batch:
                break
            wave += 1
            stride = min(self.workers, len(batch))
            with obs_tracing.span(
                "validate_wave", ctx=trace_ctx, wave=wave, batch=len(batch)
            ):
                futures = [
                    pool.submit(run_chunk, batch[offset::stride])
                    for offset in range(stride)
                ]
                wave_clipped = False
                for future in futures:
                    chunk_results, counters, chunk_clipped = future.result()
                    executed += len(chunk_results)
                    for index, rewritten in chunk_results:
                        results[index] = rewritten
                    absorb(counters)
                    wave_clipped = wave_clipped or chunk_clipped
            recount_successes()
            if wave_clipped:
                clipped = True
                break
            factor *= 2
        return results, clipped, executed


class PipelineScheduler(PoolScheduler):
    """Producer/consumer pipeline across worklist pops.

    :meth:`submit_pop` ranks the candidate list on the coordinating
    thread (the rank memos are not thread-safe) and hands the whole
    drain — validation, cap accounting, stats, pushes — to a dedicated
    single-thread *merge* executor, returning a future.  The
    synthesizer overlaps speculation of the predicted next pop with
    that drain, then joins via :meth:`drain_pop` before committing the
    next pop.

    Byte-identity with :class:`SerialScheduler` survives the overlap
    because nothing order-dependent moved: candidates are consumed in
    the same rank order, pushes happen before the next pop is chosen
    (the join is a barrier per pop), and the overlapped speculation is a
    pure function of the tuple it speculates on.  With ``workers >= 2``
    the drain thread dispatches validation waves to the worker pool
    (one extra hand-off, same wave machinery); below that it validates
    inline.

    Engine-counter discipline: the drain task runs inside its own
    :meth:`ExecutionEngine.worker_counters` scope and wave joins fold
    into that scope (the ``sink`` parameter of ``_validate_waves``), so
    the session totals are only ever mutated by the coordinating thread
    — at :meth:`drain_pop`, after the future resolves.
    """

    def __init__(self, workers: int = 0, min_batch: Optional[int] = None) -> None:
        # deliberately not PoolScheduler.__init__: the pipeline is
        # useful with zero validation workers (inline drain validation)
        self.workers = max(0, workers)
        self.min_batch = max(2 * self.workers, 8) if min_batch is None else min_batch
        self._pool = None
        self._merge: Optional[ThreadPoolExecutor] = None

    def _merger(self) -> ThreadPoolExecutor:
        if self._merge is None:
            self._merge = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-pipeline"
            )
        return self._merge

    def close(self) -> None:
        if self._merge is not None:
            self._merge.shutdown(wait=True)
            self._merge = None
        PoolScheduler.close(self)

    # ------------------------------------------------------------------
    def submit_pop(
        self,
        current: RewriteTuple,
        candidates: list[SRewrite],
        context: SpeculationContext,
        deadline: Deadline,
        stats,
        push: PushFn,
    ):
        """Start draining one pop; returns a future for :meth:`drain_pop`."""
        _static_prune(current, candidates, context, stats)
        _rank_order(candidates, context)
        engine = context.engine
        trackers = dom_index.current_trackers()
        max_per_span = context.config.max_rewrites_per_span
        use_pool = self.workers >= 2 and len(candidates) >= self.min_batch
        # the merge executor thread does not inherit contextvars: carry
        # the request's trace context into the drain explicitly
        trace_ctx = obs_context.current()

        def drain():
            started = time.perf_counter()
            with obs_context.use(trace_ctx), dom_index.adopt_trackers(trackers):
                with obs_tracing.span(
                    "drain_pop", candidates=len(candidates), pooled=use_pool
                ), engine.worker_counters() as counters:
                    if use_pool:
                        results, clipped, executed = self._validate_waves(
                            current,
                            candidates,
                            context,
                            deadline,
                            max_per_span,
                            sink=counters.merge,
                        )
                        stats.validations += executed
                        if clipped:
                            stats.timed_out = True
                        per_span: dict[tuple, int] = {}
                        for candidate, rewritten in zip(candidates, results):
                            if rewritten is None:
                                continue
                            span_key = (candidate.start, candidate.end)
                            if per_span.get(span_key, 0) >= max_per_span:
                                continue
                            per_span[span_key] = per_span.get(span_key, 0) + 1
                            stats.validated += 1
                            push(rewritten)
                    else:
                        self._drain_serial(
                            current, candidates, context, deadline,
                            max_per_span, stats, push,
                        )
            return counters, time.perf_counter() - started

        return self._merger().submit(drain)

    @staticmethod
    def _drain_serial(
        current, candidates, context, deadline, max_per_span, stats, push
    ) -> None:
        # SerialScheduler's loop minus the (already done) ranking — the
        # rank memos must never be touched off the coordinating thread
        per_span: dict[tuple, int] = {}
        for candidate in candidates:
            if deadline.expired():
                stats.timed_out = True
                break
            span_key = (candidate.start, candidate.end)
            if per_span.get(span_key, 0) >= max_per_span:
                continue
            stats.validations += 1
            rewritten = validate(candidate, current, context)
            if rewritten is not None:
                per_span[span_key] = per_span.get(span_key, 0) + 1
                stats.validated += 1
                push(rewritten)

    def drain_pop(self, handle, context: SpeculationContext, stats) -> None:
        """Join one pop's drain: absorb its counters, book its time."""
        counters, seconds = handle.result()
        context.engine.absorb_counters(counters)
        stats.validate_s += seconds

    def process_pop(
        self,
        current: RewriteTuple,
        candidates: list[SRewrite],
        context: SpeculationContext,
        deadline: Deadline,
        stats,
        push: PushFn,
    ) -> None:
        """Synchronous fallback: submit and immediately join (no overlap)."""
        self.drain_pop(
            self.submit_pop(current, candidates, context, deadline, stats, push),
            context,
            stats,
        )


def scheduler_for(workers: int) -> ValidationScheduler:
    """The scheduler implementing a resolved ``validation_workers`` count."""
    if workers > 1:
        return PoolScheduler(workers)
    return SerialScheduler()
