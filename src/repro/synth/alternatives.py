"""Selector search: the paper's ``AlternativeSelectors`` (§2, Figures 10/11).

Recorded actions use absolute child-axis XPaths; intended programs usually
need *other* selectors for the same nodes (attribute-anchored descendant
steps like ``//div[@class='locatorPhone'][1]``).  This module enumerates,
with bounds, the alternative ways a node can be addressed:

* :func:`node_predicates` — the predicates φ a node satisfies;
* :func:`relative_step_candidates` — step sequences from an ancestor to a
  descendant (used as loop-variable suffixes);
* :func:`decompositions` — ways to write a selector as
  ``prefix / step(φ, k) / suffix``, the shape anti-unification matches on;
* :func:`alternative_selectors` — whole-selector alternatives (used for
  while-loop clicks).

With ``use_alternatives=False`` every function degenerates to the raw
child-axis forms only, which is exactly Table 1's "No selector" ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dom.node import DOMNode
from repro.dom.xpath import (
    CHILD,
    DESC,
    EPSILON,
    SELECTOR_ATTRIBUTES,
    ConcreteSelector,
    Predicate,
    Step,
    TokenPredicate,
    index_among_children,
    index_among_descendants,
    raw_path,
    resolve,
)


@dataclass(frozen=True)
class Decomposition:
    """One way to address a node as ``prefix / step(pred, index) / suffix``.

    ``prefix`` addresses an anchor; the *element step* selects the
    ``index``-th match of ``pred`` under the anchor along ``axis``; the
    ``suffix`` steps descend from the element to the target node.  Loop
    speculation matches decompositions of consecutive actions that agree
    on everything but ``index``.
    """

    prefix: ConcreteSelector
    axis: str
    pred: Predicate
    index: int
    suffix: tuple[Step, ...]

    def assemble(self) -> ConcreteSelector:
        """Rebuild the full concrete selector this decomposition denotes."""
        element = (
            self.prefix.child(self.pred, self.index)
            if self.axis == CHILD
            else self.prefix.desc(self.pred, self.index)
        )
        return element.concat(self.suffix)

    def match_key(self) -> tuple:
        """Everything but the index — equal keys + consecutive indices
        make an anti-unification candidate."""
        return (self.prefix, self.axis, self.pred, self.suffix)


def node_predicates(
    node: DOMNode, use_alternatives: bool = True, token_predicates: bool = False
) -> list[Predicate]:
    """Predicates satisfied by ``node``: its tag, then attribute refinements.

    Attribute predicates come first because they are both more selective
    and what the paper's intended programs use.  With ``token_predicates``
    (the beyond-the-paper extension), one predicate per whitespace token
    of a multi-token ``class`` is added — these are what cover sibling
    nodes whose classes share a token but are not equal (the b6 case).
    """
    if not use_alternatives:
        return [Predicate(node.tag)]
    preds: list[Predicate] = [
        Predicate(node.tag, attr, node.attrs[attr])
        for attr in SELECTOR_ATTRIBUTES
        if node.attrs.get(attr)
    ]
    if token_predicates:
        # one predicate per token, even for single-token classes: a row
        # with class="match" must pair with its class="match highlight"
        # sibling through the *same* (token) predicate
        preds.extend(
            TokenPredicate(node.tag, "class", token)
            for token in node.attrs.get("class", "").split()
        )
    preds.append(Predicate(node.tag))
    return preds


def _raw_chain(base: DOMNode, target: DOMNode) -> tuple[Step, ...]:
    """The child-axis tag/index steps from ``base`` down to ``target``."""
    chain: list[DOMNode] = []
    node = target
    while node is not base:
        chain.append(node)
        if node.parent is None:
            raise ValueError("base is not an ancestor of target")
        node = node.parent
    chain.reverse()
    return tuple(
        Step(CHILD, Predicate(item.tag), item.child_index_by_tag()) for item in chain
    )


def relative_step_candidates(
    base: DOMNode,
    target: DOMNode,
    use_alternatives: bool = True,
    max_suffix_child_steps: int = 2,
    token_predicates: bool = False,
) -> list[tuple[Step, ...]]:
    """Bounded step sequences that reach ``target`` from ``base``.

    Always includes the raw child chain.  With alternatives enabled, also
    descendant-anchored forms: ``//φ(target)[k]`` and
    ``//φ(mid)[k] / raw-chain`` for intermediate nodes with short
    remaining chains.
    """
    if base is target:
        return [()]
    if not (base.is_ancestor_of(target)):
        return []
    root = base.root()
    candidates: list[tuple[Step, ...]] = []
    seen: set[tuple[Step, ...]] = set()

    def add(steps: tuple[Step, ...]) -> None:
        if steps not in seen:
            seen.add(steps)
            candidates.append(steps)

    if use_alternatives:
        # Descendant-anchored forms first: they generalize across pages.
        chain_nodes: list[DOMNode] = []
        node = target
        while node is not base:
            chain_nodes.append(node)
            node = node.parent
        chain_nodes.reverse()  # base's child ... target
        for position, mid in enumerate(chain_nodes):
            remaining = len(chain_nodes) - 1 - position
            if remaining > max_suffix_child_steps:
                continue
            tail = _raw_chain(mid, target)
            for pred in node_predicates(mid, True, token_predicates):
                index = index_among_descendants(base, mid, pred, root)
                if index is not None:
                    add((Step(DESC, pred, index),) + tail)
    add(_raw_chain(base, target))
    return candidates


def decompositions(
    selector: ConcreteSelector,
    dom: DOMNode,
    use_alternatives: bool = True,
    max_suffix_child_steps: int = 2,
    max_results: int = 128,
    token_predicates: bool = False,
) -> list[Decomposition]:
    """All bounded ``prefix/step/suffix`` readings of ``selector`` on ``dom``.

    Anchors for the element step are the element's parent (child axis) and
    every ancestor including the document (descendant axis).  Prefixes are
    raw paths — generality enters through the predicate, the axis, and the
    suffix, plus later parametrization of the prefix itself.
    """
    target = resolve(selector, dom)
    if target is None:
        return []
    root = dom
    results: list[Decomposition] = []
    element: DOMNode | None = target
    while element is not None and len(results) < max_results:
        suffixes = relative_step_candidates(
            element, target, use_alternatives, max_suffix_child_steps, token_predicates
        )
        for suffix in suffixes:
            preds = node_predicates(element, use_alternatives, token_predicates)
            # Child axis from the element's parent.
            parent_prefix = raw_path(element.parent) if element.parent else EPSILON
            for pred in preds:
                child_index = index_among_children(element, pred)
                if child_index is not None:
                    results.append(
                        Decomposition(parent_prefix, CHILD, pred, child_index, suffix)
                    )
            if use_alternatives:
                # Descendant axis, anchored at the document and at the
                # element's parent.  (Intermediate ancestors are possible
                # anchors too, but the paper's programs use the document —
                # Dscts(ε, φ) — or the parent, and every extra anchor
                # multiplies the candidate space.)
                anchors: list[DOMNode | None] = [None]
                if element.parent is not None:
                    anchors.append(element.parent)
                for anchor in anchors:
                    anchor_prefix = EPSILON if anchor is None else raw_path(anchor)
                    for pred in preds:
                        desc_index = index_among_descendants(anchor, element, pred, root)
                        if desc_index is not None:
                            results.append(
                                Decomposition(anchor_prefix, DESC, pred, desc_index, suffix)
                            )
            if len(results) >= max_results:
                break
        element = element.parent
    return results[:max_results]


def alternative_selectors(
    selector: ConcreteSelector,
    dom: DOMNode,
    use_alternatives: bool = True,
    max_results: int = 24,
) -> list[ConcreteSelector]:
    """Whole-selector alternatives denoting the same node on ``dom``.

    The raw selector itself is always included (first).  Attribute-
    anchored forms follow, deduplicated, each verified to resolve to the
    same node.
    """
    target = resolve(selector, dom)
    if target is None:
        return []
    raw = raw_path(target)
    results = [raw]
    if not use_alternatives:
        return results
    seen = {raw, selector}
    if selector != raw:
        results.insert(0, selector)
    for decomposition in decompositions(selector, dom, use_alternatives=True):
        candidate = decomposition.assemble()
        if candidate in seen:
            continue
        seen.add(candidate)
        if resolve(candidate, dom) is target:
            results.append(candidate)
        if len(results) >= max_results:
            break
    return results


def common_alternatives(
    selector_a: ConcreteSelector,
    dom_a: DOMNode,
    selector_b: ConcreteSelector,
    dom_b: DOMNode,
    use_alternatives: bool = True,
    max_results: int = 8,
) -> list[ConcreteSelector]:
    """Selectors that address both recorded nodes on their own snapshots.

    Used for while-loop clicks: the terminating Click must resolve to the
    "next page" button on *every* page, so candidate selectors must at
    least work for the two exhibited iterations.
    """
    options_a = alternative_selectors(selector_a, dom_a, use_alternatives)
    options_b = set(alternative_selectors(selector_b, dom_b, use_alternatives))
    shared = [candidate for candidate in options_a if candidate in options_b]
    return shared[:max_results]


class SelectorSearch:
    """Memoised front-end to the selector-search queries.

    The synthesizer issues the same decomposition and relative-step
    queries over and over (across spans, across incremental calls).
    Snapshots are immutable, so caching by ``(selector, id(snapshot))`` is
    sound as long as the snapshots are kept alive — which this object does
    by holding references in its keys' companion sets.
    """

    def __init__(
        self,
        use_alternatives: bool = True,
        max_suffix_child_steps: int = 2,
        max_decompositions: int = 128,
        token_predicates: bool = False,
    ) -> None:
        self.use_alternatives = use_alternatives
        self.max_suffix_child_steps = max_suffix_child_steps
        self.max_decompositions = max_decompositions
        self.token_predicates = token_predicates
        self._decomp_cache: dict[tuple, list[Decomposition]] = {}
        self._relative_cache: dict[tuple, list[tuple[Step, ...]]] = {}
        self._alternatives_cache: dict[tuple, list[ConcreteSelector]] = {}
        self._pairing_cache: dict[tuple, object] = {}
        self._pins: list = []  # keeps cached DOMs alive so ids stay valid

    def _pin(self, *objects) -> None:
        self._pins.append(objects)

    def decompositions(self, selector: ConcreteSelector, dom: DOMNode) -> list[Decomposition]:
        """Memoised :func:`decompositions`."""
        key = (selector, id(dom))
        hit = self._decomp_cache.get(key)
        if hit is None:
            hit = decompositions(
                selector,
                dom,
                use_alternatives=self.use_alternatives,
                max_suffix_child_steps=self.max_suffix_child_steps,
                max_results=self.max_decompositions,
                token_predicates=self.token_predicates,
            )
            self._decomp_cache[key] = hit
            self._pin(dom)
        return hit

    def relative(self, base: DOMNode, target: DOMNode) -> list[tuple[Step, ...]]:
        """Memoised :func:`relative_step_candidates`."""
        key = (id(base), id(target))
        hit = self._relative_cache.get(key)
        if hit is None:
            hit = relative_step_candidates(
                base,
                target,
                use_alternatives=self.use_alternatives,
                max_suffix_child_steps=self.max_suffix_child_steps,
                token_predicates=self.token_predicates,
            )
            self._relative_cache[key] = hit
            self._pin(base, target)
        return hit

    def alternatives(
        self, selector: ConcreteSelector, dom: DOMNode, max_results: int = 24
    ) -> list[ConcreteSelector]:
        """Memoised :func:`alternative_selectors`."""
        key = (selector, id(dom), max_results)
        hit = self._alternatives_cache.get(key)
        if hit is None:
            hit = alternative_selectors(
                selector, dom, use_alternatives=self.use_alternatives, max_results=max_results
            )
            self._alternatives_cache[key] = hit
            self._pin(dom)
        return hit

    def common(
        self,
        selector_a: ConcreteSelector,
        dom_a: DOMNode,
        selector_b: ConcreteSelector,
        dom_b: DOMNode,
        max_results: int = 8,
    ) -> list[ConcreteSelector]:
        """Memoised :func:`common_alternatives`."""
        options_a = self.alternatives(selector_a, dom_a)
        options_b = set(self.alternatives(selector_b, dom_b))
        shared = [candidate for candidate in options_a if candidate in options_b]
        return shared[:max_results]

    def _decomposition_keys(self, selector: ConcreteSelector, dom: DOMNode) -> set[tuple]:
        """The ``(match_key, index)`` set of a selector's decompositions."""
        key = ("dk", selector, id(dom))
        hit = self._pairing_cache.get(key)
        if hit is None:
            hit = {
                (item.match_key(), item.index)
                for item in self.decompositions(selector, dom)
            }
            self._pairing_cache[key] = hit
            self._pin(dom)
        return hit

    def loop_pairings(
        self,
        first_sel: ConcreteSelector,
        first_dom: DOMNode,
        second_sel: ConcreteSelector,
        second_dom: DOMNode,
        limit: int,
    ) -> list[Decomposition]:
        """Decompositions of ``first_sel`` at index 1 whose match key also
        occurs at index 2 among ``second_sel``'s decompositions.

        This is the var-free core of selector anti-unification (Figure 10
        rule (4)); results are memoised because the same statement pairs
        are anti-unified across many spans and incremental calls.
        """
        key = (first_sel, id(first_dom), second_sel, id(second_dom), limit)
        hit = self._pairing_cache.get(key)
        if hit is not None:
            return hit
        results: list[Decomposition] = []
        seen: set[tuple] = set()
        first_options = self.decompositions(first_sel, first_dom)
        if first_options:
            second_keys = self._decomposition_keys(second_sel, second_dom)
            for item in first_options:
                if item.index != 1:
                    continue
                match = item.match_key()
                if match in seen or (match, 2) not in second_keys:
                    continue
                seen.add(match)
                results.append(item)
                if len(results) >= limit:
                    break
        self._pairing_cache[key] = results
        self._pin(first_dom, second_dom)
        return results
