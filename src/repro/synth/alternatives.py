"""Selector search: the paper's ``AlternativeSelectors`` (§2, Figures 10/11).

Recorded actions use absolute child-axis XPaths; intended programs usually
need *other* selectors for the same nodes (attribute-anchored descendant
steps like ``//div[@class='locatorPhone'][1]``).  This module enumerates,
with bounds, the alternative ways a node can be addressed:

* :func:`node_predicates` — the predicates φ a node satisfies;
* :func:`relative_step_candidates` — step sequences from an ancestor to a
  descendant (used as loop-variable suffixes);
* :func:`decompositions` — ways to write a selector as
  ``prefix / step(φ, k) / suffix``, the shape anti-unification matches on;
* :func:`alternative_selectors` — whole-selector alternatives (used for
  while-loop clicks).

With ``use_alternatives=False`` every function degenerates to the raw
child-axis forms only, which is exactly Table 1's "No selector" ablation.

Enumeration runs in one of two modes.  With ``use_index_enumeration``
(the default, gated by
:attr:`repro.synth.config.SynthesisConfig.use_index_enumeration`) and a
frozen snapshot, candidates are read off the per-snapshot bucket layer
of :class:`repro.engine.index.SnapshotIndex` — memoized raw paths,
predicate families, child-rank maps, and per-element decomposition
plans — instead of re-walking ancestor chains and sibling lists per
query.  The legacy ancestor-walk path is kept verbatim (flag off, or
unindexed snapshots) and both paths produce identical candidate lists
in identical order; ``tests/test_synth_index_enumeration.py`` holds the
parity property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dom.node import DOMNode
from repro.dom.xpath import (
    CHILD,
    DESC,
    EPSILON,
    ConcreteSelector,
    Predicate,
    Step,
    index_among_children,
    index_among_descendants,
    predicate_family,
    raw_path,
    resolve,
)
from repro.engine.index import (
    UNSUPPORTED,
    SnapshotIndex,
    dom_indexes_enabled,
    index_for,
)


@dataclass(frozen=True)
class Decomposition:
    """One way to address a node as ``prefix / step(pred, index) / suffix``.

    ``prefix`` addresses an anchor; the *element step* selects the
    ``index``-th match of ``pred`` under the anchor along ``axis``; the
    ``suffix`` steps descend from the element to the target node.  Loop
    speculation matches decompositions of consecutive actions that agree
    on everything but ``index``.
    """

    prefix: ConcreteSelector
    axis: str
    pred: Predicate
    index: int
    suffix: tuple[Step, ...]

    def assemble(self) -> ConcreteSelector:
        """Rebuild the full concrete selector this decomposition denotes."""
        element = (
            self.prefix.child(self.pred, self.index)
            if self.axis == CHILD
            else self.prefix.desc(self.pred, self.index)
        )
        return element.concat(self.suffix)

    def match_key(self) -> tuple:
        """Everything but the index — equal keys + consecutive indices
        make an anti-unification candidate."""
        return (self.prefix, self.axis, self.pred, self.suffix)


def node_predicates(
    node: DOMNode, use_alternatives: bool = True, token_predicates: bool = False
) -> list[Predicate]:
    """Predicates satisfied by ``node``: its tag, then attribute refinements.

    Attribute predicates come first because they are both more selective
    and what the paper's intended programs use.  With ``token_predicates``
    (the beyond-the-paper extension), one predicate per whitespace token
    of a multi-token ``class`` is added — these are what cover sibling
    nodes whose classes share a token but are not equal (the b6 case).
    """
    if not use_alternatives:
        return [Predicate(node.tag)]
    # one token predicate per whitespace token, even for single-token
    # classes: a row with class="match" must pair with its
    # class="match highlight" sibling through the *same* (token)
    # predicate — see predicate_family for the full ordering contract
    return predicate_family(node, token_predicates)


def _raw_chain(base: DOMNode, target: DOMNode) -> tuple[Step, ...]:
    """The child-axis tag/index steps from ``base`` down to ``target``."""
    chain: list[DOMNode] = []
    node = target
    while node is not base:
        chain.append(node)
        if node.parent is None:
            raise ValueError("base is not an ancestor of target")
        node = node.parent
    chain.reverse()
    return tuple(
        Step(CHILD, Predicate(item.tag), item.child_index_by_tag()) for item in chain
    )


def relative_step_candidates(
    base: DOMNode,
    target: DOMNode,
    use_alternatives: bool = True,
    max_suffix_child_steps: int = 2,
    token_predicates: bool = False,
    use_index_enumeration: bool = True,
) -> list[tuple[Step, ...]]:
    """Bounded step sequences that reach ``target`` from ``base``.

    Always includes the raw child chain.  With alternatives enabled, also
    descendant-anchored forms: ``//φ(target)[k]`` and
    ``//φ(mid)[k] / raw-chain`` for intermediate nodes with short
    remaining chains.
    """
    if base is target:
        return [()]
    if not (base.is_ancestor_of(target)):
        return []
    root = base.root()
    index = index_for(root) if use_index_enumeration else None
    if index is not None and not (index.contains(base) and index.contains(target)):
        index = None  # foreign nodes: take the ancestor-walk path
    if index is not None:
        memo_key = (
            "rel",
            id(base),
            id(target),
            use_alternatives,
            max_suffix_child_steps,
            token_predicates,
        )
        cached = index.enum_memo.get(memo_key)
        if cached is not None:
            return cached
    candidates: list[tuple[Step, ...]] = []
    seen: set[tuple[Step, ...]] = set()

    def add(steps: tuple[Step, ...]) -> None:
        if steps not in seen:
            seen.add(steps)
            candidates.append(steps)

    if use_alternatives:
        # Descendant-anchored forms first: they generalize across pages.
        chain_nodes: list[DOMNode] = []
        node = target
        while node is not base:
            chain_nodes.append(node)
            node = node.parent
        chain_nodes.reverse()  # base's child ... target
        for position, mid in enumerate(chain_nodes):
            remaining = len(chain_nodes) - 1 - position
            if remaining > max_suffix_child_steps:
                continue
            if index is not None:
                # every chain node sits between base and target, so the
                # index covers it; predicates_of only yields bucketed
                # predicates, so rank should never be UNSUPPORTED here —
                # but a sentinel must never become a step index
                tail = index.raw_steps_between(mid, target)
                for pred in index.predicates_of(mid, True, token_predicates):
                    rank = index.rank(pred, mid, base)
                    if rank is UNSUPPORTED:  # pragma: no cover - defensive
                        rank = index_among_descendants(base, mid, pred, root)
                    if rank is not None:
                        add((Step(DESC, pred, rank),) + tail)
                continue
            tail = _raw_chain(mid, target)
            for pred in node_predicates(mid, True, token_predicates):
                position_index = index_among_descendants(base, mid, pred, root)
                if position_index is not None:
                    add((Step(DESC, pred, position_index),) + tail)
    if index is not None:
        add(index.raw_steps_between(base, target))
        index.enum_memo[memo_key] = candidates
    else:
        add(_raw_chain(base, target))
    return candidates


def decompositions(
    selector: ConcreteSelector,
    dom: DOMNode,
    use_alternatives: bool = True,
    max_suffix_child_steps: int = 2,
    max_results: int = 128,
    token_predicates: bool = False,
    use_index_enumeration: bool = True,
) -> list[Decomposition]:
    """All bounded ``prefix/step/suffix`` readings of ``selector`` on ``dom``.

    Anchors for the element step are the element's parent (child axis) and
    every ancestor including the document (descendant axis).  Prefixes are
    raw paths — generality enters through the predicate, the axis, and the
    suffix, plus later parametrization of the prefix itself.
    """
    target = resolve(selector, dom)
    if target is None:
        return []
    index = (
        index_for(dom)
        if use_index_enumeration and dom.parent is None
        else None
    )
    if index is not None:
        return _decompositions_indexed(
            index,
            target,
            use_alternatives,
            max_suffix_child_steps,
            max_results,
            token_predicates,
        )
    root = dom
    results: list[Decomposition] = []
    element: DOMNode | None = target
    while element is not None and len(results) < max_results:
        suffixes = relative_step_candidates(
            element,
            target,
            use_alternatives,
            max_suffix_child_steps,
            token_predicates,
            use_index_enumeration=False,
        )
        for suffix in suffixes:
            preds = node_predicates(element, use_alternatives, token_predicates)
            # Child axis from the element's parent.
            parent_prefix = raw_path(element.parent) if element.parent else EPSILON
            for pred in preds:
                child_index = index_among_children(element, pred)
                if child_index is not None:
                    results.append(
                        Decomposition(parent_prefix, CHILD, pred, child_index, suffix)
                    )
            if use_alternatives:
                # Descendant axis, anchored at the document and at the
                # element's parent.  (Intermediate ancestors are possible
                # anchors too, but the paper's programs use the document —
                # Dscts(ε, φ) — or the parent, and every extra anchor
                # multiplies the candidate space.)
                anchors: list[DOMNode | None] = [None]
                if element.parent is not None:
                    anchors.append(element.parent)
                for anchor in anchors:
                    anchor_prefix = EPSILON if anchor is None else raw_path(anchor)
                    for pred in preds:
                        desc_index = index_among_descendants(anchor, element, pred, root)
                        if desc_index is not None:
                            results.append(
                                Decomposition(anchor_prefix, DESC, pred, desc_index, suffix)
                            )
            if len(results) >= max_results:
                break
        element = element.parent
    return results[:max_results]


def _decompositions_indexed(
    index: SnapshotIndex,
    target: DOMNode,
    use_alternatives: bool,
    max_suffix_child_steps: int,
    max_results: int,
    token_predicates: bool,
) -> list[Decomposition]:
    """Bucket-driven :func:`decompositions` body (identical output).

    The per-element inner work of the ancestor walk — predicate family,
    parent raw path, child ranks, descendant ranks — is invariant across
    suffixes and across targets sharing the ancestor, so it is read off
    the snapshot index's cached *element plan* and only the cross
    product with the suffixes is materialised here, in the legacy
    emission order.  Whole results are memoized on the index (they
    depend only on the target node and the bounds), which is what lets
    a second session over the same snapshot enumerate for free.
    """
    memo_key = (
        "decomp",
        id(target),
        use_alternatives,
        max_suffix_child_steps,
        max_results,
        token_predicates,
    )
    cached = index.enum_memo.get(memo_key)
    if cached is not None:
        return cached
    results: list[Decomposition] = []
    element: DOMNode | None = target
    while element is not None and len(results) < max_results:
        suffixes = relative_step_candidates(
            element,
            target,
            use_alternatives,
            max_suffix_child_steps,
            token_predicates,
            use_index_enumeration=True,
        )
        plan = index.element_plan(element, use_alternatives, token_predicates)
        for suffix in suffixes:
            for prefix, axis, pred, step_index in plan:
                results.append(Decomposition(prefix, axis, pred, step_index, suffix))
            if len(results) >= max_results:
                break
        element = element.parent
    results = results[:max_results]
    index.enum_memo[memo_key] = results
    return results


def alternative_selectors(
    selector: ConcreteSelector,
    dom: DOMNode,
    use_alternatives: bool = True,
    max_results: int = 24,
    use_index_enumeration: bool = True,
) -> list[ConcreteSelector]:
    """Whole-selector alternatives denoting the same node on ``dom``.

    The raw selector itself is always included (first).  Attribute-
    anchored forms follow, deduplicated, each verified to resolve to the
    same node.
    """
    target = resolve(selector, dom)
    if target is None:
        return []
    raw = raw_path(target)
    results = [raw]
    if not use_alternatives:
        return results
    seen = {raw, selector}
    if selector != raw:
        results.insert(0, selector)
    for decomposition in decompositions(
        selector, dom, use_alternatives=True, use_index_enumeration=use_index_enumeration
    ):
        candidate = decomposition.assemble()
        if candidate in seen:
            continue
        seen.add(candidate)
        if resolve(candidate, dom) is target:
            results.append(candidate)
        if len(results) >= max_results:
            break
    return results


def common_alternatives(
    selector_a: ConcreteSelector,
    dom_a: DOMNode,
    selector_b: ConcreteSelector,
    dom_b: DOMNode,
    use_alternatives: bool = True,
    max_results: int = 8,
    use_index_enumeration: bool = True,
) -> list[ConcreteSelector]:
    """Selectors that address both recorded nodes on their own snapshots.

    Used for while-loop clicks: the terminating Click must resolve to the
    "next page" button on *every* page, so candidate selectors must at
    least work for the two exhibited iterations.
    """
    options_a = alternative_selectors(
        selector_a, dom_a, use_alternatives, use_index_enumeration=use_index_enumeration
    )
    options_b = set(
        alternative_selectors(
            selector_b, dom_b, use_alternatives, use_index_enumeration=use_index_enumeration
        )
    )
    shared = [candidate for candidate in options_a if candidate in options_b]
    return shared[:max_results]


class SelectorSearch:
    """Memoised front-end to the selector-search queries.

    The synthesizer issues the same decomposition and relative-step
    queries over and over (across spans, across incremental calls).
    Snapshots are immutable, so caching by ``(selector, id(snapshot))`` is
    sound as long as the snapshots are kept alive — which this object does
    by holding references in its keys' companion sets.

    ``enum_indexed`` / ``enum_fallback`` count the *uncached* enumeration
    queries by the path that answered them (bucket-driven vs ancestor
    walk); the synthesizer surfaces per-call deltas through
    :class:`repro.synth.synthesizer.SynthesisStats`.
    """

    def __init__(
        self,
        use_alternatives: bool = True,
        max_suffix_child_steps: int = 2,
        max_decompositions: int = 128,
        token_predicates: bool = False,
        use_index_enumeration: bool = True,
    ) -> None:
        self.use_alternatives = use_alternatives
        self.max_suffix_child_steps = max_suffix_child_steps
        self.max_decompositions = max_decompositions
        self.token_predicates = token_predicates
        self.use_index_enumeration = use_index_enumeration
        self.enum_indexed = 0
        self.enum_fallback = 0
        self._decomp_cache: dict[tuple, list[Decomposition]] = {}
        self._relative_cache: dict[tuple, list[tuple[Step, ...]]] = {}
        self._alternatives_cache: dict[tuple, list[ConcreteSelector]] = {}
        self._pairing_cache: dict[tuple, object] = {}
        self._pins: list = []  # keeps cached DOMs alive so ids stay valid

    def _pin(self, *objects) -> None:
        self._pins.append(objects)

    def _count_enumeration(self, root: DOMNode) -> None:
        """Classify one uncached query by the path eligible to answer it.

        Mirrors the guards of :func:`index_for` / the raw functions
        without calling them — classification must not force an index
        build the query itself would never perform (e.g. a selector that
        does not resolve).
        """
        if (
            self.use_index_enumeration
            and root.parent is None
            and root.frozen
            and dom_indexes_enabled()
        ):
            self.enum_indexed += 1
        else:
            self.enum_fallback += 1

    def decompositions(self, selector: ConcreteSelector, dom: DOMNode) -> list[Decomposition]:
        """Memoised :func:`decompositions`."""
        key = (selector, id(dom))
        hit = self._decomp_cache.get(key)
        if hit is None:
            self._count_enumeration(dom)
            hit = decompositions(
                selector,
                dom,
                use_alternatives=self.use_alternatives,
                max_suffix_child_steps=self.max_suffix_child_steps,
                max_results=self.max_decompositions,
                token_predicates=self.token_predicates,
                use_index_enumeration=self.use_index_enumeration,
            )
            self._decomp_cache[key] = hit
            self._pin(dom)
        return hit

    def relative(self, base: DOMNode, target: DOMNode) -> list[tuple[Step, ...]]:
        """Memoised :func:`relative_step_candidates`."""
        key = (id(base), id(target))
        hit = self._relative_cache.get(key)
        if hit is None:
            self._count_enumeration(base.root())
            hit = relative_step_candidates(
                base,
                target,
                use_alternatives=self.use_alternatives,
                max_suffix_child_steps=self.max_suffix_child_steps,
                token_predicates=self.token_predicates,
                use_index_enumeration=self.use_index_enumeration,
            )
            self._relative_cache[key] = hit
            self._pin(base, target)
        return hit

    def alternatives(
        self, selector: ConcreteSelector, dom: DOMNode, max_results: int = 24
    ) -> list[ConcreteSelector]:
        """Memoised :func:`alternative_selectors`."""
        key = (selector, id(dom), max_results)
        hit = self._alternatives_cache.get(key)
        if hit is None:
            self._count_enumeration(dom)
            hit = alternative_selectors(
                selector,
                dom,
                use_alternatives=self.use_alternatives,
                max_results=max_results,
                use_index_enumeration=self.use_index_enumeration,
            )
            self._alternatives_cache[key] = hit
            self._pin(dom)
        return hit

    def common(
        self,
        selector_a: ConcreteSelector,
        dom_a: DOMNode,
        selector_b: ConcreteSelector,
        dom_b: DOMNode,
        max_results: int = 8,
    ) -> list[ConcreteSelector]:
        """Memoised :func:`common_alternatives`."""
        options_a = self.alternatives(selector_a, dom_a)
        options_b = set(self.alternatives(selector_b, dom_b))
        shared = [candidate for candidate in options_a if candidate in options_b]
        return shared[:max_results]

    def _decomposition_keys(self, selector: ConcreteSelector, dom: DOMNode) -> set[tuple]:
        """The ``(match_key, index)`` set of a selector's decompositions."""
        key = ("dk", selector, id(dom))
        hit = self._pairing_cache.get(key)
        if hit is None:
            hit = {
                (item.match_key(), item.index)
                for item in self.decompositions(selector, dom)
            }
            self._pairing_cache[key] = hit
            self._pin(dom)
        return hit

    def loop_pairings(
        self,
        first_sel: ConcreteSelector,
        first_dom: DOMNode,
        second_sel: ConcreteSelector,
        second_dom: DOMNode,
        limit: int,
    ) -> list[Decomposition]:
        """Decompositions of ``first_sel`` at index 1 whose match key also
        occurs at index 2 among ``second_sel``'s decompositions.

        This is the var-free core of selector anti-unification (Figure 10
        rule (4)); results are memoised because the same statement pairs
        are anti-unified across many spans and incremental calls.
        """
        key = (first_sel, id(first_dom), second_sel, id(second_dom), limit)
        hit = self._pairing_cache.get(key)
        if hit is not None:
            return hit
        results: list[Decomposition] = []
        seen: set[tuple] = set()
        first_options = self.decompositions(first_sel, first_dom)
        if first_options:
            second_keys = self._decomposition_keys(second_sel, second_dom)
            for item in first_options:
                if item.index != 1:
                    continue
                match = item.match_key()
                if match in seen or (match, 2) not in second_keys:
                    continue
                seen.add(match)
                results.append(item)
                if len(results) >= limit:
                    break
        self._pairing_cache[key] = results
        self._pin(first_dom, second_dom)
        return results
