"""Parametrization of statements against a loop-variable binding (Figure 11).

Once anti-unification has fixed the loop variable ϱ (or ϑ) and its
first-iteration binding, the *other* statements of the conjectured first
iteration must be rewritten to mention the variable where appropriate:

* rule (1)/(3): a statement may stay as-is (it may simply not use ϱ);
* rule (2): a node action whose target lies under the binding's node gets
  targets of the form ``ϱ/suffix`` (via alternative selectors);
* rules (4)-(6): a nested selector loop gets its collection base rewritten
  the same way;
* the value analogues rewrite ``EnterData`` paths and nested value-loop
  collections that extend the binding's accessor prefix.

Parametrized variants are returned *before* the unchanged statement: the
speculation step truncates the Cartesian product of variants, and variants
that do use the loop variable are far more likely to validate.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector, resolve
from repro.lang.ast import (
    SEL_VAR,
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Selector,
    Statement,
    ValuePath,
    ValuePathsOf,
    Var,
    WhileLoop,
)
from repro.synth.alternatives import SelectorSearch, relative_step_candidates
from repro.synth.config import SynthesisConfig

Binding = Union[ConcreteSelector, ValuePath]


def parametrize_statement(
    stmt: Statement,
    var: Var,
    first_binding: Binding,
    dom: DOMNode,
    config: SynthesisConfig,
    search: Optional[SelectorSearch] = None,
) -> list[Statement]:
    """All parametrizations of ``stmt`` under ``var ↦ first_binding``.

    ``dom`` is the snapshot the statement's first action executed on — the
    alternative-selector search runs against it.  The result always ends
    with the unchanged statement (rule (1)) and is capped at
    ``config.max_parametrize_variants`` entries.
    """
    if search is None:
        search = SelectorSearch(
            use_alternatives=config.use_alternative_selectors,
            max_suffix_child_steps=config.max_suffix_child_steps,
            max_decompositions=config.max_decompositions,
            use_index_enumeration=config.use_index_enumeration,
        )
    if var.kind == SEL_VAR:
        assert isinstance(first_binding, ConcreteSelector)
        variants = _parametrize_selector(stmt, var, first_binding, dom, config, search)
    else:
        assert isinstance(first_binding, ValuePath)
        variants = _parametrize_value(stmt, var, first_binding)
    variants = variants[: config.max_parametrize_variants - 1]
    variants.append(stmt)
    return variants


# ----------------------------------------------------------------------
# Selector-variable case (Figure 11 as printed)
# ----------------------------------------------------------------------
def _suffixes_under(
    binding: ConcreteSelector,
    target: ConcreteSelector,
    dom: DOMNode,
    search: SelectorSearch,
) -> list[tuple]:
    """Step sequences ``suffix`` with ``binding/suffix`` ≡ ``target`` on dom."""
    base_node = resolve(binding, dom)
    if base_node is None:
        return []
    target_node = resolve(target, dom)
    if target_node is None:
        return []
    if base_node is not target_node and not base_node.is_ancestor_of(target_node):
        return []
    return search.relative(base_node, target_node)


def _parametrize_selector(
    stmt: Statement,
    var: Var,
    binding: ConcreteSelector,
    dom: DOMNode,
    config: SynthesisConfig,
    search: SelectorSearch,
) -> list[Statement]:
    if isinstance(stmt, ActionStmt):
        if stmt.target is None or not stmt.target.is_concrete:
            return []
        target = ConcreteSelector(stmt.target.steps)
        return [
            ActionStmt(stmt.kind, Selector(var, suffix), stmt.text, stmt.value)
            for suffix in _suffixes_under(binding, target, dom, search)
        ]
    if isinstance(stmt, ForEachSelector):
        base = stmt.collection.base
        if not base.is_concrete:
            return []
        collection_type = type(stmt.collection)
        return [
            ForEachSelector(
                stmt.var,
                collection_type(Selector(var, suffix), stmt.collection.pred),
                stmt.body,
            )
            for suffix in _suffixes_under(
                binding, ConcreteSelector(base.steps), dom, search
            )
        ]
    # Value loops, while loops and paginate loops inside a selector loop
    # keep their (page-independent or concrete) form; rule (1) covers them.
    if isinstance(stmt, (ForEachValue, WhileLoop, PaginateLoop)):
        return []
    raise TypeError(f"not a statement: {stmt!r}")


# ----------------------------------------------------------------------
# Value-variable case (the EnterData analogues of Figure 11)
# ----------------------------------------------------------------------
def _parametrize_value(
    stmt: Statement,
    var: Var,
    binding: ValuePath,
) -> list[Statement]:
    prefix = binding.accessors
    if isinstance(stmt, ActionStmt):
        value = stmt.value
        if value is None or not value.is_concrete:
            return []
        if value.accessors[: len(prefix)] != prefix:
            return []
        rest = value.accessors[len(prefix):]
        return [
            ActionStmt(stmt.kind, stmt.target, stmt.text, ValuePath(var, rest))
        ]
    if isinstance(stmt, ForEachValue):
        path = stmt.collection.path
        if not path.is_concrete or path.accessors[: len(prefix)] != prefix:
            return []
        rest = path.accessors[len(prefix):]
        return [
            ForEachValue(stmt.var, ValuePathsOf(ValuePath(var, rest)), stmt.body)
        ]
    if isinstance(stmt, (ForEachSelector, WhileLoop, PaginateLoop)):
        return []
    raise TypeError(f"not a statement: {stmt!r}")
