"""Ranking of generalizing programs (Algorithm 1 line 8).

The paper "aims to synthesize a smallest program in size" (§4) and
breaks ties deterministically; that is the default strategy here.  The
alternatives quantify how much the smallest-program heuristic matters —
``benchmarks/bench_ablation_ranking.py`` compares them on the full
suite:

``size``
    AST node count, then statement-sequence length, then program text.
    The paper's choice.
``fewest-statements``
    Top-level compression first (a program whose rewrites absorbed more
    of the trace into loops ranks higher), then AST size.
``deepest``
    Most-nested programs first — the "most general structure" guess —
    then AST size.  A deliberately aggressive strategy: it wins when
    repetition is real, overfits when it is coincidental.
``shallowest``
    Least-nested first — the conservative guess.
``cost``
    Cheapest static replay cost first (the analysis layer's symbolic
    action-count interval, :mod:`repro.analysis.cost`): upper bound
    with unbounded last, then lower bound, then AST size.  Prefers
    programs whose replay does provably bounded work — a user-facing
    "least surprising replay" order rather than a syntax order.

All strategies share the final text tie-break, so ranking is a total
deterministic order and results are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.cost import program_cost
from repro.lang.actions import Action
from repro.lang.ast import Program, program_depth, program_size
from repro.lang.pretty import format_program
from repro.util.errors import SynthesisError


@dataclass(frozen=True)
class Candidate:
    """One generalizing program with its ranking inputs.

    ``statements`` is the rewrite tuple's top-level statement count (a
    lower count means loops absorbed more of the demonstration);
    ``text`` is the pretty-printed form, cached because every strategy
    uses it as the final tie-break.
    """

    program: Program
    prediction: Action
    statements: int
    text: str

    @classmethod
    def of(cls, program: Program, prediction: Action, statements: int) -> "Candidate":
        """Build a candidate, computing the cached text form."""
        return cls(program, prediction, statements, format_program(program))


#: A strategy maps a candidate to a sort key (ascending = better).
Strategy = Callable[[Candidate], tuple]


def _by_size(candidate: Candidate) -> tuple:
    return (program_size(candidate.program), candidate.statements, candidate.text)


def _by_fewest_statements(candidate: Candidate) -> tuple:
    return (candidate.statements, program_size(candidate.program), candidate.text)


def _by_deepest(candidate: Candidate) -> tuple:
    return (
        -program_depth(candidate.program),
        program_size(candidate.program),
        candidate.text,
    )


def _by_shallowest(candidate: Candidate) -> tuple:
    return (
        program_depth(candidate.program),
        program_size(candidate.program),
        candidate.text,
    )


def _by_cost(candidate: Candidate) -> tuple:
    cost = program_cost(candidate.program)
    upper = float("inf") if cost.hi is None else cost.hi
    return (upper, cost.lo, program_size(candidate.program), candidate.text)


#: Registered strategies by name (``SynthesisConfig.ranking``).
STRATEGIES: dict[str, Strategy] = {
    "size": _by_size,
    "fewest-statements": _by_fewest_statements,
    "deepest": _by_deepest,
    "shallowest": _by_shallowest,
    "cost": _by_cost,
}

DEFAULT_STRATEGY = "size"


def strategy_by_name(name: str) -> Strategy:
    """Look up a registered strategy; raise on unknown names."""
    try:
        return STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise SynthesisError(f"unknown ranking strategy {name!r} (known: {known})") from None


def rank(candidates: Sequence[Candidate], strategy: str = DEFAULT_STRATEGY) -> list[Candidate]:
    """Order candidates best-first under the named strategy."""
    return sorted(candidates, key=strategy_by_name(strategy))
