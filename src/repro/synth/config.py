"""Synthesizer configuration.

The defaults correspond to the full-fledged WebRobot configuration used in
Q1; the ablation variants of Table 1 are obtained through
:func:`no_selector_config` and :func:`no_incremental_config`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class SynthesisConfig:
    """Tunable knobs of the synthesis engine.

    Attributes
    ----------
    timeout:
        Wall-clock budget per ``synthesize`` call in seconds (the paper
        uses 1 second per prediction test).
    use_alternative_selectors:
        When False, ``AlternativeSelectors`` degenerates to the identity —
        the "No selector" ablation of Table 1.
    use_token_predicates:
        Opt-in extension beyond the paper: whitespace-token class
        predicates (``div[@class~='match']``), which solve the paper's
        "disjunctive selector" failure case b6.  Off by default to match
        the published system.
    use_numbered_pagination:
        Opt-in extension beyond the paper: speculate
        :class:`~repro.lang.ast.PaginateLoop` rewrites for numbered
        pagers (counter-templated page clicks plus an optional
        next-block button), the paper's b9 failure case.  Off by
        default to match the published system.
    max_paginate_advance_alternatives:
        Cap on advance-button selector candidates per paginate span.
    incremental:
        When False, every call rebuilds the worklist from scratch — the
        "No incremental" ablation of Table 1 (§5.4).
    max_body:
        Maximum number of statements in a speculated first iteration
        (bounds the span enumeration in Algorithm 2).
    max_loop_bodies_per_span:
        Cap on the Cartesian product of parametrized bodies generated for
        one ``(i, p, j, q)`` span.
    max_decompositions:
        Cap on selector decompositions considered per concrete selector.
    max_suffix_child_steps:
        Longest child-step chain allowed after a descendant anchor step in
        generated suffixes.
    max_pivot_unifications:
        Cap on anti-unification results per pivot pair.
    max_parametrize_variants:
        Cap on parametrized variants per non-pivot statement (the
        unchanged statement is always among them).
    max_rewrites_per_span:
        Per popped tuple, keep only this many validated rewrites covering
        the same trace slice (smallest statements win).
    max_while_click_alternatives:
        Cap on the common alternative selectors tried for a while loop's
        terminating click.
    max_generalizing_programs:
        Stop collecting once this many generalizing programs are known.
    max_store_tuples:
        Upper bound on tuples carried across incremental calls; the
        largest programs are dropped first when the cap is hit.
    max_worklist_pops:
        Safety valve on worklist processing per call (None = unbounded,
        the deadline is then the only stop).
    use_execution_cache:
        Memoize simulated execution in the
        :class:`~repro.engine.engine.ExecutionEngine` (identical
        ``(statement, window)`` executions across worklist pops and
        across incremental calls run once).  Behaviour-preserving; the
        engine-cache bench measures the speedup.
    use_index_enumeration:
        Enumerate selector decompositions from the per-snapshot DOM
        index's bucket layer (:mod:`repro.engine.index`) instead of
        re-walking ancestor chains and sibling lists per query.
        Behaviour-preserving — both paths produce identical candidate
        lists in identical order (the parity property tests pin this)
        — so this is an ablation knob, not a semantics knob; off
        reproduces the legacy ancestor-walk enumeration exactly.  The
        speculation-index bench measures the speedup.
    max_cache_entries:
        Bound on entries per execution-cache table; least-recently-used
        outcomes are evicted first.
    validation_workers:
        Validation concurrency.  0 (or 1) keeps the byte-exact legacy
        serial loop (:class:`repro.synth.scheduler.SerialScheduler`);
        N > 1 validates each pop's candidate list on an N-thread pool
        (:class:`repro.synth.scheduler.PoolScheduler`) with a
        deterministic rank-order merge — synthesized programs are
        byte-identical to serial (absent per-call timeouts, which clip
        the two loops at different points).  ``None`` (the default)
        resolves from ``REPRO_VALIDATION_WORKERS``, so a deployment or
        CI matrix can flip the whole stack without code changes.
    shared_cache:
        Back the engine with the *process-level*
        :class:`repro.engine.cache.SharedExecutionCache` instead of a
        private cache: concurrent sessions over the same site reuse
        each other's executions and interned snapshots.  ``None`` (the
        default) resolves from ``REPRO_SHARED_CACHE=1``.  Behaviour-
        preserving — cache hits replay recorded outcomes verbatim, so
        this is a throughput knob, not a semantics knob.
    cache_backend:
        Name of the execution-cache persistence backend
        (:mod:`repro.service.backends`): ``"memory"`` keeps today's
        in-process-only tables; ``"file"`` adds a persistent SQLite
        store so a cold process warm-starts from prior sessions and
        worker processes share one store.  ``None`` (the default)
        resolves from ``REPRO_CACHE_BACKEND``.  Behaviour-preserving
        for the same reason as ``shared_cache``: the cache keys are
        value-addressed end to end, and hits replay recorded outcomes
        verbatim.
    pipeline:
        Overlap speculation of the next worklist pop with validation of
        the current one (:class:`repro.synth.scheduler.
        PipelineScheduler`): validated rewrites are merged and pushed by
        a dedicated drain thread in the same deterministic rank order
        the serial loop uses, so synthesized programs stay
        byte-identical to :class:`~repro.synth.scheduler.
        SerialScheduler` (absent per-call timeouts, same caveat as
        ``validation_workers``).  Composes with ``validation_workers``:
        with N > 1 workers the drain thread dispatches validation waves
        to the pool.  ``None`` (the default) resolves from
        ``REPRO_PIPELINE=1``.
    resumable_loops:
        Let the execution cache record *continuations* for loop runs
        that absorb their whole window, so the synthesizer's extension
        and generalization checks resume the trailing loop at its last
        started iteration instead of re-executing it over the grown
        window — per-call extension cost becomes O(new actions), the
        §5.4 interactivity requirement.  Behaviour-preserving: the
        iteration-top state fully determines the remainder, so resumed
        runs are identical to from-scratch runs.  On by default; the
        incremental-pipeline bench measures the serial ablation.
    ranking:
        Name of the ranking strategy applied to generalizing programs
        (see :mod:`repro.synth.ranking`); the default is the paper's
        smallest-program heuristic.
    use_shape_gates:
        Skip anti-unification of pivot pairs whose statement *shapes*
        differ (see :mod:`repro.synth.periodicity`).  Shape inequality
        is a necessary condition of the Figure 10 rules, so this is a
        behaviour-preserving speedup; on by default.
    use_window_periodicity:
        Additionally require a span's whole first iteration to repeat
        shape-wise one period later before speculating on it.  Prunes
        harder but changes the exploration order on tuples whose two
        exhibited iterations are in different rewriting states; off by
        default (the ablation bench measures the trade).
    static_prune:
        Statically refute speculated candidates before dispatching
        validation (:mod:`repro.analysis.feasibility`): a candidate
        whose emission NFA cannot prefix-match the recorded slice it
        must reproduce is dropped without an engine execution.  The
        refutation only fires where Algorithm 3 would certainly
        reject, so synthesized programs are byte-identical either way
        (``benchmarks/bench_static_prune.py`` pins identity and
        measures the saved executions).  ``None`` (the default)
        resolves from ``REPRO_STATIC_PRUNE`` — on unless it is ``0``.
    """

    timeout: float = 1.0
    use_alternative_selectors: bool = True
    use_token_predicates: bool = False
    use_numbered_pagination: bool = False
    max_paginate_advance_alternatives: int = 4
    incremental: bool = True
    max_body: int = 8
    max_loop_bodies_per_span: int = 16
    max_decompositions: int = 64
    max_suffix_child_steps: int = 2
    max_pivot_unifications: int = 6
    max_parametrize_variants: int = 4
    max_rewrites_per_span: int = 3
    max_while_click_alternatives: int = 4
    max_generalizing_programs: int = 128
    max_store_tuples: int = 256
    max_worklist_pops: int | None = None
    use_execution_cache: bool = True
    use_index_enumeration: bool = True
    max_cache_entries: int = 4096
    validation_workers: Optional[int] = None
    shared_cache: Optional[bool] = None
    cache_backend: Optional[str] = None
    pipeline: Optional[bool] = None
    resumable_loops: bool = True
    ranking: str = "size"
    use_shape_gates: bool = True
    use_window_periodicity: bool = False
    static_prune: Optional[bool] = None


#: The full-fledged configuration (Table 1 row 1).
DEFAULT_CONFIG = SynthesisConfig()


def no_selector_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Table 1's "No selector" ablation: raw XPaths only."""
    return replace(base, use_alternative_selectors=False)


def token_predicate_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """The disjunctive-selector extension switched on (beyond the paper)."""
    return replace(base, use_token_predicates=True)


def numbered_pagination_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """The numbered-pagination extension switched on (beyond the paper)."""
    return replace(base, use_numbered_pagination=True)


def no_incremental_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Table 1's "No incremental" ablation: fresh worklist per call."""
    return replace(base, incremental=False)


def no_execution_cache_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Execution memoization off: every simulated run recomputed."""
    return replace(base, use_execution_cache=False)


def no_index_enumeration_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Legacy ancestor-walk candidate enumeration (ablation baseline)."""
    return replace(base, use_index_enumeration=False)


def resolved_validation_workers(config: SynthesisConfig) -> int:
    """The effective worker count: the config knob, else the environment.

    ``REPRO_VALIDATION_WORKERS`` lets a CI matrix or deployment flip
    every synthesizer in the process to pooled validation; an explicit
    config value always wins (benches pin both variants this way).
    """
    if config.validation_workers is not None:
        return max(0, config.validation_workers)
    raw = os.environ.get("REPRO_VALIDATION_WORKERS", "").strip()
    return max(0, int(raw)) if raw else 0


def resolved_shared_cache(config: SynthesisConfig) -> bool:
    """Whether the engine should join the process-level shared cache."""
    if config.shared_cache is not None:
        return config.shared_cache
    return os.environ.get("REPRO_SHARED_CACHE", "").strip() == "1"


def resolved_cache_backend(config: SynthesisConfig) -> str:
    """The effective backend name: the config knob, else the environment.

    ``REPRO_CACHE_BACKEND=file`` flips every synthesizer in the process
    to the persistent store (the CI parity gate runs tier-1 this way);
    an explicit config value always wins.
    """
    if config.cache_backend is not None:
        return config.cache_backend
    return os.environ.get("REPRO_CACHE_BACKEND", "").strip() or "memory"


def resolved_pipeline(config: SynthesisConfig) -> bool:
    """Whether the pipelined worklist schedule is in effect.

    ``REPRO_PIPELINE=1`` flips every synthesizer in the process to the
    pipelined schedule (the CI parity leg runs tier-1 this way); an
    explicit config value always wins.
    """
    if config.pipeline is not None:
        return config.pipeline
    return os.environ.get("REPRO_PIPELINE", "").strip() == "1"


def resolved_static_prune(config: SynthesisConfig) -> bool:
    """Whether static candidate refutation is in effect (default: on).

    ``REPRO_STATIC_PRUNE=0`` disables the pruning pass process-wide (an
    A/B lever for benches and parity suites); an explicit config value
    always wins.
    """
    if config.static_prune is not None:
        return config.static_prune
    return os.environ.get("REPRO_STATIC_PRUNE", "").strip() != "0"


def no_static_prune_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Static candidate refutation off (ablation/bench baseline)."""
    return replace(base, static_prune=False)


def file_backend_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """The persistent file backend switched on (service/warm-start runs)."""
    return replace(base, cache_backend="file")


def serial_validation_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Serial validation over private caches, pinned against the env.

    The exact pre-concurrency behaviour — the ablation baseline the
    parallel-validation and pipeline benches compare against — so the
    pipelined schedule and resumable loops are pinned off too.
    """
    return replace(
        base,
        validation_workers=0,
        shared_cache=False,
        cache_backend="memory",
        pipeline=False,
        resumable_loops=False,
    )


def pipeline_config(
    workers: int = 0,
    shared: bool = False,
    base: SynthesisConfig = DEFAULT_CONFIG,
) -> SynthesisConfig:
    """The pipelined worklist schedule, optionally over pooled validation."""
    return replace(
        base, pipeline=True, validation_workers=workers, shared_cache=shared
    )


def parallel_validation_config(
    workers: int = 4,
    shared: bool = True,
    base: SynthesisConfig = DEFAULT_CONFIG,
) -> SynthesisConfig:
    """Pooled validation over the process-level shared cache."""
    return replace(base, validation_workers=workers, shared_cache=shared)


def ranking_config(strategy: str, base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """A configuration using the named ranking strategy (ablation helper)."""
    return replace(base, ranking=strategy)


def no_shape_gates_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Pivot shape gate disabled (ablation: measures its speedup)."""
    return replace(base, use_shape_gates=False)


def window_periodicity_config(base: SynthesisConfig = DEFAULT_CONFIG) -> SynthesisConfig:
    """Window-periodicity span gate enabled (ablation: harder pruning)."""
    return replace(base, use_window_periodicity=True)
