"""Anti-unification of statements (Figure 10 of the paper).

Given two statements ``S_p`` and ``S_q`` — conjectured to come from the
first and second iteration of the same loop — anti-unification produces a
parametrized statement ``S'_p`` together with the loop variable and the
collection the loop iterates over.

The selector rules follow Figure 10 rule (4): the two concrete selectors
must admit *alternative* readings ``prefix/φ[1]/suffix`` and
``prefix/φ[2]/suffix`` (indices exactly 1 and 2 — the paper's loops always
iterate their collections from the first element).  The value-path rule
(3) is the analogue over accessor sequences.  Rule (2) lifts two already
rewritten selector loops with alpha-equivalent bodies by anti-unifying
their collection bases, which is how nested loops grow from the inside
out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.dom.node import DOMNode
from repro.dom.xpath import CHILD, ConcreteSelector
from repro.lang.ast import (
    ENTER_DATA,
    EXTRACT_URL,
    GO_BACK,
    SEL_VAR,
    VAL_VAR,
    ActionStmt,
    ChildrenOf,
    DescendantsOf,
    ForEachSelector,
    ForEachValue,
    Selector,
    SelectorCollection,
    Statement,
    ValuePath,
    ValuePathsOf,
    Var,
    alpha_equivalent_bodies,
    fresh_var,
    selector_of,
)
from repro.synth.alternatives import SelectorSearch, decompositions
from repro.synth.config import SynthesisConfig

Accessors = tuple[Union[str, int], ...]


@dataclass(frozen=True)
class SelectorAU:
    """Result of anti-unifying two concrete selectors (rules (4)/(5)).

    ``general`` is the symbolic selector ``n`` mentioning ``var``;
    ``collection`` is the N the target loop iterates over; ``first`` is
    ``FirstSelector(N)`` — the binding of ``var`` in iteration one, which
    parametrization of the surrounding statements is performed against.
    """

    var: Var
    general: Selector
    collection: SelectorCollection
    first: ConcreteSelector


@dataclass(frozen=True)
class StatementAU:
    """Result of anti-unifying two statements: ``(S'_p, variable, N/V)``."""

    stmt: Statement
    var: Var
    collection: Union[SelectorCollection, ValuePathsOf]
    first: Union[ConcreteSelector, ValuePath]


def anti_unify_selectors(
    first_sel: ConcreteSelector,
    first_dom: DOMNode,
    second_sel: ConcreteSelector,
    second_dom: DOMNode,
    config: SynthesisConfig,
    search: Optional["SelectorSearch"] = None,
) -> list[SelectorAU]:
    """All loop readings of two selectors at collection indices 1 and 2.

    Decomposes both selectors (on their own snapshots) and pairs readings
    that agree on prefix, axis, predicate and suffix while sitting at
    indices 1 and 2 respectively.  Fresh loop variables are allocated per
    call, so results are never shared between spans.
    """
    if search is None:
        search = SelectorSearch(
            use_alternatives=config.use_alternative_selectors,
            max_suffix_child_steps=config.max_suffix_child_steps,
            max_decompositions=config.max_decompositions,
            use_index_enumeration=config.use_index_enumeration,
        )
    pairings = search.loop_pairings(
        first_sel, first_dom, second_sel, second_dom, config.max_pivot_unifications
    )
    results: list[SelectorAU] = []
    for item in pairings:
        var = fresh_var(SEL_VAR)
        base = selector_of(item.prefix)
        if item.axis == CHILD:
            collection: SelectorCollection = ChildrenOf(base, item.pred)
            first_binding = item.prefix.child(item.pred, 1)
        else:
            collection = DescendantsOf(base, item.pred)
            first_binding = item.prefix.desc(item.pred, 1)
        results.append(
            SelectorAU(var, Selector(var, item.suffix), collection, first_binding)
        )
    return results


def anti_unify_accessors(first: Accessors, second: Accessors) -> list[tuple[Accessors, Accessors]]:
    """Rule (3) over accessor sequences: split as ``prefix·[1/2]·suffix``.

    Returns every ``(prefix, suffix)`` such that
    ``first == prefix + (1,) + suffix`` and ``second == prefix + (2,) + suffix``.
    """
    if len(first) != len(second):
        return []
    splits: list[tuple[Accessors, Accessors]] = []
    for position in range(len(first)):
        if first[position] == 1 and second[position] == 2:
            if (
                first[:position] == second[:position]
                and first[position + 1 :] == second[position + 1 :]
            ):
                splits.append((first[:position], first[position + 1 :]))
    return splits


def _concrete_target(stmt: ActionStmt) -> Optional[ConcreteSelector]:
    if stmt.target is None or not stmt.target.is_concrete:
        return None
    return ConcreteSelector(stmt.target.steps)


def _anti_unify_actions(
    first_stmt: ActionStmt,
    first_dom: DOMNode,
    second_stmt: ActionStmt,
    second_dom: DOMNode,
    config: SynthesisConfig,
    search: Optional[SelectorSearch] = None,
) -> list[StatementAU]:
    if first_stmt.kind != second_stmt.kind:
        return []
    if first_stmt.kind in (GO_BACK, EXTRACT_URL):
        return []  # nothing varies between iterations
    first_target = _concrete_target(first_stmt)
    second_target = _concrete_target(second_stmt)
    if first_target is None or second_target is None:
        return []
    results: list[StatementAU] = []

    # Value-path pivot (rule (3)): same field, consecutive data rows.
    if first_stmt.kind == ENTER_DATA and first_target == second_target:
        value_a, value_b = first_stmt.value, second_stmt.value
        if value_a.is_concrete and value_b.is_concrete:
            for prefix, suffix in anti_unify_accessors(value_a.accessors, value_b.accessors):
                var = fresh_var(VAL_VAR)
                stmt = ActionStmt(
                    first_stmt.kind, first_stmt.target, value=ValuePath(var, suffix)
                )
                collection = ValuePathsOf(ValuePath(None, prefix))
                first_binding = ValuePath(None, prefix + (1,))
                results.append(StatementAU(stmt, var, collection, first_binding))

    # Selector pivot (rule (1) and its per-kind analogues): the non-selector
    # arguments must agree across the two iterations.
    if first_stmt.text == second_stmt.text and first_stmt.value == second_stmt.value:
        for unified in anti_unify_selectors(
            first_target, first_dom, second_target, second_dom, config, search
        ):
            stmt = ActionStmt(
                first_stmt.kind,
                unified.general,
                text=first_stmt.text,
                value=first_stmt.value,
            )
            results.append(
                StatementAU(stmt, unified.var, unified.collection, unified.first)
            )
    return results


def _anti_unify_selector_loops(
    first_loop: ForEachSelector,
    first_dom: DOMNode,
    second_loop: ForEachSelector,
    second_dom: DOMNode,
    config: SynthesisConfig,
    search: Optional[SelectorSearch] = None,
) -> list[StatementAU]:
    """Rule (2): lift two sibling loops by anti-unifying their bases."""
    if type(first_loop.collection) is not type(second_loop.collection):
        return []
    if first_loop.collection.pred != second_loop.collection.pred:
        return []
    if not alpha_equivalent_bodies(
        first_loop.body, first_loop.var, second_loop.body, second_loop.var
    ):
        return []
    base_a, base_b = first_loop.collection.base, second_loop.collection.base
    if not (base_a.is_concrete and base_b.is_concrete):
        return []
    results: list[StatementAU] = []
    for unified in anti_unify_selectors(
        ConcreteSelector(base_a.steps),
        first_dom,
        ConcreteSelector(base_b.steps),
        second_dom,
        config,
        search,
    ):
        collection_type = type(first_loop.collection)
        lifted = ForEachSelector(
            first_loop.var,
            collection_type(unified.general, first_loop.collection.pred),
            first_loop.body,
        )
        results.append(
            StatementAU(lifted, unified.var, unified.collection, unified.first)
        )
    return results


def _anti_unify_value_loops(
    first_loop: ForEachValue,
    second_loop: ForEachValue,
) -> list[StatementAU]:
    """Value analogue of rule (2): nested data iteration (rows × cells)."""
    if not alpha_equivalent_bodies(
        first_loop.body, first_loop.var, second_loop.body, second_loop.var
    ):
        return []
    path_a = first_loop.collection.path
    path_b = second_loop.collection.path
    if not (path_a.is_concrete and path_b.is_concrete):
        return []
    results: list[StatementAU] = []
    for prefix, suffix in anti_unify_accessors(path_a.accessors, path_b.accessors):
        var = fresh_var(VAL_VAR)
        lifted = ForEachValue(
            first_loop.var,
            ValuePathsOf(ValuePath(var, suffix)),
            first_loop.body,
        )
        collection = ValuePathsOf(ValuePath(None, prefix))
        first_binding = ValuePath(None, prefix + (1,))
        results.append(StatementAU(lifted, var, collection, first_binding))
    return results


def anti_unify_statements(
    first_stmt: Statement,
    first_dom: DOMNode,
    second_stmt: Statement,
    second_dom: DOMNode,
    config: SynthesisConfig,
    search: Optional[SelectorSearch] = None,
) -> list[StatementAU]:
    """Anti-unify a conjectured (first-iteration, second-iteration) pair.

    Dispatches on statement shape; returns the empty list when the two
    statements cannot come from consecutive iterations of any loop the
    rules cover.
    """
    if isinstance(first_stmt, ActionStmt) and isinstance(second_stmt, ActionStmt):
        return _anti_unify_actions(
            first_stmt, first_dom, second_stmt, second_dom, config, search
        )
    if isinstance(first_stmt, ForEachSelector) and isinstance(second_stmt, ForEachSelector):
        return _anti_unify_selector_loops(
            first_stmt, first_dom, second_stmt, second_dom, config, search
        )
    if isinstance(first_stmt, ForEachValue) and isinstance(second_stmt, ForEachValue):
        return _anti_unify_value_loops(first_stmt, second_stmt)
    return []
