"""Speculation for numbered pagination (extension beyond the paper).

§7.1 reports b9 — a job site paginating "using page numbers and a 'next
10 pages' button" — as unsupported: advancing one page clicks a
*different* button every time, so no selector the while-loop rule can
anti-unify terminates the loop.  The give-away structure is in the
*attributes*: consecutive page controls carry a counter
(``data-page='2'`` / ``data-page='3'``, ``href='?page=4'``, ...).

This module speculates :class:`~repro.lang.ast.PaginateLoop` rewrites:

1. like the while-loop rule, conjecture a first iteration
   ``S_i ·· S_p`` ending in a Click, with the matching Click one
   iteration later at ``S_q``;
2. instead of anti-unifying the two click *selectors*, anti-unify the
   two clicked *nodes' attributes*: an attribute whose values split as
   ``prefix + k + suffix`` and ``prefix + (k+1) + suffix`` yields a
   :class:`~repro.lang.ast.CounterTemplate`;
3. scan the trace beyond ``S_q``, consuming clicks the template
   explains; the first click it cannot explain is the block-advance
   ("next 10 pages") candidate — its alternative selectors become the
   loop's ``advance`` options.

Everything emitted here is speculative; Algorithm 3's semantic
validation separates the pagers from coincidental counters.  Enabled by
``SynthesisConfig.use_numbered_pagination`` (off by default, matching
the published system).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.dom.node import DOMNode
from repro.dom.xpath import (
    DESC,
    ConcreteSelector,
    Predicate,
    index_among_descendants,
    resolve,
)
from repro.lang.ast import (
    CLICK,
    ActionStmt,
    CounterTemplate,
    PaginateLoop,
    Statement,
    selector_of,
)


def counter_pair(first: str, second: str) -> Optional[tuple[str, int, str]]:
    """Split two strings as ``prefix+k+suffix`` / ``prefix+(k+1)+suffix``.

    Returns ``(prefix, k, suffix)`` or ``None``.  The common prefix and
    suffix are trimmed back to digit-run boundaries so ``page-12`` /
    ``page-13`` yields counter 12 (not prefix ``page-1``, counter 2),
    and values with leading zeros are rejected (they would not
    round-trip through ``str``).
    """
    if first == second:
        return None
    limit = min(len(first), len(second))
    prefix_len = 0
    while prefix_len < limit and first[prefix_len] == second[prefix_len]:
        prefix_len += 1
    while prefix_len > 0 and first[prefix_len - 1].isdigit():
        prefix_len -= 1
    suffix_len = 0
    while (
        suffix_len < limit - prefix_len
        and first[len(first) - 1 - suffix_len] == second[len(second) - 1 - suffix_len]
    ):
        suffix_len += 1
    while suffix_len > 0 and first[len(first) - suffix_len].isdigit():
        suffix_len -= 1
    middle_first = first[prefix_len : len(first) - suffix_len]
    middle_second = second[prefix_len : len(second) - suffix_len]
    if not (middle_first.isdigit() and middle_second.isdigit()):
        return None
    counter, successor = int(middle_first), int(middle_second)
    if successor != counter + 1:
        return None
    if str(counter) != middle_first or str(successor) != middle_second:
        return None
    suffix = first[len(first) - suffix_len :] if suffix_len else ""
    return first[:prefix_len], counter, suffix


def counter_templates(
    node1: DOMNode, dom1: DOMNode, node2: DOMNode, dom2: DOMNode
) -> Iterator[tuple[CounterTemplate, int]]:
    """Templates whose instantiations at ``k``/``k+1`` address the nodes.

    One candidate per counter-bearing attribute shared by the two
    clicked nodes.  Templates are document-anchored descendant steps;
    the match index must agree on both snapshots (it is baked into the
    template).
    """
    if node1.tag != node2.tag:
        return
    for attr, value1 in node1.attrs.items():
        value2 = node2.attrs.get(attr)
        if value2 is None:
            continue
        split = counter_pair(value1, value2)
        if split is None:
            continue
        prefix, counter, suffix = split
        index1 = index_among_descendants(
            None, node1, Predicate(node1.tag, attr, value1), dom1
        )
        index2 = index_among_descendants(
            None, node2, Predicate(node2.tag, attr, value2), dom2
        )
        if index1 is None or index1 != index2:
            continue
        template = CounterTemplate(
            prefix_steps=(),
            axis=DESC,
            tag=node1.tag,
            attr=attr,
            value_prefix=prefix,
            value_suffix=suffix,
            index=index1,
        )
        yield template, counter


def _concrete_click(stmt: Statement) -> Optional[ConcreteSelector]:
    """The selector of a concrete Click statement, else ``None``."""
    if (
        isinstance(stmt, ActionStmt)
        and stmt.kind == CLICK
        and stmt.target is not None
        and stmt.target.is_concrete
    ):
        return ConcreteSelector(stmt.target.steps)
    return None


def advance_candidates(tuple_, ctx, second: int, template: CounterTemplate,
                       next_counter: int) -> list[ConcreteSelector]:
    """Advance-button selector options for one paginate span.

    Walks the statements after the second exhibited click, consuming
    clicks the template explains (incrementing the expected counter);
    the first unexplained click is conjectured to be the block-advance
    button, and its alternative selectors are returned (bounded).
    """
    counter = next_counter
    for index in range(second + 1, tuple_.length):
        selector = _concrete_click(tuple_.statements[index])
        if selector is None:
            continue
        dom = ctx.context_dom(tuple_, index)
        clicked = resolve(selector, dom)
        if clicked is None:
            continue
        if resolve(template.instantiate(counter), dom) is clicked:
            counter += 1
            continue
        return ctx.search.alternatives(
            selector, dom, max_results=ctx.config.max_paginate_advance_alternatives
        )
    return []


def speculate_paginate(tuple_, ctx, emit) -> None:
    """Enumerate paginate-loop s-rewrites of ``tuple_``'s program.

    ``emit(stmt, start, end)`` receives each candidate with the span of
    its conjectured first iteration (body + templated click), mirroring
    Algorithm 2's while-loop case.  Spans are *not* pruned by
    ``spec_start``: the advance button may only become visible in later
    increments of the trace, so new candidates can arise from old spans.
    """
    statements = tuple_.statements
    length = tuple_.length
    config = ctx.config
    for span_len in range(2, config.max_body + 1):
        for start in range(0, length - span_len):
            pivot = start + span_len - 1
            second = pivot + span_len
            if second >= length:
                continue
            first_selector = _concrete_click(statements[pivot])
            second_selector = _concrete_click(statements[second])
            if first_selector is None or second_selector is None:
                continue
            dom1 = ctx.context_dom(tuple_, pivot)
            dom2 = ctx.context_dom(tuple_, second)
            node1 = resolve(first_selector, dom1)
            node2 = resolve(second_selector, dom2)
            if node1 is None or node2 is None:
                continue
            body = statements[start:pivot]
            for template, counter in counter_templates(node1, dom1, node2, dom2):
                advances = advance_candidates(tuple_, ctx, second, template, counter + 2)
                for advance in (None, *advances):
                    advance_selector = (
                        selector_of(advance) if advance is not None else None
                    )
                    loop = PaginateLoop(body, template, advance_selector, start=counter)
                    emit(loop, start, pivot)
