"""Worklist rewrite tuples — the ``(P, ®A, ®Π)`` triples of Algorithm 1.

A :class:`RewriteTuple` pairs a program with the partition of the action
trace its statements cover.  Partitions are stored as cumulative *bounds*
into the master action trace: statement ``k`` covers actions
``[bounds[k], bounds[k+1])`` — invariant I1.  Invariant I2 (each statement
satisfies its slice) is maintained by construction: singleton statements
trivially reproduce their action and loop statements are only installed
after validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.lang.actions import Action, action_to_statement
from repro.lang.ast import (
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
    canonical_program,
    program_size,
)


def is_loop(stmt: Statement) -> bool:
    """True for the loop statement forms (incl. the paginate extension)."""
    return isinstance(stmt, (ForEachSelector, ForEachValue, WhileLoop, PaginateLoop))


@dataclass
class RewriteTuple:
    """One worklist entry.

    Attributes
    ----------
    statements:
        The program ``P = S₁; ··; S_l``.
    bounds:
        ``l + 1`` cumulative action indices; statement ``k`` covers
        ``actions[bounds[k]:bounds[k+1]]``.
    spec_start:
        Statement index below which spans were already speculated by an
        ancestor tuple (incrementality, §5.4).  Only spans whose
        second-iteration end reaches ``spec_start`` or beyond are
        (re-)explored.
    processed:
        Whether Algorithm 1 already popped this tuple (line 4).
    """

    statements: tuple[Statement, ...]
    bounds: tuple[int, ...]
    spec_start: int = 0
    processed: bool = False
    _key: Optional[tuple] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.bounds) != len(self.statements) + 1:
            raise ValueError("bounds must have one more entry than statements")
        if any(b > a for a, b in zip(self.bounds[1:], self.bounds)):
            raise ValueError("bounds must be non-decreasing")

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of statements (l)."""
        return len(self.statements)

    @property
    def covered(self) -> int:
        """Number of trace actions the tuple covers (= bounds[-1])."""
        return self.bounds[-1]

    def slice_bounds(self, index: int) -> tuple[int, int]:
        """Action-index range covered by statement ``index``."""
        return self.bounds[index], self.bounds[index + 1]

    def program(self) -> Program:
        """The tuple's program."""
        return Program(self.statements)

    def size(self) -> int:
        """AST size of the program (ranking key)."""
        return program_size(self.program())

    def key(self, canon=None) -> tuple:
        """Dedup key: alpha-canonical program plus its trace partition.

        ``canon`` optionally supplies a per-statement canonicalizer
        (e.g. the execution engine's id-memoized one); statements are
        shared between tuples and their rewrites, so memoized
        canonicalization turns the O(program) key into O(statements)
        dictionary lookups.
        """
        if self._key is None:
            if canon is None:
                program_key = canonical_program(self.program())
            else:
                program_key = tuple(canon(stmt) for stmt in self.statements)
            self._key = (program_key, self.bounds)
        return self._key

    def ends_with_loop(self) -> bool:
        """Only tuples whose final statement is a loop can generalize."""
        return bool(self.statements) and is_loop(self.statements[-1])


def initial_tuple(actions: Sequence[Action]) -> RewriteTuple:
    """Algorithm 1 line 1: ``P₀ = a₁; ··; a_m`` with singleton slices."""
    statements = tuple(action_to_statement(action) for action in actions)
    bounds = tuple(range(len(actions) + 1))
    return RewriteTuple(statements, bounds, spec_start=0)


def extend_with_singletons(
    base: RewriteTuple, new_actions: Sequence[Action], start_index: int
) -> RewriteTuple:
    """Append newly demonstrated actions as singleton statements.

    ``start_index`` is the action index of the first new action (i.e. the
    old trace length).  The extension inherits ``spec_start`` from the
    base when the base was never processed; otherwise spans inside the
    base were all explored, so only spans reaching the new suffix remain.
    """
    statements = base.statements + tuple(
        action_to_statement(action) for action in new_actions
    )
    bounds = base.bounds + tuple(
        start_index + offset + 1 for offset in range(len(new_actions))
    )
    spec_start = base.length if base.processed else base.spec_start
    return RewriteTuple(statements, bounds, spec_start=spec_start)
