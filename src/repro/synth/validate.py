"""The Validate procedure (Algorithm 3).

A speculative rewrite ``(S', i, j)`` is validated by *executing* ``S'``
under the trace semantics over all remaining DOMs: if the produced action
trace exactly reproduces the recorded slice from statement ``i`` through
some statement ``r > j`` (one full iteration beyond the speculated first
one), the rewrite is true and a new worklist tuple replacing
``S_i ·· S_r`` with ``S'`` is returned.

Exact reproduction matters: executing ``S'`` over *all* remaining DOMs
means a loop that would keep running past its conjectured slice shows up
as a longer or inconsistent trace, and the s-rewrite is rejected —
installing it would break invariant I2.

:func:`validate` is a *pure* function of ``(candidate, tuple_, ctx)``:
it never mutates the tuple, the context, or any synthesis state — its
only shared touch-point is the context's execution engine, whose cache
fills are semantics-neutral.  The validation schedulers
(:mod:`repro.synth.scheduler`) rely on this to run many calls
concurrently and merge results in rank order.
"""

from __future__ import annotations

from typing import Optional

from repro.semantics.trace import DOMTrace
from repro.synth.rewrite import RewriteTuple
from repro.synth.speculate import SpeculationContext, SRewrite


def validate(
    candidate: SRewrite,
    tuple_: RewriteTuple,
    ctx: SpeculationContext,
) -> Optional[RewriteTuple]:
    """Check one s-rewrite; return the rewritten tuple or ``None``.

    Implements Algorithm 3 for a single Ω element: line 3 executes ``S'``
    against ``Π_i ++ ·· ++ Π_l`` (a contiguous window of the master DOM
    trace, by invariant I1), line 4 finds the matched slice end ``r``.
    Execution goes through the context's memoizing engine: identical
    candidates conjectured from different worklist tuples run once.
    """
    start_action = tuple_.bounds[candidate.start]
    trace_end = tuple_.covered
    window = DOMTrace(ctx.snapshots, start_action, trace_end)
    produced = ctx.engine.execute(
        [candidate.stmt], window, max_actions=len(window)
    ).actions
    count = len(produced)
    if count == 0:
        return None

    # The produced actions must reproduce the recorded slice exactly.
    reference = ctx.actions[start_action : start_action + count]
    if ctx.engine.consistent_prefix_length(produced, reference, window) != count:
        return None

    # The matched slice must end on a statement boundary strictly beyond
    # the first iteration: bounds[r + 1] == start_action + count for some
    # r in [j + 1, l - 1].
    target = start_action + count
    bounds = tuple_.bounds
    boundary = _find_boundary(bounds, target)
    if boundary is None:
        return None
    matched_end = boundary - 1  # r, inclusive statement index
    if matched_end < candidate.end + 1:
        return None

    statements = (
        tuple_.statements[: candidate.start]
        + (candidate.stmt,)
        + tuple_.statements[matched_end + 1 :]
    )
    new_bounds = bounds[: candidate.start + 1] + bounds[matched_end + 1 :]
    return RewriteTuple(statements, new_bounds, spec_start=0)


def _find_boundary(bounds: tuple[int, ...], target: int) -> Optional[int]:
    """Index ``b`` with ``bounds[b] == target``, or None (binary search)."""
    low, high = 0, len(bounds) - 1
    while low <= high:
        mid = (low + high) // 2
        value = bounds[mid]
        if value == target:
            return mid
        if value < target:
            low = mid + 1
        else:
            high = mid - 1
    return None
