"""The Speculate procedure (Algorithm 2).

Speculation enumerates candidate *spans*: a conjectured first iteration
``S_i ·· S_j`` together with a pivot pair ``(S_p, S_q)`` where
``q = p + (j − i + 1)`` places ``S_q`` at ``S_p``'s position in the
conjectured *second* iteration.  Anti-unifying the pivot pair yields the
loop variable, collection, and one body statement; parametrizing the rest
of the span completes candidate loop bodies.  While-loop candidates
instead look for a repeated Click one iteration apart (lines 14-16).

Everything produced here is a *speculative* rewrite: only its first
iteration is known to match the trace.  :mod:`repro.synth.validate`
separates the true rewrites from the spurious ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector
from repro.engine.engine import ExecutionEngine
from repro.lang.actions import Action
from repro.lang.ast import (
    CLICK,
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    Statement,
    ValuePathsOf,
    WhileLoop,
    canonical_statement,
    selector_of,
    statement_size,
)
from repro.lang.data import DataSource
from repro.synth.anti_unify import StatementAU, anti_unify_statements
from repro.synth.alternatives import SelectorSearch
from repro.synth.config import SynthesisConfig
from repro.synth.paginate import speculate_paginate
from repro.synth.parametrize import parametrize_statement
from repro.synth.periodicity import Shape, shape_sequence, window_periodic
from repro.synth.rewrite import RewriteTuple


@dataclass(frozen=True)
class SRewrite:
    """A speculative rewrite ``(S', S_i, S_j)`` in statement indices.

    ``stmt`` replaces the slice ``statements[start .. end]`` (inclusive,
    0-based) — the conjectured first iteration.
    """

    stmt: Statement
    start: int
    end: int


class SpeculationContext:
    """Immutable inputs shared by speculation and validation.

    Holds the master recorded traces and per-call configuration.  The
    snapshot a statement's slice starts on (its *context DOM*) is where
    its selectors are decomposed and resolved.  ``engine`` is the
    memoizing :class:`~repro.engine.engine.ExecutionEngine` validation
    executes through — the only simulated-execution entry point for the
    whole synthesis stack.
    """

    def __init__(
        self,
        actions: Sequence[Action],
        snapshots: Sequence[DOMNode],
        data: DataSource,
        config: SynthesisConfig,
        search: "SelectorSearch | None" = None,
        engine: "ExecutionEngine | None" = None,
    ) -> None:
        self.actions = actions
        self.snapshots = snapshots
        self.data = data
        self.config = config
        self.engine = engine or ExecutionEngine.for_config(data, config)
        self.search = search or SelectorSearch(
            use_alternatives=config.use_alternative_selectors,
            max_suffix_child_steps=config.max_suffix_child_steps,
            max_decompositions=config.max_decompositions,
            use_index_enumeration=config.use_index_enumeration,
        )
        # Statement-level memos.  Statement objects are shared between a
        # tuple and its extensions, so id-keyed caching hits across spans
        # and across incremental calls; the search object pins referents.
        if not hasattr(self.search, "stmt_caches"):
            # (anti-unify, parametrize, canonical-statement, statement-size)
            self.search.stmt_caches = ({}, {}, {}, {})

    def context_dom(self, tuple_: RewriteTuple, stmt_index: int) -> DOMNode:
        """The snapshot the statement's first action executed on."""
        return self.snapshots[tuple_.bounds[stmt_index]]

    def anti_unify(self, first, first_dom, second, second_dom) -> list[StatementAU]:
        """Memoised :func:`anti_unify_statements`.

        Sharing memoised results (including their loop variables) between
        spans is safe: a reused variable can never end up bound at two
        nesting levels of one program, because every loop's variable comes
        from the memo entry of its *own* pivot pair, and the pivot pair of
        a loop nesting another is necessarily a different statement pair.
        """
        cache = self.search.stmt_caches[0]
        key = (id(first), id(first_dom), id(second), id(second_dom))
        hit = cache.get(key)
        if hit is None:
            hit = anti_unify_statements(
                first, first_dom, second, second_dom, self.config, self.search
            )
            cache[key] = hit
            self.search._pin(first, first_dom, second, second_dom)
        return hit

    @staticmethod
    def _composite_key(stmt: Statement) -> "tuple | None":
        """A component-identity key for freshly assembled loops.

        Speculated loops are constructed anew per span, but their
        variables, collections, and body statements all come out of
        memos and are shared objects — equal component ids imply equal
        loops.  ``None`` means the statement form has no such key.
        """
        if isinstance(stmt, (ForEachSelector, ForEachValue)):
            return (
                type(stmt).__name__,
                id(stmt.var),
                id(stmt.collection),
                tuple(map(id, stmt.body)),
            )
        if isinstance(stmt, WhileLoop):
            # the click statement is rebuilt per emission, but its step
            # tuple is shared with the memoised common-selector result
            return ("while", tuple(map(id, stmt.body)), id(stmt.click.target.steps))
        return None

    def canonical_key(self, stmt: Statement) -> tuple:
        """Memoised :func:`repro.lang.ast.canonical_statement` for dedup."""
        key = self._composite_key(stmt)
        if key is None:
            return canonical_statement(stmt)
        cache = self.search.stmt_caches[2]
        hit = cache.get(key)
        if hit is None:
            hit = canonical_statement(stmt)
            cache[key] = hit
            self.search._pin(stmt)
        return hit

    def statement_size(self, stmt: Statement) -> int:
        """Memoised :func:`repro.lang.ast.statement_size` (ranking key)."""
        key = self._composite_key(stmt)
        if key is None:
            return statement_size(stmt)
        cache = self.search.stmt_caches[3]
        hit = cache.get(key)
        if hit is None:
            hit = cache[key] = statement_size(stmt)
            self.search._pin(stmt)
        return hit

    def parametrize(self, stmt, candidate: StatementAU, dom) -> list[Statement]:
        """Memoised :func:`parametrize_statement` against an AU's binding."""
        cache = self.search.stmt_caches[1]
        key = (id(stmt), id(candidate), id(dom))
        hit = cache.get(key)
        if hit is None:
            hit = parametrize_statement(
                stmt, candidate.var, candidate.first, dom, self.config, self.search
            )
            cache[key] = hit
            self.search._pin(stmt, candidate, dom)
        return hit


def speculate(tuple_: RewriteTuple, ctx: SpeculationContext) -> list[SRewrite]:
    """Algorithm 2: all s-rewrites of ``tuple_``'s program.

    Spans whose second iteration ends before ``tuple_.spec_start`` were
    already explored on an ancestor tuple and are skipped (§5.4).
    Paginate spans (extension) are exempt from that pruning — their
    advance-button options can appear in later trace increments.
    """
    results: list[SRewrite] = []
    seen: set[tuple] = set()
    if ctx.config.use_numbered_pagination:
        speculate_paginate(
            tuple_,
            ctx,
            lambda stmt, start, end: _emit(ctx, results, seen, stmt, start, end),
        )
    if tuple_.spec_start >= tuple_.length:
        # every possible second-iteration position was already explored
        # on an ancestor tuple (e.g. a pure loop-absorption extension)
        return results
    shapes = (
        shape_sequence(tuple_.statements)
        if ctx.config.use_shape_gates or ctx.config.use_window_periodicity
        else None
    )
    _speculate_foreach(tuple_, ctx, results, seen, shapes)
    _speculate_while(tuple_, ctx, results, seen, shapes)
    return results


def _emit(
    ctx: SpeculationContext,
    results: list[SRewrite],
    seen: set[tuple],
    stmt: Statement,
    start: int,
    end: int,
) -> None:
    key = (ctx.canonical_key(stmt), start, end)
    if key not in seen:
        seen.add(key)
        results.append(SRewrite(stmt, start, end))


def _speculate_foreach(
    tuple_: RewriteTuple,
    ctx: SpeculationContext,
    results: list[SRewrite],
    seen: set[tuple],
    shapes: "list[Shape] | None",
) -> None:
    """Lines 2-13: selector-loop and value-loop spans."""
    statements = tuple_.statements
    length = tuple_.length
    config = ctx.config
    for span_len in range(1, config.max_body + 1):
        for start in range(0, length - span_len):
            if (
                shapes is not None
                and config.use_window_periodicity
                and not window_periodic(shapes, start, span_len)
            ):
                continue  # first iteration does not repeat shape-wise
            end = start + span_len - 1  # inclusive first-iteration end
            for pivot in range(start, end + 1):
                second = pivot + span_len
                if second >= length:
                    break
                if second < tuple_.spec_start:
                    continue  # already explored on an ancestor tuple
                if (
                    shapes is not None
                    and config.use_shape_gates
                    and shapes[pivot] != shapes[second]
                ):
                    continue  # the rules cannot unify shape-distinct pivots
                pivot_dom = ctx.context_dom(tuple_, pivot)
                second_dom = ctx.context_dom(tuple_, second)
                unified = ctx.anti_unify(
                    statements[pivot], pivot_dom, statements[second], second_dom
                )
                for candidate in unified:
                    _assemble_loops(
                        tuple_, ctx, candidate, start, end, pivot, results, seen
                    )


def _assemble_loops(
    tuple_: RewriteTuple,
    ctx: SpeculationContext,
    candidate: StatementAU,
    start: int,
    end: int,
    pivot: int,
    results: list[SRewrite],
    seen: set[tuple],
) -> None:
    """Lines 4-7 / 10-13: parametrize the span and build loop statements."""
    statements = tuple_.statements
    config = ctx.config
    variant_lists: list[list[Statement]] = []
    for index in range(start, end + 1):
        if index == pivot:
            variant_lists.append([candidate.stmt])
            continue
        variants = ctx.parametrize(
            statements[index], candidate, ctx.context_dom(tuple_, index)
        )
        if len(variants) > 1:
            # Dedup each slot *before* the Cartesian product: alpha-
            # equivalent variants would only produce loops `_emit` drops
            # anyway, but they multiply the product and burn the
            # `max_loop_bodies_per_span` clip on bodies that cannot
            # survive dedup.  Pruning per-slot keeps the clip cheap and
            # spends it on distinct bodies only.
            unique: list[Statement] = []
            slot_seen: set[tuple] = set()
            for variant in variants:
                variant_key = ctx.canonical_key(variant)
                if variant_key not in slot_seen:
                    slot_seen.add(variant_key)
                    unique.append(variant)
            variants = unique
        variant_lists.append(variants)
    bodies = itertools.islice(
        itertools.product(*variant_lists), config.max_loop_bodies_per_span
    )
    value_loop = isinstance(candidate.collection, ValuePathsOf)
    for body in bodies:
        if value_loop:
            loop: Statement = ForEachValue(candidate.var, candidate.collection, tuple(body))
        else:
            loop = ForEachSelector(candidate.var, candidate.collection, tuple(body))
        _emit(ctx, results, seen, loop, start, end)


def _speculate_while(
    tuple_: RewriteTuple,
    ctx: SpeculationContext,
    results: list[SRewrite],
    seen: set[tuple],
    shapes: "list[Shape] | None",
) -> None:
    """Lines 14-16: click-terminated while-loop spans.

    The body is ``S_i ·· S_p`` with ``S_p`` a Click whose selector
    re-occurs one iteration later at ``S_q``.  Following §2's "selector
    search", the terminating click may use any selector that addresses the
    recorded button on both exhibited pages (P3's click does exactly
    this), including the raw recorded one.
    """
    statements = tuple_.statements
    length = tuple_.length
    config = ctx.config
    for span_len in range(2, config.max_body + 1):
        for start in range(0, length - span_len):
            pivot = start + span_len - 1  # the Click ending the iteration
            second = pivot + span_len
            if second >= length:
                continue
            if second < tuple_.spec_start:
                continue
            if (
                shapes is not None
                and config.use_window_periodicity
                and not window_periodic(shapes, start, span_len)
            ):
                continue
            first_click = statements[pivot]
            second_click = statements[second]
            if not (
                isinstance(first_click, ActionStmt)
                and isinstance(second_click, ActionStmt)
                and first_click.kind == CLICK
                and second_click.kind == CLICK
                and first_click.target.is_concrete
                and second_click.target.is_concrete
            ):
                continue
            shared = ctx.search.common(
                ConcreteSelector(first_click.target.steps),
                ctx.context_dom(tuple_, pivot),
                ConcreteSelector(second_click.target.steps),
                ctx.context_dom(tuple_, second),
                max_results=config.max_while_click_alternatives,
            )
            for selector in shared:
                loop = WhileLoop(
                    statements[start:pivot],
                    ActionStmt(CLICK, selector_of(selector)),
                )
                _emit(ctx, results, seen, loop, start, pivot)
