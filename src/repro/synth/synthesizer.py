"""The top-level synthesis algorithm (Algorithm 1) with incrementality (§5.4).

The synthesizer maintains a *store* of rewrite tuples across calls.  Each
``synthesize`` call receives the full demonstration so far (actions plus
one more DOM snapshot); stored tuples are first *extended* to cover the
new suffix — trailing loops absorb the new actions they correctly predict,
everything else is appended as singleton statements, and tuples whose
trailing loop mispredicted are dropped.  The worklist then pops tuples
smallest-program-first, records the ones that generalize, and grows the
store through speculate-and-validate.

The per-call wall-clock budget mirrors the paper's 1-second timeout per
prediction test.

How each pop's candidate list is validated is delegated to a
:mod:`repro.synth.scheduler` scheduler — serially by default, or on a
worker pool with a deterministic rank-order merge when the config's
``validation_workers`` resolves above 1.  Either way the algorithm (and
its output, byte for byte) is the one above; only the schedule differs.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.engine import index as dom_index
from repro.engine.engine import ExecutionEngine
from repro.lang.actions import Action
from repro.lang.ast import Program
from repro.lang.data import DataSource
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.semantics.trace import DOMTrace
from repro.synth.alternatives import SelectorSearch
from repro.synth.config import (
    DEFAULT_CONFIG,
    SynthesisConfig,
    resolved_pipeline,
    resolved_shared_cache,
    resolved_validation_workers,
)
from repro.synth.ranking import Candidate, rank
from repro.synth.rewrite import RewriteTuple, extend_with_singletons, initial_tuple
from repro.synth.scheduler import PipelineScheduler, scheduler_for
from repro.synth.speculate import SpeculationContext, speculate
from repro.util.errors import SynthesisError
from repro.util.timer import Deadline


class _SynthMetrics:
    """Lazy handles on the synthesis registry families.

    :class:`SynthesisStats` keeps its shape (the harnesses depend on
    it); these families are where each call's finished stats *also*
    land, at the same absorb point that reconciles the engine counter
    deltas — so ``GET /v1/metrics`` serves exactly the numbers the
    harness tables would.
    """

    _instance = None

    def __init__(self):
        registry = obs_metrics.registry()
        self.calls = registry.counter(
            "repro_synth_calls_total", "synthesize() calls completed."
        )
        self.timeouts = registry.counter(
            "repro_synth_timeouts_total", "Calls that hit their deadline."
        )
        self.pops = registry.counter(
            "repro_synth_pops_total", "Worklist tuples popped."
        )
        self.speculated = registry.counter(
            "repro_synth_speculated_total", "Candidates emitted by speculation."
        )
        self.validations = registry.counter(
            "repro_synth_validations_total",
            "Engine validation executions run (Algorithm 3 calls).",
        )
        self.validated = registry.counter(
            "repro_synth_validated_total", "Candidates that passed validation."
        )
        self.pruned = registry.counter(
            "repro_synth_pruned_total",
            "Speculated candidates refuted statically before dispatch.",
        )
        self.phase_seconds = registry.histogram(
            "repro_synth_phase_seconds",
            "Per-call wall clock by synthesis phase (phases overlap under "
            "the pipelined schedule).",
            ("phase",),
        )
        self.call_seconds = registry.histogram(
            "repro_synth_call_seconds", "synthesize() wall clock per call."
        )
        self.cache_hits = registry.counter(
            "repro_cache_hits_total",
            "Execution-cache hits by kind.  exact/prefix/consistency "
            "partition the reconciling hits; cross_session, warm, resume "
            "and decode are overlay counts of the same lookups.",
            ("kind",),
        )
        self.cache_misses = registry.counter(
            "repro_cache_misses_total", "Execution-cache misses."
        )
        self.cache_evictions = registry.counter(
            "repro_cache_evictions_total", "In-memory cache entries evicted."
        )
        self.decode_bytes = registry.counter(
            "repro_cache_decode_bytes_total",
            "Encoded bytes the decoded-entry cache never re-read.",
        )
        self.cache_bytes = registry.gauge(
            "repro_cache_bytes", "Approximate in-memory cache footprint."
        )
        self.interned_bytes = registry.gauge(
            "repro_cache_interned_bytes",
            "Approximate bytes held by the snapshot-interning table.",
        )

    @classmethod
    def get(cls) -> "_SynthMetrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance

    def publish(self, stats: "SynthesisStats") -> None:
        self.calls.inc()
        if stats.timed_out:
            self.timeouts.inc()
        self.pops.inc(stats.pops)
        self.speculated.inc(stats.speculated)
        self.validations.inc(stats.validations)
        self.validated.inc(stats.validated)
        self.pruned.inc(stats.pruned)
        self.phase_seconds.labels(phase="speculate").observe(stats.speculate_s)
        self.phase_seconds.labels(phase="validate").observe(stats.validate_s)
        self.phase_seconds.labels(phase="extend").observe(stats.extend_s)
        self.call_seconds.observe(stats.elapsed)
        hits = self.cache_hits
        hits.labels(kind="exact").inc(stats.cache_exact_hits)
        hits.labels(kind="prefix").inc(stats.cache_prefix_hits)
        hits.labels(kind="consistency").inc(stats.cache_consistency_hits)
        hits.labels(kind="cross_session").inc(stats.cache_cross_session_hits)
        hits.labels(kind="warm").inc(stats.cache_warm_hits)
        hits.labels(kind="resume").inc(stats.cache_resume_hits)
        hits.labels(kind="decode").inc(stats.cache_decode_hits)
        self.cache_misses.inc(stats.cache_misses)
        self.cache_evictions.inc(stats.cache_evictions)
        self.decode_bytes.inc(stats.cache_decode_bytes)
        self.cache_bytes.set(stats.cache_bytes)
        self.interned_bytes.set(stats.interned_bytes)


@dataclass
class SynthesisStats:
    """Bookkeeping for the experiment harnesses.

    The ``cache_*`` fields are per-call deltas of the execution engine's
    telemetry: how many simulated executions were served from memo,
    recomputed, or evicted, with the hit breakdown satisfying
    ``cache_hits == cache_exact_hits + cache_prefix_hits +
    cache_consistency_hits``.  ``index_builds`` counts the per-snapshot
    DOM indexes *this* call forced to be built (scoped via
    :func:`repro.engine.index.track_builds`, so interleaved sessions do
    not steal each other's builds).  ``enum_indexed`` / ``enum_fallback``
    are the selector-search enumeration queries answered by the
    bucket-driven path vs the legacy ancestor walk.

    Concurrency telemetry: ``validation_workers`` is the pool width the
    call's scheduler used (0 = serial); ``cache_cross_session_hits`` the
    per-call delta of hits served from entries *other* sessions of a
    shared cache recorded; ``cache_warm_hits`` the per-call delta of
    hits served from a *persistent backend* — executions recorded by a
    prior process (``cache_backend`` names the backend).
    ``cache_bytes``, ``interned_snapshots``, ``interned_bytes`` and
    ``persisted_bytes`` are end-of-call gauges (not deltas) of the
    backing cache's approximate footprint, its snapshot-interning
    table, and the persistent store.  All counter deltas stay exact
    under the pool scheduler: workers record into private counter sets
    merged at join, never into shared fields.
    """

    trace_length: int = 0
    pops: int = 0
    speculated: int = 0
    validated: int = 0
    #: Engine validation executions actually run (Algorithm 3 calls) —
    #: ``validated`` counts only the successes.  ``pruned`` counts the
    #: speculated candidates the static feasibility analysis
    #: (:mod:`repro.analysis.feasibility`) refuted before dispatch;
    #: every pruned candidate is a validation execution saved.
    validations: int = 0
    pruned: int = 0
    tuples: int = 0
    elapsed: float = 0.0
    #: Phase timings (seconds).  ``speculate_s`` covers Algorithm 2 runs
    #: (including next-pop speculation the pipeline overlaps);
    #: ``validate_s`` covers each pop's drain — validation plus the
    #: rank-order merge, cap accounting, and the pushes' generalization
    #: checks; ``extend_s`` covers the cross-call store extension
    #: (§5.4).  Under the pipelined schedule the phases overlap in wall
    #: clock, so ``speculate_s + validate_s`` may exceed ``elapsed`` —
    #: that surplus *is* the overlap, observable instead of inferred.
    speculate_s: float = 0.0
    validate_s: float = 0.0
    extend_s: float = 0.0
    timed_out: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_exact_hits: int = 0
    cache_prefix_hits: int = 0
    cache_consistency_hits: int = 0
    cache_cross_session_hits: int = 0
    cache_warm_hits: int = 0
    #: Executions answered by resuming a stored loop continuation over
    #: the window suffix instead of re-executing from the window start
    #: (``resumable_loops``); not part of the hit/miss reconciliation.
    cache_resume_hits: int = 0
    #: Warm-start probes served by the backend's decoded-entry cache
    #: (SQLite read and payload decode both skipped) and the encoded
    #: bytes those hits never re-read; not part of the hit/miss
    #: reconciliation.
    cache_decode_hits: int = 0
    cache_decode_bytes: int = 0
    cache_bytes: int = 0
    interned_snapshots: int = 0
    interned_bytes: int = 0
    persisted_bytes: int = 0
    cache_backend: str = "memory"
    validation_workers: int = 0
    index_builds: int = 0
    enum_indexed: int = 0
    enum_fallback: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Execution-cache hits over all lookups this call."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class SynthesisResult:
    """Outcome of one ``synthesize`` call.

    ``programs`` are the generalizing programs ranked smallest-first;
    ``predictions`` are their distinct next actions in rank order (the
    front end shows these for authorization).
    """

    programs: list[Program] = field(default_factory=list)
    predictions: list[Action] = field(default_factory=list)
    stats: SynthesisStats = field(default_factory=SynthesisStats)

    @property
    def best_program(self) -> Optional[Program]:
        """The top-ranked generalizing program, if any."""
        return self.programs[0] if self.programs else None

    @property
    def best_prediction(self) -> Optional[Action]:
        """The top-ranked predicted next action, if any."""
        return self.predictions[0] if self.predictions else None


class Synthesizer:
    """Interactive web RPA program synthesizer.

    One instance serves one demonstration session: call
    :meth:`synthesize` after every recorded action with the full trace so
    far.  With ``config.incremental`` (default) the rewrite store is
    shared across calls; otherwise every call starts from scratch.

    Validation is driven through a :mod:`repro.synth.scheduler`
    scheduler: serial by default, a thread pool when the config's
    ``validation_workers`` resolves above 1.  With ``shared_cache``
    resolved on, the engine joins the process-level
    :class:`~repro.engine.cache.SharedExecutionCache` and every call's
    snapshots are interned there, so concurrent sessions over the same
    site reuse each other's executions and DOM indexes.
    """

    def __init__(self, data: DataSource, config: SynthesisConfig = DEFAULT_CONFIG) -> None:
        self.data = data
        self.config = config
        self._actions: list[Action] = []
        self._snapshots: list[DOMNode] = []
        self._store: dict[tuple, RewriteTuple] = {}
        self._search = self._new_search()
        self._engine = ExecutionEngine.for_config(data, config)
        workers = resolved_validation_workers(config)
        if resolved_pipeline(config):
            self._scheduler = PipelineScheduler(workers)
        else:
            self._scheduler = scheduler_for(workers)
        # resumable loops ride the execution cache's terminal table —
        # without the cache there is nowhere to keep continuations
        self._resumable = config.resumable_loops and config.use_execution_cache
        # interning only pays when the cache is actually shared between
        # sessions; a private sharded cache skips the structural keys
        self._use_shared_cache = resolved_shared_cache(config)

    @property
    def engine(self) -> ExecutionEngine:
        """The memoizing execution engine serving this session."""
        return self._engine

    @property
    def scheduler(self):
        """The validation scheduler draining this session's candidates."""
        return self._scheduler

    def close(self) -> None:
        """Release the scheduler's worker threads (pool configs only)."""
        self._scheduler.close()

    def __enter__(self) -> "Synthesizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _new_search(self) -> SelectorSearch:
        return SelectorSearch(
            use_alternatives=self.config.use_alternative_selectors,
            max_suffix_child_steps=self.config.max_suffix_child_steps,
            max_decompositions=self.config.max_decompositions,
            token_predicates=self.config.use_token_predicates,
            use_index_enumeration=self.config.use_index_enumeration,
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all state from previous calls."""
        self._actions = []
        self._snapshots = []
        self._store = {}
        self._search = self._new_search()
        self._engine = ExecutionEngine.for_config(self.data, self.config)

    def synthesize(
        self,
        actions: Sequence[Action],
        snapshots: Sequence[DOMNode],
        timeout: Optional[float] = None,
    ) -> SynthesisResult:
        """Find programs that generalize the demonstration (Definition 4.3).

        Parameters
        ----------
        actions:
            The recorded action trace ``A = [a₁, ··, a_m]``.
        snapshots:
            The recorded DOM trace ``Π = [π₁, ··, π_{m+1}]``.
        timeout:
            Optional per-call override of ``config.timeout`` seconds.
        """
        if len(snapshots) != len(actions) + 1:
            raise SynthesisError(
                f"need m+1 snapshots for m actions, got {len(snapshots)} for {len(actions)}"
            )
        deadline = Deadline(self.config.timeout if timeout is None else timeout)
        if self._use_shared_cache:
            shared = self._engine.shared_cache
            if shared is not None:
                # structurally equal snapshots from other sessions over
                # the same site collapse onto one canonical root, making
                # the id-keyed cache entries and SnapshotIndexes shared;
                # re-interning the same objects is an O(1) id lookup
                snapshots = shared.intern_snapshots(snapshots)
        if not self.config.incremental:
            self.reset()
        old_length = len(self._actions)
        if old_length and (
            len(actions) < old_length
            or list(actions[:old_length]) != self._actions
        ):
            # Not a continuation of the stored demonstration.
            self.reset()
            old_length = 0
        had_store = bool(self._store)
        self._actions = list(actions)
        self._snapshots = list(snapshots)
        trace_length = len(actions)
        stats = SynthesisStats(trace_length=trace_length)
        result = SynthesisResult(stats=stats)
        if trace_length == 0:
            return result
        engine_before = self._engine.counters()
        enum_before = (self._search.enum_indexed, self._search.enum_fallback)

        with obs_tracing.span(
            "synthesize", actions=trace_length
        ) as call_span, dom_index.track_builds() as built:
            context = SpeculationContext(
                self._actions,
                self._snapshots,
                self.data,
                self.config,
                self._search,
                engine=self._engine,
            )
            generalizing: list[Candidate] = []
            heap: list[tuple[int, int, RewriteTuple]] = []
            sequence = itertools.count()
            store: dict[tuple, RewriteTuple] = {}
            pipelined = isinstance(self._scheduler, PipelineScheduler)
            # The worklist coordinator: under the pipelined schedule the
            # drain thread pushes while the coordinating thread peeks
            # and pops, so the heap operations share one lock.  Store
            # inserts and the generalizing list stay single-writer (only
            # whichever thread is pushing touches them, and pushes are
            # serialized: main thread before the loop, drain thread —
            # one pop at a time — inside it), so the lock covers exactly
            # the structure both threads touch.
            heap_lock = threading.Lock() if pipelined else None

            def push(tuple_: RewriteTuple) -> None:
                key = tuple_.key(self._engine.statement_key)
                if key in store:
                    return
                store[key] = tuple_
                entry = (tuple_.length, next(sequence), tuple_)
                if heap_lock is None:
                    heapq.heappush(heap, entry)
                else:
                    with heap_lock:
                        heapq.heappush(heap, entry)
                prediction = self._try_generalize(tuple_, context)
                if prediction is not None and len(generalizing) < self.config.max_generalizing_programs:
                    generalizing.append(
                        Candidate.of(tuple_.program(), prediction, tuple_.length)
                    )

            extend_started = time.perf_counter()
            with obs_tracing.span("extend", stored=len(self._store)):
                if had_store:
                    for stored in self._store.values():
                        extended = self._extend(stored, old_length, trace_length, context)
                        if extended is not None:
                            push(extended)
                else:
                    push(initial_tuple(self._actions))
            stats.extend_s += time.perf_counter() - extend_started
            self._store = store

            # ----------------------------------------------------------
            # Algorithm 1 main loop.
            # ----------------------------------------------------------
            if pipelined:
                self._run_pipelined(heap, heap_lock, context, deadline, stats, push)
            else:
                while heap:
                    if deadline.expired():
                        stats.timed_out = True
                        break
                    if (
                        self.config.max_worklist_pops is not None
                        and stats.pops >= self.config.max_worklist_pops
                    ):
                        break
                    _, _, current = heapq.heappop(heap)
                    if current.processed:
                        continue
                    current.processed = True
                    stats.pops += 1
                    spec_started = time.perf_counter()
                    with obs_tracing.span("speculate", pop=stats.pops):
                        candidates = speculate(current, context)
                    stats.speculate_s += time.perf_counter() - spec_started
                    stats.speculated += len(candidates)
                    # The scheduler validates in rank order (smallest
                    # statements first within a span) and pushes survivors;
                    # serial and pooled schedules produce identical pushes.
                    validate_started = time.perf_counter()
                    with obs_tracing.span(
                        "validate", pop=stats.pops, candidates=len(candidates)
                    ):
                        self._scheduler.process_pop(
                            current, candidates, context, deadline, stats, push
                        )
                    stats.validate_s += time.perf_counter() - validate_started

            self._prune_store()
            self._collect(result, generalizing)
            call_span.note(
                pops=stats.pops,
                speculated=stats.speculated,
                programs=len(result.programs),
                timed_out=stats.timed_out,
            )
        stats.tuples = len(self._store)
        stats.elapsed = deadline.elapsed()
        engine_after = self._engine.counters()
        stats.cache_hits = engine_after.hits - engine_before.hits
        stats.cache_misses = engine_after.misses - engine_before.misses
        stats.cache_evictions = engine_after.evictions - engine_before.evictions
        stats.cache_exact_hits = engine_after.exact_hits - engine_before.exact_hits
        stats.cache_prefix_hits = engine_after.prefix_hits - engine_before.prefix_hits
        stats.cache_consistency_hits = (
            engine_after.consistency_hits - engine_before.consistency_hits
        )
        stats.cache_cross_session_hits = (
            engine_after.cross_session_hits - engine_before.cross_session_hits
        )
        stats.cache_warm_hits = engine_after.warm_hits - engine_before.warm_hits
        stats.cache_resume_hits = engine_after.resume_hits - engine_before.resume_hits
        stats.cache_decode_hits = engine_after.decode_hits - engine_before.decode_hits
        stats.cache_decode_bytes = (
            engine_after.decode_bytes - engine_before.decode_bytes
        )
        stats.cache_bytes = engine_after.cache_bytes
        stats.interned_snapshots = engine_after.interned_snapshots
        stats.interned_bytes = engine_after.interned_bytes
        stats.persisted_bytes = engine_after.persisted_bytes
        stats.cache_backend = engine_after.backend
        stats.validation_workers = self._scheduler.workers
        stats.index_builds = built.count
        stats.enum_indexed = self._search.enum_indexed - enum_before[0]
        stats.enum_fallback = self._search.enum_fallback - enum_before[1]
        _SynthMetrics.get().publish(stats)
        return result

    # ------------------------------------------------------------------
    # Pipelined schedule (producer/consumer across pops)
    # ------------------------------------------------------------------
    def _run_pipelined(
        self,
        heap: list,
        heap_lock: threading.Lock,
        context: SpeculationContext,
        deadline: Deadline,
        stats: SynthesisStats,
        push,
    ) -> None:
        """Algorithm 1's loop with speculation/validation overlapped.

        Each iteration commits one pop, hands its (already ranked)
        candidates to the scheduler's drain thread, and — while that
        thread validates, merges, and pushes — speculates on the heap's
        current best guess for the *next* pop.  The drain join at the
        end of the iteration is a per-pop barrier, so pops commit in
        exactly the serial order and every push lands before the next
        pop is chosen: byte-identical output, overlapped wall clock.

        A rewrite pushed during the drain can outrank the guess; the
        wasted speculation is kept in ``spec_cache`` (speculation is a
        pure function of the tuple) and consumed whenever that tuple is
        actually popped.  All speculation — including the overlapped
        lookahead — runs on this thread: the selector-search memos are
        not thread-safe, and the drain thread never touches them.
        """
        scheduler = self._scheduler
        spec_cache: dict[int, tuple[RewriteTuple, list]] = {}

        def timed_speculate(tuple_: RewriteTuple) -> list:
            started = time.perf_counter()
            with obs_tracing.span("speculate"):
                candidates = speculate(tuple_, context)
            stats.speculate_s += time.perf_counter() - started
            return candidates

        def pop_next() -> Optional[RewriteTuple]:
            with heap_lock:
                while heap:
                    _, _, current = heapq.heappop(heap)
                    if not current.processed:
                        return current
                return None

        def peek_next() -> Optional[RewriteTuple]:
            with heap_lock:
                while heap:
                    if heap[0][2].processed:
                        heapq.heappop(heap)
                        continue
                    return heap[0][2]
                return None

        while True:
            if deadline.expired():
                stats.timed_out = True
                break
            if (
                self.config.max_worklist_pops is not None
                and stats.pops >= self.config.max_worklist_pops
            ):
                break
            current = pop_next()
            if current is None:
                break
            current.processed = True
            stats.pops += 1
            cached = spec_cache.pop(id(current), None)
            candidates = cached[1] if cached is not None else timed_speculate(current)
            stats.speculated += len(candidates)
            handle = scheduler.submit_pop(
                current, candidates, context, deadline, stats, push
            )
            upcoming = peek_next()
            if (
                upcoming is not None
                and id(upcoming) not in spec_cache
                and not deadline.expired()
            ):
                spec_cache[id(upcoming)] = (upcoming, timed_speculate(upcoming))
            # the per-pop barrier: every push of this pop is applied
            # before the next pop is selected
            with obs_tracing.span("validate_drain", pop=stats.pops):
                scheduler.drain_pop(handle, context, stats)

    def _prune_store(self) -> None:
        """Bound the tuples carried into the next incremental call.

        Smaller programs are both the ranking winners and the cheapest to
        extend, so the largest tuples are dropped first.  P₀'s extension
        is always preserved through the all-singleton tuple, which has the
        largest statement count but is the ancestor of every rewrite —
        drop everything else first.
        """
        cap = self.config.max_store_tuples
        if len(self._store) <= cap:
            return
        entries = sorted(self._store.items(), key=lambda item: item[1].length)
        keep = dict(entries[: cap - 1])
        # the all-singleton tuple (maximal length) must survive: it seeds
        # spans no rewritten tuple can express
        tail_key, tail_tuple = entries[-1]
        keep[tail_key] = tail_tuple
        self._store = keep

    # ------------------------------------------------------------------
    # Extension across calls (§5.4)
    # ------------------------------------------------------------------
    def _extend(
        self,
        stored: RewriteTuple,
        old_length: int,
        new_length: int,
        context: SpeculationContext,
    ) -> Optional[RewriteTuple]:
        """Re-fit a stored tuple to the grown trace.

        A trailing loop absorbs exactly the actions its continued execution
        reproduces; if it produces an action inconsistent with what the
        user actually did, the tuple's program no longer satisfies the
        trace and the tuple dies.  Remaining new actions are appended as
        singleton statements.
        """
        if old_length == new_length:
            return stored
        absorbed_end = old_length
        base = stored
        if stored.ends_with_loop():
            slice_start = stored.bounds[-2]
            window = DOMTrace(self._snapshots, slice_start, new_length)
            # Execute over the generalization window (one snapshot past
            # the trace) and truncate: when the loop consumes the whole
            # extension window its behaviour there is a prefix of the
            # lookahead run, and ``_try_generalize`` on the extended
            # tuple then reuses this execution from the engine cache.
            lookahead = DOMTrace(self._snapshots, slice_start, new_length + 1)
            produced = self._engine.execute(
                [stored.statements[-1]],
                lookahead,
                max_actions=len(lookahead),
                resumable=self._resumable,
            ).actions[: len(window)]
            reference = self._actions[slice_start : slice_start + len(produced)]
            consistent = self._engine.consistent_prefix_length(
                produced, reference, window
            )
            if consistent < len(produced):
                return None  # the trailing loop mispredicted: program is dead
            if len(produced) < old_length - slice_start:
                return None  # defensive: the loop no longer covers its slice
            absorbed_end = slice_start + len(produced)
            spec_start = stored.length if stored.processed else stored.spec_start
            base = RewriteTuple(
                stored.statements,
                stored.bounds[:-1] + (absorbed_end,),
                spec_start=spec_start,
                processed=stored.processed,
            )
        remaining = self._actions[absorbed_end:new_length]
        if not remaining:
            extended = base
            extended.processed = False
            return extended
        return extend_with_singletons(base, remaining, absorbed_end)

    # ------------------------------------------------------------------
    # Generalization check (Algorithm 1 line 5)
    # ------------------------------------------------------------------
    def _try_generalize(
        self, tuple_: RewriteTuple, context: SpeculationContext
    ) -> Optional[Action]:
        """Tail-based generalization check.

        Invariant I2 guarantees every statement reproduces its slice
        exactly, and statements are closed terms, so only the *final*
        statement can extend past the demonstration.  It is re-executed on
        its slice plus the latest snapshot; producing one extra action is
        exactly Definition 4.2.
        """
        if not tuple_.ends_with_loop():
            return None
        trace_length = len(self._actions)
        slice_start = tuple_.bounds[-2]
        needed = trace_length - slice_start
        window = DOMTrace(self._snapshots, slice_start, trace_length + 1)
        produced = self._engine.execute(
            [tuple_.statements[-1]],
            window,
            max_actions=needed + 1,
            resumable=self._resumable,
        ).actions
        if len(produced) <= needed:
            return None
        reference = self._actions[slice_start:trace_length]
        if self._engine.consistent_prefix_length(produced, reference, window) != needed:
            return None
        return produced[needed]

    # ------------------------------------------------------------------
    # Ranking (Algorithm 1 line 8)
    # ------------------------------------------------------------------
    def _collect(
        self,
        result: SynthesisResult,
        generalizing: list[Candidate],
    ) -> None:
        """Rank generalizing programs (Algorithm 1 line 8); dedup predictions.

        The strategy is ``config.ranking`` (default: the paper's
        smallest-program heuristic — see :mod:`repro.synth.ranking`).
        Predictions are deduplicated by the node they address on the
        latest snapshot (plus non-selector arguments), so semantically
        identical predictions from different programs collapse into one
        authorization option.
        """
        last_dom = self._snapshots[-1] if self._snapshots else None
        seen_predictions: set = set()
        for candidate in rank(generalizing, self.config.ranking):
            result.programs.append(candidate.program)
            key = self._prediction_key(candidate.prediction, last_dom)
            if key not in seen_predictions:
                seen_predictions.add(key)
                result.predictions.append(candidate.prediction)

    def _prediction_key(self, action: Action, dom: Optional[DOMNode]) -> tuple:
        node_id = None
        if action.selector is not None and dom is not None:
            node = self._engine.resolve(action.selector, dom)
            node_id = id(node) if node is not None else str(action.selector)
        return (action.kind, node_id, action.text, action.path)
