"""The WebRobot synthesis engine: speculate-and-validate rewriting."""

from repro.synth.config import (
    DEFAULT_CONFIG,
    SynthesisConfig,
    no_execution_cache_config,
    no_incremental_config,
    no_selector_config,
    no_shape_gates_config,
    token_predicate_config,
    window_periodicity_config,
)
from repro.synth.problem import (
    SynthesisProblem,
    generalizes,
    produced_actions,
    satisfies,
)
from repro.synth.alternatives import (
    Decomposition,
    alternative_selectors,
    common_alternatives,
    decompositions,
    node_predicates,
    relative_step_candidates,
)
from repro.synth.anti_unify import (
    SelectorAU,
    StatementAU,
    anti_unify_accessors,
    anti_unify_selectors,
    anti_unify_statements,
)
from repro.synth.parametrize import parametrize_statement
from repro.synth.periodicity import (
    shape_sequence,
    statement_shape,
    trace_periods,
    window_periodic,
)
from repro.synth.rewrite import (
    RewriteTuple,
    extend_with_singletons,
    initial_tuple,
    is_loop,
)
from repro.synth.speculate import SpeculationContext, SRewrite, speculate
from repro.synth.validate import validate
from repro.synth.synthesizer import (
    SynthesisResult,
    SynthesisStats,
    Synthesizer,
)

__all__ = [
    "DEFAULT_CONFIG",
    "SynthesisConfig",
    "no_execution_cache_config",
    "no_incremental_config",
    "no_selector_config",
    "no_shape_gates_config",
    "token_predicate_config",
    "window_periodicity_config",
    "SynthesisProblem",
    "generalizes",
    "produced_actions",
    "satisfies",
    "Decomposition",
    "alternative_selectors",
    "common_alternatives",
    "decompositions",
    "node_predicates",
    "relative_step_candidates",
    "SelectorAU",
    "StatementAU",
    "anti_unify_accessors",
    "anti_unify_selectors",
    "anti_unify_statements",
    "parametrize_statement",
    "shape_sequence",
    "statement_shape",
    "trace_periods",
    "window_periodic",
    "RewriteTuple",
    "extend_with_singletons",
    "initial_tuple",
    "is_loop",
    "SpeculationContext",
    "SRewrite",
    "speculate",
    "validate",
    "SynthesisResult",
    "SynthesisStats",
    "Synthesizer",
]
