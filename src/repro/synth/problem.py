"""The web RPA program synthesis problem (Definitions 4.1—4.3).

* A program *satisfies* a trace ``A`` when its simulated execution
  reproduces ``A`` (``A`` is consistent with a prefix of the produced
  trace).
* A program *generalizes* ``A`` when it reproduces ``A`` **and** produces
  at least one further action — the prediction shown to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine.engine import ExecutionEngine
from repro.lang.actions import Action
from repro.lang.ast import Program
from repro.lang.data import DataSource
from repro.semantics.consistency import consistent_prefix_length
from repro.semantics.trace import DOMTrace
from repro.util.errors import SynthesisError

#: Shared pass-through engine for the one-shot helpers below.  Callers
#: with a session-lived engine (the synthesizer) pass their own; the
#: default keeps memoization off, so nothing pins one-off snapshots.
_DEFAULT_ENGINE = ExecutionEngine(use_cache=False)


@dataclass(frozen=True)
class SynthesisProblem:
    """Inputs of Definition 4.3: actions A, DOM trace Π (|Π| = |A| + 1), I.

    ``doms[i]`` is the snapshot action ``actions[i]`` was performed on; the
    final snapshot is the current page, on which the next action is to be
    predicted.
    """

    actions: tuple[Action, ...]
    doms: DOMTrace
    data: DataSource

    def __post_init__(self) -> None:
        if len(self.doms) != len(self.actions) + 1:
            raise SynthesisError(
                f"DOM trace must have one more element than the action trace "
                f"(got {len(self.doms)} DOMs for {len(self.actions)} actions)"
            )

    @property
    def trace_length(self) -> int:
        """Number of demonstrated actions (m)."""
        return len(self.actions)


def produced_actions(
    program: Program,
    problem: SynthesisProblem,
    extra: int = 1,
    engine: Optional[ExecutionEngine] = None,
) -> list[Action]:
    """Run ``program`` under the trace semantics over the problem's DOMs.

    ``extra`` caps how far past the demonstration the simulation may run
    (1 suffices to decide generalization and obtain the prediction).
    Execution goes through ``engine`` (a pass-through one by default);
    pass a memoizing engine to share results across repeated checks.
    """
    result = (engine or _DEFAULT_ENGINE).execute(
        program,
        problem.doms,
        max_actions=problem.trace_length + extra,
        data=problem.data,
    )
    return result.actions


def satisfies(
    program: Program,
    problem: SynthesisProblem,
    engine: Optional[ExecutionEngine] = None,
) -> bool:
    """Definition 4.1: the program reproduces the demonstrated actions."""
    produced = produced_actions(program, problem, extra=0, engine=engine)
    if len(produced) < problem.trace_length:
        return False
    return (
        consistent_prefix_length(produced, problem.actions, problem.doms)
        == problem.trace_length
    )


def generalizes(
    program: Program,
    problem: SynthesisProblem,
    engine: Optional[ExecutionEngine] = None,
) -> Optional[Action]:
    """Definition 4.2: reproduce A and predict at least one more action.

    Returns the predicted next action (the ``m+1``-st produced action) when
    the program generalizes, else ``None``.
    """
    produced = produced_actions(program, problem, extra=1, engine=engine)
    m = problem.trace_length
    if len(produced) <= m:
        return None
    if consistent_prefix_length(produced, problem.actions, problem.doms) != m:
        return None
    return produced[m]
