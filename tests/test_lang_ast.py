"""Unit tests for the DSL AST: construction, sizes, alpha-equivalence."""

import pytest

from repro.dom import Predicate, parse_selector
from repro.lang import (
    CLICK,
    SCRAPE_TEXT,
    SEL_VAR,
    VAL_VAR,
    X,
    ActionStmt,
    ChildrenOf,
    DescendantsOf,
    ForEachSelector,
    ForEachValue,
    Program,
    Selector,
    ValuePath,
    ValuePathsOf,
    WhileLoop,
    alpha_equivalent,
    alpha_equivalent_bodies,
    canonical_program,
    fresh_var,
    program_size,
    selector_of,
    statement_size,
)


def sel(text):
    return selector_of(parse_selector(text))


def click_stmt(text):
    return ActionStmt(CLICK, sel(text))


def scrape_stmt(target):
    return ActionStmt(SCRAPE_TEXT, target)


class TestVars:
    def test_fresh_vars_distinct(self):
        a = fresh_var(SEL_VAR)
        b = fresh_var(SEL_VAR)
        assert a != b

    def test_str_prefixes(self):
        assert str(fresh_var(SEL_VAR)).startswith("r")
        assert str(fresh_var(VAL_VAR)).startswith("d")


class TestSelector:
    def test_concrete_flag(self):
        assert sel("//div[1]").is_concrete
        assert not Selector(fresh_var(SEL_VAR), ()).is_concrete

    def test_base_must_be_selector_var(self):
        with pytest.raises(ValueError):
            Selector(fresh_var(VAL_VAR), ())

    def test_str_with_var_base(self):
        var = fresh_var(SEL_VAR)
        s = Selector(var, parse_selector("//h3[1]").steps)
        assert str(s) == f"{var}//h3[1]"

    def test_epsilon_str(self):
        assert str(Selector()) == "/"


class TestValuePath:
    def test_base_must_be_value_var(self):
        with pytest.raises(ValueError):
            ValuePath(fresh_var(SEL_VAR), ())

    def test_extend_and_str(self):
        path = X.extend("zips").extend(3)
        assert str(path) == 'x["zips"][3]'
        assert path.is_concrete

    def test_symbolic_str(self):
        var = fresh_var(VAL_VAR)
        path = ValuePath(var, ("name",))
        assert str(path) == f'{var}["name"]'
        assert not path.is_concrete


class TestActionStmt:
    def test_node_kind_requires_selector(self):
        with pytest.raises(ValueError):
            ActionStmt(CLICK)

    def test_parameterless_rejects_selector(self):
        with pytest.raises(ValueError):
            ActionStmt("GoBack", sel("//a[1]"))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            ActionStmt("Hover", sel("//a[1]"))

    def test_send_keys_requires_text(self):
        with pytest.raises(ValueError):
            ActionStmt("SendKeys", sel("//input[1]"))

    def test_enter_data_requires_value(self):
        with pytest.raises(ValueError):
            ActionStmt("EnterData", sel("//input[1]"))

    def test_str_forms(self):
        assert str(ActionStmt("GoBack")) == "GoBack"
        stmt = ActionStmt("SendKeys", sel("//input[1]"), text="hi")
        assert str(stmt) == 'SendKeys(//input[1], "hi")'
        entry = ActionStmt("EnterData", sel("//input[1]"), value=X.extend("a").extend(1))
        assert str(entry) == 'EnterData(//input[1], x["a"][1])'


class TestLoops:
    def test_selector_loop_var_kind_checked(self):
        with pytest.raises(ValueError):
            ForEachSelector(
                fresh_var(VAL_VAR),
                DescendantsOf(Selector(), Predicate("div")),
                (click_stmt("//a[1]"),),
            )

    def test_value_loop_var_kind_checked(self):
        with pytest.raises(ValueError):
            ForEachValue(fresh_var(SEL_VAR), ValuePathsOf(X), (click_stmt("//a[1]"),))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ForEachSelector(
                fresh_var(SEL_VAR), DescendantsOf(Selector(), Predicate("div")), ()
            )

    def test_while_requires_click(self):
        with pytest.raises(ValueError):
            WhileLoop((click_stmt("//a[1]"),), scrape_stmt(sel("//a[1]")))


class TestSizes:
    def test_action_size_counts_selector(self):
        assert statement_size(click_stmt("//div[1]/h3[1]")) == 4  # stmt + base + 2 steps

    def test_loop_size_includes_body(self):
        var = fresh_var(SEL_VAR)
        loop = ForEachSelector(
            var,
            DescendantsOf(Selector(), Predicate("div")),
            (scrape_stmt(Selector(var, parse_selector("//h3[1]").steps)),),
        )
        assert statement_size(loop) == 2 + 1 + (1 + 2)

    def test_program_size_sums(self):
        prog = Program((click_stmt("//a[1]"), click_stmt("//b[1]")))
        assert program_size(prog) == 2 * statement_size(click_stmt("//a[1]"))


class TestAlphaEquivalence:
    def _loop_with_var(self):
        var = fresh_var(SEL_VAR)
        body = (scrape_stmt(Selector(var, parse_selector("//h3[1]").steps)),)
        return ForEachSelector(var, DescendantsOf(Selector(), Predicate("div")), body), var

    def test_loops_differing_only_in_var_are_equivalent(self):
        loop_a, _ = self._loop_with_var()
        loop_b, _ = self._loop_with_var()
        assert loop_a != loop_b  # different Var uids
        assert alpha_equivalent(loop_a, loop_b)

    def test_different_predicates_not_equivalent(self):
        loop_a, _ = self._loop_with_var()
        var = fresh_var(SEL_VAR)
        loop_b = ForEachSelector(
            var,
            DescendantsOf(Selector(), Predicate("span")),
            (scrape_stmt(Selector(var, parse_selector("//h3[1]").steps)),),
        )
        assert not alpha_equivalent(loop_a, loop_b)

    def test_bodies_equivalent_relative_to_vars(self):
        var_a = fresh_var(SEL_VAR)
        var_b = fresh_var(SEL_VAR)
        body_a = (scrape_stmt(Selector(var_a, parse_selector("//h3[1]").steps)),)
        body_b = (scrape_stmt(Selector(var_b, parse_selector("//h3[1]").steps)),)
        assert alpha_equivalent_bodies(body_a, var_a, body_b, var_b)

    def test_bodies_with_free_var_mismatch(self):
        var_a = fresh_var(SEL_VAR)
        var_b = fresh_var(SEL_VAR)
        other = fresh_var(SEL_VAR)
        body_a = (scrape_stmt(Selector(var_a, ())),)
        body_b = (scrape_stmt(Selector(other, ())),)
        assert not alpha_equivalent_bodies(body_a, var_a, body_b, var_b)

    def test_canonical_program_stable_across_var_renaming(self):
        loop_a, _ = self._loop_with_var()
        loop_b, _ = self._loop_with_var()
        assert canonical_program(Program((loop_a,))) == canonical_program(Program((loop_b,)))

    def test_nested_loops_canonicalized(self):
        def nested():
            outer = fresh_var(SEL_VAR)
            inner = fresh_var(SEL_VAR)
            inner_loop = ForEachSelector(
                inner,
                ChildrenOf(Selector(outer, ()), Predicate("li")),
                (scrape_stmt(Selector(inner, ())),),
            )
            return ForEachSelector(
                outer, DescendantsOf(Selector(), Predicate("ul")), (inner_loop,)
            )

        assert alpha_equivalent(nested(), nested())
