"""Meta-tests keeping the documentation honest.

DESIGN.md's module map and the README's example table are promises;
these tests fail when a rename or deletion would silently break them.
"""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

DESIGN = (ROOT / "DESIGN.md").read_text()
README = (ROOT / "README.md").read_text()
EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text()

#: `repro.foo.bar` references in DESIGN.md's inventory tables.
#: `repro.__main__` is excluded: importing it runs the CLI by design.
MODULE_REFS = sorted(
    {
        match.rstrip(".")
        for match in re.findall(r"`(repro(?:\.\w+)+)`", DESIGN)
        if "__main__" not in match
        # attribute references like repro.dom.xpath.TokenPredicate are
        # checked by importing their module prefix
    }
)


def importable_prefix(ref: str) -> str:
    """The longest importable module prefix of a dotted reference."""
    parts = ref.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        try:
            importlib.import_module(candidate)
            return candidate
        except ModuleNotFoundError:
            continue
    return ""


class TestDesignDoc:
    @pytest.mark.parametrize("ref", MODULE_REFS)
    def test_module_reference_resolves(self, ref):
        prefix = importable_prefix(ref)
        assert prefix, f"DESIGN.md references {ref}, which does not import"
        # anything after the module prefix must be an attribute chain
        remainder = ref[len(prefix) :].lstrip(".")
        obj = importlib.import_module(prefix)
        for attr in filter(None, remainder.split(".")):
            assert hasattr(obj, attr), f"{prefix} has no attribute {attr}"
            obj = getattr(obj, attr)

    def test_referenced_bench_files_exist(self):
        for name in re.findall(r"`benchmarks/(bench_\w+\.py)`", DESIGN + EXPERIMENTS):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_referenced_test_files_exist(self):
        for name in re.findall(r"`tests/(test_\w+\.py)`", DESIGN + EXPERIMENTS):
            assert (ROOT / "tests" / name).exists(), name


class TestReadme:
    def test_example_table_matches_directory(self):
        listed = set(re.findall(r"`examples/(\w+\.py)`", README))
        actual = {path.name for path in (ROOT / "examples").glob("*.py")}
        assert listed == actual

    def test_docs_directory_references_exist(self):
        for name in re.findall(r"`docs/(\w+\.md)`", README):
            assert (ROOT / "docs" / name).exists(), name

    def test_env_knobs_mentioned_in_readme_are_honoured(self):
        # every REPRO_* knob the README names must appear in the code
        knobs = set(re.findall(r"REPRO_\w+", README))
        source = "".join(
            path.read_text()
            for path in (ROOT / "src").rglob("*.py")
        ) + "".join(path.read_text() for path in (ROOT / "benchmarks").glob("*.py"))
        for knob in knobs:
            assert knob in source, f"README names {knob} but nothing reads it"
