"""Tests for the numbered-pagination extension.

The paper's §7.1 reports b9 (page-number pagination with a "next 10
pages" button) as unsupported; this extension adds the
:class:`PaginateLoop` statement and its speculation.  These tests cover
the counter-detection algebra, the new statement's semantics in all
three executors (trace semantics, provenance, real replay), parser and
pretty-printer round-trips, exporter output, and the end-to-end
synthesis of the intended program — plus the guarantee that the
*default* configuration still fails exactly as the paper describes.
"""

import pytest

from repro.benchmarks.sites.job_board import JobBoardSite
from repro.browser import Browser, Replayer
from repro.dom.xpath import parse_selector
from repro.lang import EMPTY_DATA, parse_program
from repro.lang.ast import (
    CounterTemplate,
    PaginateLoop,
    canonical_program,
    program_depth,
    program_size,
)
from repro.lang.pretty import format_program
from repro.semantics import DOMTrace, execute
from repro.synth.config import DEFAULT_CONFIG, numbered_pagination_config
from repro.synth.paginate import counter_pair
from repro.synth.synthesizer import Synthesizer
from repro.util.errors import ParseError

PAGINATE_TEXT = """
paginate k from 2 do
  foreach r in Dscts(/, li[@class='job-bx']) do
    ScrapeText(r/h2[1])
  Click(//button[@data-page='{k}'][1])
  Advance(//button[@class='nextBlock'][1])
"""

NO_ADVANCE_TEXT = """
paginate k from 2 do
  ScrapeText(//h2[1])
  Click(//a[@href='?page={k}'][1])
"""


class TestCounterPair:
    def test_plain_integers(self):
        assert counter_pair("2", "3") == ("", 2, "")

    def test_prefixed(self):
        assert counter_pair("page-2", "page-3") == ("page-", 2, "")

    def test_suffixed_query(self):
        assert counter_pair("?p=2&sort=asc", "?p=3&sort=asc") == ("?p=", 2, "&sort=asc")

    def test_multi_digit_boundary(self):
        # common textual prefix "page-1" must not swallow the digit run
        assert counter_pair("page-12", "page-13") == ("page-", 12, "")

    def test_digit_run_crossing_ten(self):
        assert counter_pair("9", "10") == ("", 9, "")

    def test_non_consecutive_rejected(self):
        assert counter_pair("2", "4") is None

    def test_decreasing_rejected(self):
        assert counter_pair("3", "2") is None

    def test_equal_rejected(self):
        assert counter_pair("2", "2") is None

    def test_non_numeric_rejected(self):
        assert counter_pair("alpha", "beta") is None

    def test_leading_zeros_rejected(self):
        # "02" -> 2 -> "2" does not round-trip: template would not match
        assert counter_pair("02", "03") is None


class TestCounterTemplate:
    def test_instantiate(self):
        template = CounterTemplate((), "desc", "button", "data-page", "", "", 1)
        assert str(template.instantiate(7)) == "//button[@data-page='7'][1]"

    def test_instantiate_with_prefix_suffix(self):
        template = CounterTemplate((), "desc", "a", "href", "?p=", "&s=1", 2)
        assert str(template.instantiate(3)) == "//a[@href='?p=3&s=1'][2]"

    def test_hole_text(self):
        template = CounterTemplate((), "desc", "button", "data-page", "", "", 1)
        assert template.hole_text() == "//button[@data-page='{k}'][1]"

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            CounterTemplate((), "desc", "button", "data-page", "", "", 0)


class TestPaginateAst:
    def test_empty_body_rejected(self):
        template = CounterTemplate((), "desc", "button", "data-page", "", "", 1)
        with pytest.raises(ValueError, match="non-empty"):
            PaginateLoop((), template)

    def test_symbolic_advance_rejected(self):
        from repro.lang.ast import ActionStmt, SCRAPE_TEXT, SEL_VAR, Selector, fresh_var

        template = CounterTemplate((), "desc", "button", "data-page", "", "", 1)
        body = (ActionStmt(SCRAPE_TEXT, Selector()),)
        with pytest.raises(ValueError, match="concrete"):
            PaginateLoop(body, template, advance=Selector(fresh_var(SEL_VAR)))

    def test_counts_as_loop_depth(self):
        program = parse_program(PAGINATE_TEXT)
        assert program_depth(program) == 2  # paginate > foreach

    def test_size_includes_template_and_advance(self):
        with_advance = parse_program(PAGINATE_TEXT)
        without = parse_program(NO_ADVANCE_TEXT)
        assert program_size(with_advance) > program_size(without)


class TestParsePretty:
    def test_round_trip_with_advance(self):
        program = parse_program(PAGINATE_TEXT)
        again = parse_program(format_program(program))
        assert canonical_program(again) == canonical_program(program)

    def test_round_trip_without_advance(self):
        program = parse_program(NO_ADVANCE_TEXT)
        assert "Advance" not in format_program(program)
        again = parse_program(format_program(program))
        assert canonical_program(again) == canonical_program(program)

    def test_missing_hole_rejected(self):
        with pytest.raises(ParseError, match="counter hole"):
            parse_program(
                "paginate k from 2 do\n  ScrapeText(//h2[1])\n  Click(//button[1])"
            )

    def test_advance_outside_paginate_rejected(self):
        with pytest.raises(ParseError):
            parse_program("Advance(//button[1])")

    def test_advance_must_be_last(self):
        with pytest.raises(ParseError, match="last line"):
            parse_program(
                "paginate k from 2 do\n"
                "  Advance(//button[1])\n"
                "  ScrapeText(//h2[1])\n"
                "  Click(//button[@data-page='{k}'][1])"
            )

    def test_two_holes_rejected(self):
        with pytest.raises(ParseError, match="exactly one"):
            parse_program(
                "paginate k from 2 do\n"
                "  ScrapeText(//h2[1])\n"
                "  Click(//div[@id='{k}'][1]/button[@data-page='{k}'][1])"
            )


GT = parse_program(
    "paginate k from 2 do\n"
    "  foreach r in Dscts(/, li[@class='job-bx']) do\n"
    "    ScrapeText(r/h2[1])\n"
    "    ScrapeText(r//h3[1])\n"
    "  Click(//button[@data-page='{k}'][1])\n"
    "  Advance(//button[@class='nextBlock'][1])"
)


class TestRealReplay:
    def test_scrapes_every_page_including_last(self):
        site = JobBoardSite(5, 3, mode="numbered", seed="px")
        browser = Browser(site, EMPTY_DATA)
        Replayer(browser).run(GT)
        assert browser.outputs == site.expected_fields(("title", "company"))

    def test_single_block_site_without_advance(self):
        # 3 pages fit one block: the advance button never exists
        site = JobBoardSite(3, 2, mode="numbered", seed="py")
        browser = Browser(site, EMPTY_DATA)
        Replayer(browser).run(GT)
        assert browser.outputs == site.expected_fields(("title", "company"))

    def test_advance_crosses_blocks(self):
        # 7 pages, block size 3: two advance clicks needed
        site = JobBoardSite(7, 2, mode="numbered", seed="pz")
        browser = Browser(site, EMPTY_DATA)
        result = Replayer(browser).run(GT)
        assert browser.outputs == site.expected_fields(("title", "company"))
        advance_clicks = sum(
            1 for action in result.actions
            if action.kind == "Click"
            and "nextBlock" in str(action.selector)
        )
        assert advance_clicks == 0  # raw-normalised; count page transitions instead
        assert len([a for a in result.actions if a.kind == "Click"]) == 6  # 7 pages


class TestTraceSemantics:
    def setup_method(self):
        site = JobBoardSite(5, 3, mode="numbered", seed="ts")
        browser = Browser(site, EMPTY_DATA)
        Replayer(browser).run(GT)
        self.recording_actions, self.recording_snapshots = browser.trace()
        self.expected = browser.outputs

    def test_reproduces_recorded_trace(self):
        from repro.semantics import traces_consistent

        doms = DOMTrace(self.recording_snapshots)
        result = execute(GT, doms, EMPTY_DATA)
        assert traces_consistent(result.actions, self.recording_actions, doms)

    def test_provenance_matches_evaluator(self):
        from repro.semantics.provenance import explain

        doms = DOMTrace(self.recording_snapshots)
        plain = execute(GT, doms, EMPTY_DATA)
        traced = explain(GT, doms, EMPTY_DATA)
        assert traced.actions == plain.actions

    def test_provenance_click_path_past_body(self):
        from repro.semantics.provenance import explain

        traced = explain(GT, DOMTrace(self.recording_snapshots), EMPTY_DATA)
        click_paths = {
            record.path for record in traced.records if record.action.kind == "Click"
        }
        assert click_paths == {(0, 1)}


class TestSynthesisEndToEnd:
    def record(self, site):
        browser = Browser(site, EMPTY_DATA)
        Replayer(browser).run(GT)
        return browser

    def synthesize_final(self, actions, snapshots, config):
        """The Q1 protocol: prefixes up to n-1 actions (a completed task
        no longer *generalizes* — Definition 4.2 needs a strict prefix)."""
        synth = Synthesizer(EMPTY_DATA, config)
        final = None
        for cut in range(1, len(actions)):
            result = synth.synthesize(actions[:cut], snapshots[: cut + 1], timeout=2.0)
            if result.best_program is not None:
                final = result.best_program
        return final

    def test_paginate_loop_synthesized(self):
        site = JobBoardSite(5, 2, mode="numbered", seed="se")
        browser = self.record(site)
        actions, snapshots = browser.trace()
        final = self.synthesize_final(actions, snapshots, numbered_pagination_config())
        assert final is not None
        assert any(isinstance(stmt, PaginateLoop) for stmt in final.statements)

    def test_synthesized_program_replays_on_scaled_site(self):
        site = JobBoardSite(5, 2, mode="numbered", seed="se")
        browser = self.record(site)
        actions, snapshots = browser.trace()
        final = self.synthesize_final(actions, snapshots, numbered_pagination_config())
        scaled = JobBoardSite(8, 2, mode="numbered", seed="se")
        scaled_browser = Browser(scaled, EMPTY_DATA)
        outcome = Replayer(scaled_browser, raise_errors=False).run(final)
        assert outcome.error is None
        assert scaled_browser.outputs == scaled.expected_fields(("title", "company"))

    def test_default_config_still_fails_as_paper(self):
        """Without the extension, no synthesized program survives scaling."""
        site = JobBoardSite(5, 2, mode="numbered", seed="se")
        browser = self.record(site)
        actions, snapshots = browser.trace()
        final = self.synthesize_final(actions, snapshots, DEFAULT_CONFIG)
        if final is None:
            return  # nothing generalized at all: the paper's failure mode
        assert not any(isinstance(stmt, PaginateLoop) for stmt in final.statements)
        scaled = JobBoardSite(8, 2, mode="numbered", seed="se")
        scaled_browser = Browser(scaled, EMPTY_DATA)
        outcome = Replayer(scaled_browser, raise_errors=False).run(final)
        solved = outcome.error is None and scaled_browser.outputs == scaled.expected_fields(
            ("title", "company")
        )
        assert not solved


class TestExportPaginate:
    def test_selenium_compiles_with_counter(self):
        from repro.export import to_selenium

        source = to_selenium(parse_program(PAGINATE_TEXT))
        compile(source, "<generated>", "exec")
        assert 'replace("{k}", str(page_1))' in source
        assert "page_1 += 1" in source

    def test_playwright_compiles_with_counter(self):
        from repro.export import to_playwright

        source = to_playwright(parse_program(PAGINATE_TEXT))
        compile(source, "<generated>", "exec")
        assert 'replace("{k}", str(page_no_1))' in source

    def test_advance_emitted_after_numbered(self):
        from repro.export import to_selenium

        source = to_selenium(parse_program(PAGINATE_TEXT))
        assert source.index("numbered_1") < source.index("advance_1")
        assert "break" in source


class TestCheckPaginate:
    def test_clean(self):
        from repro.lang.check import check_program

        assert check_program(parse_program(PAGINATE_TEXT)) == []

    def test_start_zero_warns(self):
        from repro.lang.check import check_program

        program = parse_program(
            "paginate k from 0 do\n"
            "  ScrapeText(//h2[1])\n"
            "  Click(//button[@data-page='{k}'][1])"
        )
        diags = check_program(program)
        assert any("starts at 0" in d.message for d in diags)
