"""Tests for the extended-ablation harness (`repro.harness.ablations`)."""

from __future__ import annotations

import pytest

from repro.harness.ablations import (
    ExtensionCase,
    VariantOutcome,
    render_extensions,
    render_variants,
    run_extensions_report,
    run_gates_ablation,
)
from repro.harness.q1 import BenchmarkResult


def result(accuracy: float, intended: bool, times=(0.01,)) -> BenchmarkResult:
    outcome = BenchmarkResult(bid="x", family="f")
    outcome.tests = 10
    outcome.correct = int(accuracy * 10)
    outcome.intended = intended
    outcome.prediction_times = list(times)
    return outcome


class TestVariantOutcome:
    def test_aggregates(self):
        outcome = VariantOutcome(
            "v", [result(1.0, True), result(0.6, False, times=(0.03,))]
        )
        assert outcome.solved == 1
        assert outcome.mean_accuracy == pytest.approx(0.8)
        assert outcome.mean_time == pytest.approx(0.02)

    def test_empty_results(self):
        outcome = VariantOutcome("v", [])
        assert outcome.solved == 0
        assert outcome.mean_accuracy == 0.0
        assert outcome.mean_time == 0.0

    def test_render_contains_rows(self):
        text = render_variants("My title", [VariantOutcome("only", [result(1.0, True)])])
        assert "My title" in text
        assert "only" in text and "1/1" in text


class TestGatesAblation:
    def test_shapes_and_equivalence_on_one_benchmark(self):
        outcomes = run_gates_ablation(subset=("b74",), trace_cap=8)
        assert [o.name for o in outcomes] == [
            "pivot gate (default)",
            "no gates",
            "pivot + window gates",
        ]
        gated, ungated, _windowed = outcomes
        # the pivot gate is behaviour-preserving
        assert gated.solved == ungated.solved
        assert gated.mean_accuracy == ungated.mean_accuracy


class TestExtensionsReport:
    def test_b6_solved_only_with_token_predicates(self):
        (case,) = run_extensions_report(trace_cap=30, bids=("b6",))
        assert case.mechanism == "disjunctive selectors"
        assert not case.baseline.intended  # as published
        assert case.extended.intended

    def test_render_marks_published_failures(self):
        case = ExtensionCase(
            "b6", "disjunctive selectors", result(0.5, False), result(1.0, True)
        )
        text = render_extensions([case])
        assert "NO (as published)" in text
        assert "b6" in text
