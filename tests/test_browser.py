"""Unit tests for the virtual browser, replayer, and recorder."""

import pytest

from repro.browser import Browser, Recording, Replayer, record_ground_truth
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.dom import parse_selector, resolve
from repro.lang import (
    DataSource,
    X,
    click,
    enter_data,
    extract_url,
    go_back,
    parse_program,
    scrape_link,
    scrape_text,
    send_keys,
)
from repro.util import ReplayError

ZIPS = DataSource({"zips": ["48104", "48105"]})

SCRAPE_ALL = """
EnterData(//input[@name='search'][1], x["zips"][1])
Click(//button[@class='squareButton btnDoSearch'][1])
while true do
  foreach r in Dscts(/, div[@class='rightContainer']) do
    ScrapeText(r//h3[1])
    ScrapeText(r//div[@class='locatorPhone'][1])
  Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
"""


def small_site():
    return StoreLocatorSite(pages_per_zip=2, stores_per_page=3)


class TestBrowserBasics:
    def test_initial_state_home(self):
        browser = Browser(small_site())
        assert browser.state == ("home", "")
        assert "storelocator" in browser.current_url()

    def test_send_keys_updates_input_value(self):
        browser = Browser(small_site())
        browser.perform(send_keys(parse_selector("//input[@name='search'][1]"), "48104"))
        node = resolve(parse_selector("//input[@name='search'][1]"), browser.dom)
        assert node.get("value") == "48104"

    def test_enter_data_resolves_from_source(self):
        browser = Browser(small_site(), ZIPS)
        browser.perform(
            enter_data(parse_selector("//input[@name='search'][1]"), X.extend("zips").extend(2))
        )
        node = resolve(parse_selector("//input[@name='search'][1]"), browser.dom)
        assert node.get("value") == "48105"

    def test_search_click_navigates(self):
        browser = Browser(small_site(), ZIPS)
        browser.perform(
            enter_data(parse_selector("//input[@name='search'][1]"), X.extend("zips").extend(1))
        )
        browser.perform(click(parse_selector("//button[@class='squareButton btnDoSearch'][1]")))
        assert browser.state == ("results", "48104", 1, "48104")
        assert "page=1" in browser.current_url()

    def test_empty_query_click_is_inert(self):
        browser = Browser(small_site())
        before = browser.state
        browser.perform(click(parse_selector("//button[@class='squareButton btnDoSearch'][1]")))
        assert browser.state == before

    def test_scrape_text_collects_output(self):
        browser = Browser(small_site(), ZIPS)
        browser.perform(
            enter_data(parse_selector("//input[@name='search'][1]"), X.extend("zips").extend(1))
        )
        browser.perform(click(parse_selector("//button[@class='squareButton btnDoSearch'][1]")))
        browser.perform(scrape_text(parse_selector("//div[@class='rightContainer'][1]//h3[1]")))
        expected = small_site().store("48104", 1, 1)["name"]
        assert browser.outputs == [expected]

    def test_scrape_link_collects_href(self):
        browser = Browser(small_site())
        browser.perform(scrape_link(parse_selector("//a[1]")))
        assert browser.outputs == ["/ads/banner"]

    def test_extract_url_and_go_back(self):
        browser = Browser(small_site(), ZIPS)
        browser.perform(
            enter_data(parse_selector("//input[@name='search'][1]"), X.extend("zips").extend(1))
        )
        browser.perform(click(parse_selector("//button[@class='squareButton btnDoSearch'][1]")))
        browser.perform(extract_url())
        browser.perform(go_back())
        assert browser.urls == ["virtual://storelocator/search?zip=48104&page=1"]
        # back to the (typed-into) home page
        assert browser.state[0] == "home"

    def test_go_back_without_history_raises(self):
        browser = Browser(small_site())
        with pytest.raises(ReplayError):
            browser.perform(go_back())

    def test_missing_selector_raises(self):
        browser = Browser(small_site())
        with pytest.raises(ReplayError):
            browser.perform(click(parse_selector("//button[@class='nope'][1]")))

    def test_typing_into_non_input_raises(self):
        browser = Browser(small_site())
        with pytest.raises(ReplayError):
            browser.perform(send_keys(parse_selector("//h3[1]"), "x"))

    def test_recording_normalises_to_raw_paths(self):
        browser = Browser(small_site())
        browser.perform(scrape_text(parse_selector("//h3[1]")))
        recorded = browser.recorded_actions[0]
        assert str(recorded.selector).startswith("/html[1]/body[1]/")

    def test_trace_has_final_snapshot(self):
        browser = Browser(small_site(), ZIPS)
        browser.perform(
            enter_data(parse_selector("//input[@name='search'][1]"), X.extend("zips").extend(1))
        )
        actions, snapshots = browser.trace()
        assert len(snapshots) == len(actions) + 1
        assert snapshots[-1] is browser.dom

    def test_render_cache_shares_snapshots(self):
        site = small_site()
        browser = Browser(site)
        first = browser.dom
        browser.perform(scrape_text(parse_selector("//h3[1]")))
        assert browser.dom is first  # scraping does not re-render


class TestPagination:
    def test_next_page_via_span_click(self):
        browser = Browser(small_site(), ZIPS)
        browser.perform(
            enter_data(parse_selector("//input[@name='search'][1]"), X.extend("zips").extend(1))
        )
        browser.perform(click(parse_selector("//button[@class='squareButton btnDoSearch'][1]")))
        browser.perform(
            click(parse_selector("//button[@class='sprite-next-page-arrow'][1]/span[1]"))
        )
        assert browser.state[2] == 2

    def test_last_page_has_no_next_button(self):
        site = small_site()
        last = site.page(("results", "48104", 2, "48104"))
        assert resolve(parse_selector("//button[@class='sprite-next-page-arrow'][1]"), last) is None
        assert resolve(parse_selector("//button[@class='sprite-prev-page-arrow'][1]"), last) is not None

    def test_next_button_raw_path_shifts_after_page_one(self):
        from repro.dom import raw_path

        site = small_site()
        page1 = site.page(("results", "48104", 1, "48104"))
        # page 2 of a 3+-page site has both arrows
        wide = StoreLocatorSite(pages_per_zip=3, stores_per_page=3)
        page2 = wide.page(("results", "48104", 2, "48104"))
        next1 = resolve(parse_selector("//button[@class='sprite-next-page-arrow'][1]"), page1)
        next2 = resolve(parse_selector("//button[@class='sprite-next-page-arrow'][1]"), page2)
        assert raw_path(next1) != raw_path(next2)


class TestReplayer:
    def test_ground_truth_scrapes_everything(self):
        site = small_site()
        recording = record_ground_truth(site, parse_program(SCRAPE_ALL), ZIPS)
        expected = site.expected_fields("48104", ("name", "phone"))
        assert recording.outputs == expected
        assert not recording.truncated

    def test_recording_trace_shape(self):
        site = small_site()
        recording = record_ground_truth(site, parse_program(SCRAPE_ALL), ZIPS)
        # 1 entry + 1 search click + 2 pages x 3 stores x 2 fields + 1 next click
        assert recording.length == 1 + 1 + 2 * 3 * 2 + 1
        assert len(recording.snapshots) == recording.length + 1

    def test_prefix_helper(self):
        site = small_site()
        recording = record_ground_truth(site, parse_program(SCRAPE_ALL), ZIPS)
        actions, snapshots = recording.prefix(5)
        assert len(actions) == 5 and len(snapshots) == 6

    def test_max_actions_truncates(self):
        site = StoreLocatorSite(pages_per_zip=5, stores_per_page=10)
        recording = record_ground_truth(site, parse_program(SCRAPE_ALL), ZIPS, max_actions=7)
        assert recording.truncated
        assert recording.length == 7

    def test_value_loop_over_zips(self):
        program = parse_program(
            """
foreach z in ValuePaths(x["zips"]) do
  EnterData(//input[@name='search'][1], z)
  Click(//button[@class='squareButton btnDoSearch'][1])
  while true do
    foreach r in Dscts(/, div[@class='rightContainer']) do
      ScrapeText(r//h3[1])
    Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
"""
        )
        site = small_site()
        recording = record_ground_truth(site, program, ZIPS)
        expected = site.expected_fields("48104", ("name",)) + site.expected_fields(
            "48105", ("name",)
        )
        assert recording.outputs == expected

    def test_replay_error_captured_when_not_raising(self):
        browser = Browser(small_site())
        replayer = Replayer(browser, raise_errors=False)
        result = replayer.run(parse_program("Click(//button[@class='nope'][1])"))
        assert result.error is not None
        assert result.actions == []
