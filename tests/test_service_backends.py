"""The persistent cache backends (repro.service.backends).

Covers the codec (exact structural round-trips for actions and
environments), the SQLite file backend (cross-connection visibility,
byte-accounted eviction, corruption tolerance), backend resolution, and
the cache-level warm-start path the backends feed.
"""

import os
import sqlite3

import pytest

from repro.dom import E
from repro.dom.xpath import parse_selector
from repro.engine.cache import ExecutionCache
from repro.engine.keys import stable_digest
from repro.lang import X, click, enter_data, scrape_text, send_keys
from repro.lang.ast import SEL_VAR, VAL_VAR, Var, ValuePath
from repro.semantics.env import Env
from repro.service.backends import (
    CONSISTENCY,
    EXACT,
    TERMINAL,
    FileBackend,
    InProcessBackend,
    action_from_payload,
    action_to_payload,
    entry_from_payload,
    entry_to_payload,
    env_from_payload,
    env_to_payload,
    resolve_backend,
    reset_backends,
)


class TestCodec:
    def test_actions_round_trip_exactly(self):
        actions = [
            click(parse_selector("/html[1]/body[1]//div[@class='card'][2]")),
            scrape_text(parse_selector("//div[@class~='match'][1]/h3[1]")),
            send_keys(parse_selector("//input[@name='q'][1]"), "laptops"),
            enter_data(parse_selector("//input[1]"), X.extend("zips").extend(3)),
        ]
        for action in actions:
            restored = action_from_payload(action_to_payload(action))
            assert restored == action
            # the token-predicate subclass must survive (same fields,
            # different matching semantics)
            if action.selector is not None:
                for original, round_tripped in zip(
                    action.selector.steps, restored.selector.steps
                ):
                    assert type(original.pred) is type(round_tripped.pred)

    def test_env_round_trips_exactly(self):
        env = (
            Env()
            .bind(Var(SEL_VAR, 3), parse_selector("/html[1]/body[1]/div[2]"))
            .bind(Var(VAL_VAR, 9), ValuePath(None, ("zips", 2)))
        )
        restored = env_from_payload(env_to_payload(env))
        assert restored.fingerprint() == env.fingerprint()
        assert env_to_payload(None) is None
        assert env_from_payload(None) is None

    def test_entry_round_trip(self):
        actions = (scrape_text(parse_selector("//h3[1]")),)
        env = Env()
        payload = entry_to_payload(actions, env, (11, 22), True)
        r_actions, r_env, examined, ok = entry_from_payload(payload)
        assert r_actions == actions
        assert r_env.fingerprint() == env.fingerprint()
        assert examined == (11, 22)
        assert ok is True
        # exact-table entries carry no examined prefix
        _, _, examined, ok = entry_from_payload(entry_to_payload(actions, env, None, False))
        assert examined is None and ok is False


class TestFileBackend:
    def test_entries_survive_a_new_connection(self, tmp_path):
        path = tmp_path / "store.sqlite"
        actions = (scrape_text(parse_selector("//h3[1]")),)
        writer = FileBackend(path, flush_every=1)
        key = stable_digest(("exact", "k"))
        writer.store_entry(EXACT, key, actions, Env(), None, False)
        writer.store_consistency(stable_digest(("consistency", "c")), 5)
        writer.close()
        reader = FileBackend(path)  # a different process, morally
        restored = reader.load_entry(EXACT, key)
        assert restored is not None
        assert restored[0] == actions
        assert reader.load_consistency(stable_digest(("consistency", "c"))) == 5
        assert reader.load_entry(EXACT, stable_digest(("exact", "other"))) is None
        assert reader.persisted_bytes > 0
        assert reader.entries == 2
        reader.close()

    def test_buffered_writes_flush_by_count_and_on_demand(self, tmp_path):
        backend = FileBackend(tmp_path / "store.sqlite", flush_every=4)
        actions = (scrape_text(parse_selector("//h3[1]")),)
        key = stable_digest(("exact", 1))
        backend.store_entry(EXACT, key, actions, Env(), None, False)
        with backend._lock:
            assert backend._pending  # still buffered
        backend.flush()
        with backend._lock:
            assert not backend._pending
        assert backend.load_entry(EXACT, key) is not None
        backend.close()

    def test_byte_accounted_eviction_drops_oldest(self, tmp_path):
        backend = FileBackend(tmp_path / "store.sqlite", max_bytes=4000, flush_every=1)
        actions = tuple(
            scrape_text(parse_selector(f"//div[@class='card'][{i}]/h3[1]"))
            for i in range(1, 6)
        )
        keys = [stable_digest(("exact", index)) for index in range(40)]
        for key in keys:
            backend.store_entry(EXACT, key, actions, Env(), None, False)
        assert backend.evictions > 0
        assert backend.persisted_bytes <= 4000
        assert backend.load_entry(EXACT, keys[0]) is None  # oldest gone
        assert backend.load_entry(EXACT, keys[-1]) is not None  # newest kept
        backend.close()

    def test_uncodable_values_are_skipped_not_fatal(self, tmp_path):
        backend = FileBackend(tmp_path / "store.sqlite", flush_every=1)
        backend.store_entry(EXACT, b"key", ("not an action",), None, None, False)
        assert backend.encode_errors == 1
        assert backend.load_entry(EXACT, b"key") is None
        backend.close()

    def test_corrupt_rows_degrade_to_misses(self, tmp_path):
        path = tmp_path / "store.sqlite"
        backend = FileBackend(path, flush_every=1)
        actions = (scrape_text(parse_selector("//h3[1]")),)
        key = stable_digest(("exact", "x"))
        backend.store_entry(EXACT, key, actions, Env(), None, False)
        with backend._lock:
            backend._conn.execute(
                "UPDATE entries SET payload = ?", (b"{not json",)
            )
            # drop the in-memory row so the load really hits the
            # corrupted disk payload
            backend._decoded.clear()
            backend._decoded_bytes = 0
        assert backend.load_entry(EXACT, key) is None
        backend.close()

    def test_terminal_payload_with_examined(self, tmp_path):
        backend = FileBackend(tmp_path / "store.sqlite", flush_every=1)
        actions = (scrape_text(parse_selector("//h3[1]")),)
        key = stable_digest(("terminal", "t"))
        backend.store_entry(TERMINAL, key, actions, Env(), (7, 8), True)
        _, _, examined, ok = backend.load_entry(TERMINAL, key)
        assert examined == (7, 8) and ok is True
        backend.close()


class TestResolution:
    def test_memory_is_the_default_and_a_no_op(self, monkeypatch):
        backend = resolve_backend("memory")
        assert isinstance(backend, InProcessBackend)
        assert not backend.persistent
        assert backend.load_entry(EXACT, b"k") is None
        assert backend.load_consistency(b"k") is None
        backend.store_entry(EXACT, b"k", (), Env(), None, False)
        backend.store_consistency(b"k", 1)
        assert resolve_backend("") is backend
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert resolve_backend(None) is backend

    def test_file_backends_are_shared_per_path(self, tmp_path):
        try:
            first = resolve_backend("file", str(tmp_path / "s.sqlite"))
            second = resolve_backend("file", str(tmp_path / "s.sqlite"))
            other = resolve_backend("file", str(tmp_path / "t.sqlite"))
            assert first is second
            assert first is not other
        finally:
            reset_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("redis")


class TestCacheWarmStart:
    """The ExecutionCache ↔ backend integration (unit level)."""

    def _entry_values(self):
        actions = (scrape_text(parse_selector("//h3[1]")),)
        return actions, Env()

    def test_write_through_and_warm_start_counts(self, tmp_path):
        backend = FileBackend(tmp_path / "store.sqlite", flush_every=1)
        actions, env = self._entry_values()
        writer = ExecutionCache(max_entries=16, backend=backend)
        writer.put(("base",), (101, 102), 2, actions, env)
        # a cold cache over the same store: in-memory miss, backend hit
        reader = ExecutionCache(max_entries=16, backend=backend)
        hit = reader.get(("base",), (101, 102), 2)
        assert hit is not None
        assert hit[0] == actions
        counters = reader.counters
        assert counters.hits == counters.exact_hits == counters.warm_hits == 1
        assert counters.misses == 0
        assert counters.cross_session_hits == 0  # restored entries own no session
        # promoted: the second lookup is served from memory, not disk
        loads_before = backend.loads
        assert reader.get(("base",), (101, 102), 2) is not None
        assert backend.loads == loads_before
        assert reader.counters.warm_hits == 1
        backend.close()

    def test_terminal_entries_warm_start_onto_extended_windows(self, tmp_path):
        backend = FileBackend(tmp_path / "store.sqlite", flush_every=1)
        actions, env = self._entry_values()
        writer = ExecutionCache(max_entries=16, backend=backend)
        # one action, three snapshots, budget 3: terminal (examined 2)
        writer.put(("base",), (101, 102, 103), 3, actions, env, exact_budget_ok=True)
        reader = ExecutionCache(max_entries=16, backend=backend)
        # an extended window sharing the examined prefix hits via disk
        hit = reader.get(("base",), (101, 102, 104, 105), 4)
        assert hit is not None
        assert reader.counters.prefix_hits == 1
        assert reader.counters.warm_hits == 1
        # a window with a different examined prefix must miss
        fresh = ExecutionCache(max_entries=16, backend=backend)
        assert fresh.get(("base",), (101, 999, 104), 3) is None
        backend.close()

    def test_persisted_exact_entry_found_despite_inapplicable_terminal(self, tmp_path):
        # regression: an in-memory terminal entry that fails the budget
        # check used to short-circuit the backend probe entirely,
        # recomputing executions the store already held
        backend = FileBackend(tmp_path / "store.sqlite", flush_every=1)
        actions, env = self._entry_values()
        writer = ExecutionCache(max_entries=16, backend=backend)
        # a budget-capped exact outcome (1 action over budget 1): the
        # run did not terminate on its own terms, so no terminal entry
        writer.put(("base",), (101, 102), 1, actions, env)
        reader = ExecutionCache(max_entries=16, backend=backend)
        # seed an in-memory terminal entry that does NOT apply to the
        # budget-1 lookup (budget == len(actions), exact_budget_ok False)
        reader.put(("base",), (101, 102, 103), 3, actions, env, exact_budget_ok=False)
        hit = reader.get(("base",), (101, 102), 1)
        assert hit is not None
        assert reader.counters.warm_hits == 1
        assert reader.counters.exact_hits == 1
        backend.close()

    def test_consistency_memo_round_trips_through_the_store(self, tmp_path):
        backend = FileBackend(tmp_path / "store.sqlite", flush_every=1)
        writer = ExecutionCache(max_entries=16, backend=backend)
        writer.put_consistency(((1, 2), (3, 4), (5,)), 2)
        reader = ExecutionCache(max_entries=16, backend=backend)
        assert reader.get_consistency(((1, 2), (3, 4), (5,))) == 2
        assert reader.counters.consistency_hits == 1
        assert reader.counters.warm_hits == 1
        backend.close()

    def test_memory_backend_never_touches_digests(self):
        cache = ExecutionCache(max_entries=4, backend=InProcessBackend())
        assert cache.backend is None  # non-persistent: dropped entirely
        assert cache.backend_name == "memory"
        cache.put(("base",), (1,), 1, ("a",), None)
        assert cache.get(("base",), (1,), 1) is not None
        assert cache.counters.warm_hits == 0
