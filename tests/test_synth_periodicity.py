"""Tests for the shape-periodicity gates (`repro.synth.periodicity`).

The load-bearing property is the pivot gate's soundness contract:
whenever two statements' shapes differ, anti-unification must return
nothing — otherwise the default-on gate would prune real rewrites.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dom import E, page
from repro.lang import parse_program
from repro.lang.ast import Program
from repro.synth import (
    DEFAULT_CONFIG,
    Synthesizer,
    anti_unify_statements,
    no_shape_gates_config,
    shape_sequence,
    statement_shape,
    trace_periods,
    window_periodic,
    window_periodicity_config,
)
from repro.lang.data import DataSource, EMPTY_DATA

from helpers import cards_page, scrape_cards_trace


def stmts(text: str):
    return parse_program(text).statements


DOM = page(E("div", E("h3", text="x")))


# ----------------------------------------------------------------------
# Shapes
# ----------------------------------------------------------------------
class TestStatementShape:
    def test_same_kind_different_selectors_share_shape(self):
        a, b = stmts("ScrapeText(//li[1])\nScrapeText(//li[7]/b[1])")
        assert statement_shape(a) == statement_shape(b)

    def test_kinds_distinguish(self):
        a, b = stmts("ScrapeText(//li[1])\nScrapeLink(//li[1])")
        assert statement_shape(a) != statement_shape(b)

    def test_sendkeys_text_distinguishes(self):
        a, b = stmts('SendKeys(//input[1], "a")\nSendKeys(//input[1], "b")')
        assert statement_shape(a) != statement_shape(b)

    def test_enterdata_same_length_paths_share_shape(self):
        a, b = stmts(
            'EnterData(//input[1], x["zips"][1])\nEnterData(//input[1], x["zips"][2])'
        )
        assert statement_shape(a) == statement_shape(b)

    def test_enterdata_different_length_paths_distinguish(self):
        a, b = stmts(
            'EnterData(//input[1], x["zips"][1])\nEnterData(//input[1], x["zips"])'
        )
        assert statement_shape(a) != statement_shape(b)

    def test_loop_collection_predicate_distinguishes(self):
        a = stmts("foreach r in Dscts(/, div[@class='a']) do\n  ScrapeText(r//h3[1])")[0]
        b = stmts("foreach r in Dscts(/, div[@class='b']) do\n  ScrapeText(r//h3[1])")[0]
        assert statement_shape(a) != statement_shape(b)

    def test_loop_body_kinds_distinguish(self):
        a = stmts("foreach r in Dscts(/, div) do\n  ScrapeText(r//h3[1])")[0]
        b = stmts("foreach r in Dscts(/, div) do\n  ScrapeLink(r//h3[1])")[0]
        assert statement_shape(a) != statement_shape(b)

    def test_loop_bases_do_not_distinguish(self):
        a = stmts("foreach r in Dscts(//ul[1], li) do\n  ScrapeText(r//b[1])")[0]
        b = stmts("foreach r in Dscts(//ul[2], li) do\n  ScrapeText(r//b[1])")[0]
        assert statement_shape(a) == statement_shape(b)

    def test_while_and_paginate_have_distinct_categories(self):
        loop = stmts("while true do\n  ScrapeText(//h3[1])\n  Click(//b[1])")[0]
        assert statement_shape(loop)[0] == "w"


# ----------------------------------------------------------------------
# Pivot-gate soundness: shape inequality refutes anti-unifiability
# ----------------------------------------------------------------------
_KINDS = st.sampled_from(["ScrapeText", "ScrapeLink", "Click", "Download"])
_INDICES = st.integers(min_value=1, max_value=3)


@st.composite
def action_texts(draw):
    kind = draw(_KINDS)
    first = draw(_INDICES)
    second = draw(_INDICES)
    return f"{kind}(//li[{first}]/span[{second}])"


class TestPivotGateSoundness:
    @settings(max_examples=120, deadline=None)
    @given(action_texts(), action_texts())
    def test_shape_mismatch_implies_no_unification(self, text_a, text_b):
        (a,) = stmts(text_a)
        (b,) = stmts(text_b)
        if statement_shape(a) != statement_shape(b):
            assert anti_unify_statements(a, DOM, b, DOM, DEFAULT_CONFIG) == []

    def test_enterdata_value_pivot_not_gated(self):
        # the rule-(3) pivot pair must share a shape or the gate would
        # break data-entry loops
        a, b = stmts(
            'EnterData(//input[1], x["zips"][1])\nEnterData(//input[1], x["zips"][2])'
        )
        assert statement_shape(a) == statement_shape(b)
        dom = page(E("input", {"name": "q"}))
        results = anti_unify_statements(a, dom, b, dom, DEFAULT_CONFIG)
        assert results  # rule (3) fires


# ----------------------------------------------------------------------
# Windows and periods
# ----------------------------------------------------------------------
class TestWindowPeriodic:
    def test_perfect_repetition(self):
        shapes = shape_sequence(
            stmts(
                "ScrapeText(//li[1]/h3[1])\nScrapeLink(//li[1]/a[1])\n"
                "ScrapeText(//li[2]/h3[1])\nScrapeLink(//li[2]/a[1])"
            )
        )
        assert window_periodic(shapes, 0, 2)
        assert not window_periodic(shapes, 0, 1)

    def test_window_running_past_end(self):
        shapes = shape_sequence(stmts("ScrapeText(//li[1])\nScrapeText(//li[2])"))
        assert window_periodic(shapes, 0, 1)
        assert not window_periodic(shapes, 1, 1)
        assert not window_periodic(shapes, 0, 2)

    def test_degenerate_inputs(self):
        assert not window_periodic([], 0, 1)
        assert not window_periodic([("a",)], 0, 0)
        assert not window_periodic([("a",), ("a",)], -1, 1)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from("ab"), min_size=2, max_size=12), st.integers(1, 6))
    def test_matches_bruteforce(self, symbols, period):
        shapes = [(symbol,) for symbol in symbols]
        for start in range(len(shapes)):
            expected = start + 2 * period <= len(shapes) and all(
                shapes[k] == shapes[k + period] for k in range(start, start + period)
            )
            assert window_periodic(shapes, start, period) == expected


class TestTracePeriods:
    def test_pure_repetition_reports_period(self):
        shapes = [("a",), ("b",)] * 4
        periods = trace_periods(shapes)
        assert periods[2] == len(shapes) - 4 + 1
        assert 1 not in periods  # a,b alternate: period 1 never holds

    def test_aperiodic_trace_reports_nothing(self):
        shapes = [("a",), ("b",), ("c",), ("d",)]
        assert trace_periods(shapes) == {}

    def test_max_period_caps_search(self):
        shapes = [("a",)] * 10
        assert set(trace_periods(shapes, max_period=2)) == {1, 2}


# ----------------------------------------------------------------------
# End-to-end: the gates do not change synthesis results
# ----------------------------------------------------------------------
def synthesize_with(config, dom, count=3):
    actions, snapshots = scrape_cards_trace(dom, count)
    return Synthesizer(EMPTY_DATA, config=config).synthesize(actions, snapshots)


class TestGateEquivalence:
    def test_pivot_gate_preserves_best_program(self):
        from repro.lang.ast import canonical_program

        dom = cards_page(6)
        gated = synthesize_with(DEFAULT_CONFIG, dom)
        ungated = synthesize_with(no_shape_gates_config(), dom)
        assert gated.best_program is not None
        # fresh loop variables differ between runs; compare alpha-classes
        assert canonical_program(gated.best_program) == canonical_program(
            ungated.best_program
        )

    def test_window_gate_still_solves_uniform_traces(self):
        dom = cards_page(6)
        windowed = synthesize_with(window_periodicity_config(), dom)
        assert windowed.best_program is not None
        assert windowed.best_prediction is not None

    def test_window_gate_handles_data_entry(self):
        # a trace mixing entry and scraping still rolls under the gate
        data = DataSource({"zips": ["48104", "48105", "48106"]})
        from repro.benchmarks.sites.store_locator import StoreLocatorSite
        from repro.browser import Browser
        from repro.dom import parse_selector
        from repro.lang import X, click, enter_data

        site = StoreLocatorSite(pages_per_zip=1, stores_per_page=4)
        browser = Browser(site, data)
        for index in (1, 2):
            browser.perform(
                enter_data(
                    parse_selector("//input[@name='search'][1]"),
                    X.extend("zips").extend(index),
                )
            )
            browser.perform(
                click(parse_selector("//button[@class='squareButton btnDoSearch'][1]"))
            )
        actions, snapshots = browser.trace()
        result = Synthesizer(data, config=window_periodicity_config()).synthesize(
            actions, snapshots
        )
        assert result.best_program is not None
        assert result.best_prediction is not None
