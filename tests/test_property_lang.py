"""Property-based tests for the DSL: printing, parsing, canonical forms."""

from hypothesis import given, settings, strategies as st

from repro.dom.xpath import CHILD, DESC, ConcreteSelector, Predicate, Step
from repro.lang import (
    DataSource,
    Program,
    X,
    canonical_program,
    format_program,
    parse_program,
    program_size,
)
from repro.lang.ast import (
    SEL_VAR,
    ActionStmt,
    ChildrenOf,
    DescendantsOf,
    ForEachSelector,
    ForEachValue,
    Selector,
    ValuePath,
    ValuePathsOf,
    WhileLoop,
    fresh_var,
)

TAGS = ("div", "span", "li", "a")


@st.composite
def concrete_steps(draw, min_size=1, max_size=3):
    steps = []
    for _ in range(draw(st.integers(min_size, max_size))):
        axis = draw(st.sampled_from([CHILD, DESC]))
        tag = draw(st.sampled_from(TAGS))
        if draw(st.booleans()):
            pred = Predicate(tag, "class", draw(st.sampled_from(["a", "b"])))
        else:
            pred = Predicate(tag)
        steps.append(Step(axis, pred, draw(st.integers(1, 5))))
    return tuple(steps)


@st.composite
def programs(draw, depth=0):
    """Random well-formed programs (bounded nesting)."""
    statements = []
    for _ in range(draw(st.integers(1, 3))):
        statements.append(draw(statement(depth)))
    return Program(tuple(statements))


@st.composite
def statement(draw, depth=0, bound_var=None):
    kind = draw(st.sampled_from(["action", "action", "sel-loop", "val-loop", "while"]))
    if kind == "action" or depth >= 2:
        base = bound_var if (bound_var and draw(st.booleans())) else None
        target = Selector(base, draw(concrete_steps()))
        which = draw(st.sampled_from(["Click", "ScrapeText", "ScrapeLink", "GoBack"]))
        if which == "GoBack":
            return ActionStmt("GoBack")
        return ActionStmt(which, target)
    if kind == "sel-loop":
        var = fresh_var(SEL_VAR)
        collection_type = draw(st.sampled_from([ChildrenOf, DescendantsOf]))
        collection = collection_type(
            Selector(None, draw(concrete_steps())), Predicate(draw(st.sampled_from(TAGS)))
        )
        body = tuple(
            draw(statement(depth + 1, var)) for _ in range(draw(st.integers(1, 2)))
        )
        return ForEachSelector(var, collection, body)
    if kind == "val-loop":
        var = fresh_var("val")
        collection = ValuePathsOf(ValuePath(None, ("rows",)))
        inner = ActionStmt(
            "EnterData",
            Selector(None, draw(concrete_steps())),
            value=ValuePath(var, ()),
        )
        return ForEachValue(var, collection, (inner,))
    # while loop
    body = (draw(statement(depth + 1)),)
    click = ActionStmt("Click", Selector(None, draw(concrete_steps())))
    return WhileLoop(body, click)


class TestLangProperties:
    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_pretty_parse_round_trip(self, program):
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert canonical_program(reparsed) == canonical_program(program)
        # printing is a fixpoint after one round
        assert format_program(reparsed) == printed

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_program_size_positive_and_stable(self, program):
        assert program_size(program) >= len(program.statements)
        assert program_size(program) == program_size(program)

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_canonical_form_is_alpha_invariant(self, program):
        # re-parsing allocates fresh variables everywhere: canonical forms
        # must still agree
        clone = parse_program(format_program(program))
        assert canonical_program(clone) == canonical_program(program)


class TestDataSourceProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.lists(st.text(alphabet="xyz", min_size=1, max_size=3), min_size=1, max_size=5),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_value_paths_all_resolve(self, payload):
        source = DataSource(payload)
        for key in payload:
            base = X.extend(key)
            paths = source.value_paths(base)
            assert len(paths) == len(payload[key])
            for index, path in enumerate(paths):
                assert source.resolve(path) == payload[key][index]
