"""Tests for the disjunctive-selector extension (beyond the paper).

§7.1 reports b6 unsolved because scraping rows of class ``match`` *or*
``match highlight`` needs disjunctive selector logic.  The extension adds
CSS-style whitespace-token predicates (``div[@class~='match']``), gated
behind ``SynthesisConfig.use_token_predicates``; with it on, the b6 shape
becomes synthesizable while the default configuration still fails —
preserving the paper's reported behaviour out of the box.
"""

import pytest

from repro.benchmarks.sites.match_list import MatchListSite
from repro.dom import E, page, parse_selector, raw_path, resolve
from repro.dom.xpath import Predicate, TokenPredicate
from repro.lang import EMPTY_DATA, scrape_text
from repro.semantics import actions_consistent
from repro.synth import (
    DEFAULT_CONFIG,
    Synthesizer,
    node_predicates,
    token_predicate_config,
)


class TestTokenPredicate:
    def test_matches_token_sets(self):
        pred = TokenPredicate("div", "class", "match")
        assert pred.matches(E("div", cls="match"))
        assert pred.matches(E("div", cls="match highlight"))
        assert not pred.matches(E("div", cls="mismatch"))
        assert not pred.matches(E("div", cls="ad"))
        assert not pred.matches(E("span", cls="match"))

    def test_parse_print_round_trip(self):
        text = "//div[@class~='match'][3]"
        selector = parse_selector(text)
        assert isinstance(selector.steps[0].pred, TokenPredicate)
        assert str(selector) == text

    def test_resolution_counts_matching_tokens_only(self):
        dom = page(
            E("div", cls="match"),
            E("div", cls="ad"),
            E("div", cls="match highlight"),
        )
        second = resolve(parse_selector("//div[@class~='match'][2]"), dom)
        assert second is not None
        assert second.attrs["class"] == "match highlight"

    def test_distinct_from_plain_predicate(self):
        # equal fields but different semantics must not collide in caches
        plain = Predicate("div", "class", "match")
        token = TokenPredicate("div", "class", "match")
        assert plain != token
        assert str(plain) != str(token)


class TestPredicateGeneration:
    def test_tokens_generated_only_with_flag(self):
        node = E("div", cls="match highlight")
        without = node_predicates(node)
        assert not any(isinstance(pred, TokenPredicate) for pred in without)
        with_flag = node_predicates(node, token_predicates=True)
        tokens = {
            pred.value for pred in with_flag if isinstance(pred, TokenPredicate)
        }
        assert tokens == {"match", "highlight"}

    def test_single_token_class_gets_one_token_predicate(self):
        node = E("div", cls="match")
        preds = node_predicates(node, token_predicates=True)
        tokens = [pred for pred in preds if isinstance(pred, TokenPredicate)]
        assert tokens == [TokenPredicate("div", "class", "match")]


def record_match_scrapes(count: int):
    """Scrape the teams line of the first ``count`` match rows (skipping
    the interleaved ads), exactly as a user would demonstrate b6."""
    site = MatchListSite(8, seed="ext")
    dom = site.page(site.initial_state())
    actions = []
    for position in range(1, count + 1):
        node = resolve(
            parse_selector(f"//div[@data-pos='{position}'][1]/span[1]"), dom
        )
        actions.append(scrape_text(raw_path(node)))
    snapshots = [dom] * (len(actions) + 1)
    return site, dom, actions, snapshots


class TestB6ShapeSynthesis:
    def test_default_config_cannot_generalize_past_ads(self):
        # rows 2 and 3: class "match" and "match highlight", with an ad
        # between them — no paper-DSL loop reading covers both
        site, dom, actions, snapshots = record_match_scrapes(3)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        expected = scrape_text(
            raw_path(resolve(parse_selector("//div[@data-pos='4'][1]/span[1]"), dom))
        )
        assert not any(
            actions_consistent(option, expected, dom) for option in result.predictions
        )

    def test_token_config_synthesizes_the_match_loop(self):
        site, dom, actions, snapshots = record_match_scrapes(3)
        result = Synthesizer(EMPTY_DATA, token_predicate_config()).synthesize(
            actions, snapshots
        )
        expected = scrape_text(
            raw_path(resolve(parse_selector("//div[@data-pos='4'][1]/span[1]"), dom))
        )
        assert result.predictions
        assert any(
            actions_consistent(option, expected, dom) for option in result.predictions
        )

    def test_token_program_scrapes_exactly_the_matches(self):
        from repro.browser import Browser
        from repro.browser.replayer import Replayer

        site, dom, actions, snapshots = record_match_scrapes(3)
        result = Synthesizer(EMPTY_DATA, token_predicate_config()).synthesize(
            actions, snapshots
        )
        # find a generalizing program that uses a token predicate
        program = result.best_program
        assert program is not None
        assert "~=" in str(program.statements[0].collection.pred) or any(
            "~=" in line for line in [str(program.statements[0])]
        )
        browser = Browser(MatchListSite(8, seed="ext"))
        outcome = Replayer(browser, raise_errors=False).run(program)
        assert outcome.error is None
        expected_teams = [site.match(i)["teams"] for i in range(1, 9)]
        assert outcome.outputs == expected_teams
