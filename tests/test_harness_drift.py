"""Tests for the drift-robustness harness (`repro.harness.drift`)."""

from __future__ import annotations

import pytest

from repro.browser import Browser, Replayer
from repro.harness.drift import (
    DRIFT_LEVELS,
    DriftedCardsSite,
    brittle_program,
    expected_outputs,
    render_drift,
    replay_plain,
    replay_repaired,
    run_drift_study,
    synthesized_program,
)
from repro.lang.ast import program_depth


class TestDriftSite:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown drift level"):
            DriftedCardsSite("tsunami")

    def test_clean_page_scrapes_expected(self):
        result = Replayer(Browser(DriftedCardsSite("clean"))).run(brittle_program())
        assert result.outputs == expected_outputs()

    def test_banner_shifts_raw_indices(self):
        clean = DriftedCardsSite("clean").page("clean")
        bannered = DriftedCardsSite("banner").page("banner")
        assert len(bannered.children[0].children) == len(clean.children[0].children) + 1

    def test_promo_prepends_sponsored_card(self):
        from repro.dom import parse_selector, resolve

        dom = DriftedCardsSite("promo").page("promo")
        first = resolve(parse_selector("//div[@class='card'][1]"), dom)
        assert first.get("data-sponsored") == "1"

    def test_renamed_kills_class_anchors(self):
        from repro.dom import parse_selector, resolve

        dom = DriftedCardsSite("renamed").page("renamed")
        assert resolve(parse_selector("//div[@class='card'][1]"), dom) is None
        assert resolve(parse_selector("//div[@class='x-card'][1]"), dom) is not None


class TestPrograms:
    def test_brittle_program_is_loop_free(self):
        program = brittle_program()
        assert program_depth(program) == 0
        assert len(program) == 2 * 5  # two scrapes per store

    def test_synthesized_program_has_a_loop(self):
        assert program_depth(synthesized_program()) == 1


class TestOutcomes:
    def test_plain_raw_fails_on_banner(self):
        assert replay_plain(brittle_program(), "banner").verdict == "failed"

    def test_repair_rescues_raw_on_banner(self):
        outcome = replay_repaired(brittle_program(), "banner")
        assert outcome.verdict == "ok"
        assert outcome.repairs > 0

    def test_synth_survives_banner_unrepaired(self):
        assert replay_plain(synthesized_program(), "banner").verdict == "ok"

    def test_promo_corrupts_plain_synth_replay(self):
        assert replay_plain(synthesized_program(), "promo").verdict == "wrong"

    def test_verify_repair_recovers_promo_data(self):
        outcome = replay_repaired(synthesized_program(), "promo")
        assert outcome.succeeded

    def test_render_mentions_every_level(self):
        text = render_drift(run_drift_study())
        for level in DRIFT_LEVELS:
            assert level in text
