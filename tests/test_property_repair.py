"""Property-based tests for selector repair (hypothesis).

The invariants that make repair trustworthy:

* similarity is bounded in [0, 1], with 1 exactly on self;
* on an *unchanged* page, repair is the identity — it re-finds the very
  node the selector already denotes;
* the best match is deterministic (same inputs, same node);
* repairing onto a clone of the reference page lands on the structural
  counterpart of the intended node.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.browser.repair import (
    best_match,
    fingerprint_node,
    repair_selector,
    similarity,
)
from repro.dom import E, raw_path, resolve

TAGS = ("div", "span", "li", "h3", "a", "p")
CLASSES = ("", "card", "row", "item", "meta")


@st.composite
def dom_trees(draw, max_depth=3):
    """Random small frozen pages (mirrors test_property_dom)."""

    def node(depth):
        tag = draw(st.sampled_from(TAGS))
        cls = draw(st.sampled_from(CLASSES))
        attrs = {"class": cls} if cls else {}
        children = []
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                children.append(node(depth + 1))
        text = draw(st.sampled_from(["", "x", "hello"]))
        return E(tag, attrs, *children, text=text)

    body = node(0)
    root = E("html", E("body", body))
    return root.freeze()


class TestSimilarityProperties:
    @given(dom_trees())
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_reflexive(self, root):
        for node in root.iter_subtree():
            fingerprint = fingerprint_node(node)
            for candidate in root.iter_subtree():
                score = similarity(fingerprint, candidate)
                assert 0.0 <= score <= 1.0 + 1e-9
            assert abs(similarity(fingerprint, node) - 1.0) < 1e-9

    @given(dom_trees())
    @settings(max_examples=50, deadline=None)
    def test_self_is_never_beaten(self, root):
        # no other node can score strictly above the fingerprinted one
        for node in root.iter_subtree():
            fingerprint = fingerprint_node(node)
            own = similarity(fingerprint, node)
            for candidate in root.iter_subtree():
                assert similarity(fingerprint, candidate) <= own + 1e-9


class TestRepairProperties:
    @given(dom_trees())
    @settings(max_examples=50, deadline=None)
    def test_identity_on_unchanged_page_up_to_twins(self, root):
        # On an unchanged page repair re-finds the intended node — or an
        # indistinguishable twin (same subtree, same local context),
        # which no fingerprint can separate.
        for node in root.iter_subtree():
            fingerprint = fingerprint_node(node)
            repair = repair_selector(raw_path(node), root, root, min_score=0.5)
            assert repair is not None
            landed = resolve(repair.replacement, root)
            assert landed.structural_key() == node.structural_key()
            assert similarity(fingerprint, landed) >= similarity(fingerprint, node) - 1e-9

    @given(dom_trees())
    @settings(max_examples=50, deadline=None)
    def test_clone_lands_on_counterpart(self, root):
        clone = root.clone().freeze()
        for node in root.iter_subtree():
            selector = raw_path(node)
            repair = repair_selector(selector, root, clone, min_score=0.5)
            assert repair is not None
            counterpart = resolve(selector, clone)
            landed = resolve(repair.replacement, clone)
            # the landing node is structurally identical to the intended
            # one (ties may pick an identical twin elsewhere on the page)
            assert landed.structural_key() == counterpart.structural_key()

    @given(dom_trees(), dom_trees())
    @settings(max_examples=50, deadline=None)
    def test_best_match_deterministic(self, reference, live):
        for node in list(reference.iter_subtree())[:5]:
            fingerprint = fingerprint_node(node)
            first = best_match(fingerprint, live, min_score=0.3)
            second = best_match(fingerprint, live, min_score=0.3)
            if first is None:
                assert second is None
            else:
                assert second is not None and first[0] is second[0]
