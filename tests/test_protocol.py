"""The interaction protocol (repro.protocol): wire format and session core.

Three layers of pinning:

* **golden wire fixtures** — one committed canonical encoding per
  message type; decode → re-encode must reproduce the committed bytes
  exactly (byte stability across ``PROTOCOL_VERSION``), and changing
  any of them is a deliberate wire change;
* **strictness** — unknown types, missing/unknown fields, nulls in
  required fields, and foreign versions are all rejected;
* **property round-trips** — hypothesis-generated random action traces
  survive encode → decode → encode byte-stably;
* **schema** — the committed ``schema.json`` equals the generated one
  (the same gate CI's protocol-compat step applies).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol import DEFAULT_CODEC, PROTOCOL_VERSION
from repro.protocol.codec import JsonCodec
from repro.protocol.messages import (
    Accept,
    Accepted,
    ActionRecorded,
    CallStats,
    Candidate,
    CandidateList,
    CloseSession,
    CreateSession,
    ErrorEnvelope,
    Migrated,
    MigrateSession,
    ProgramProposed,
    ProtocolError,
    Reject,
    Rejected,
    SessionClosed,
    SessionCreated,
    SessionSnapshot,
    SessionTotals,
    from_wire,
    message_types,
    to_wire,
)
from repro.protocol.schema import SCHEMA_PATH, render_schema
from repro.dom import DOMNode
from repro.dom.xpath import CHILD, DESC, ConcreteSelector, Predicate, Step
from repro.lang.actions import Action
from repro.lang.ast import ValuePath

from helpers import cards_page, scrape_cards_trace


#: One committed canonical encoding per message type.  Changing any of
#: these strings is a wire change: it must come with a PROTOCOL_VERSION
#: bump (breaking) or at least a regenerated schema.json (additive).
GOLDEN = {
    CreateSession: '{"data":{"zips":["48104"]},"snapshot":{"children":[{"children":[{"attrs":{"class":"card"},"children":[{"tag":"h3","text":"Store 1"}],"tag":"div"}],"tag":"body"}],"tag":"html"},"timeout":1.0,"type":"create_session","v":3}',
    SessionCreated: '{"session":"s1","type":"session_created","v":3}',
    ActionRecorded: '{"action":{"kind":"Click","selector":"//div[@class=\'card\'][1]/h3[1]"},"session":"s1","snapshot":{"children":[{"children":[{"attrs":{"class":"card"},"children":[{"tag":"h3","text":"Store 1"}],"tag":"div"}],"tag":"body"}],"tag":"html"},"type":"action_recorded","v":3}',
    ProgramProposed: '{"actions":2,"analysis":{"cost_max":1,"cost_min":1,"effect":"read-only","fragility":0,"safe_replay":true,"termination":"terminating"},"predictions":["Click(//div[@class=\'card\'][2]/h3[1])"],"programs":1,"session":"s1","stats":{"backend":"memory","cache_hits":3,"cache_misses":1,"cross_session_hits":0,"elapsed":0.25,"timed_out":false,"warm_start_hits":0},"type":"program_proposed","v":3}',
    CandidateList: '{"candidates":[{"analysis":{"cost_max":1,"cost_min":1,"effect":"read-only","fragility":0,"safe_replay":true,"termination":"terminating"},"index":0,"program":"ScrapeText(//h3[1])","statements":1}],"session":"s1","type":"candidate_list","v":3}',
    Accept: '{"index":0,"session":"s1","type":"accept","v":3}',
    Accepted: '{"index":0,"program":"ScrapeText(//h3[1])","session":"s1","type":"accepted","v":3}',
    Reject: '{"session":"s1","type":"reject","v":3}',
    Rejected: '{"rejections":1,"session":"s1","type":"rejected","v":3}',
    CloseSession: '{"session":"s1","type":"close_session","v":3}',
    SessionClosed: '{"session":"s1","stats":{"actions":2,"cache_hits":3,"cache_misses":1,"calls":2,"cross_session_hits":0,"elapsed":0.5,"rejections":1,"timed_out_calls":0,"warm_start_hits":0},"type":"session_closed","v":3}',
    MigrateSession: '{"session":"s1","target":null,"type":"migrate_session","v":3}',
    Migrated: '{"session":"s1","target":"http://127.0.0.1:8739","target_session":"s7","type":"migrated","v":3}',
    ErrorEnvelope: '{"code":"unknown_session","message":"unknown session \'s9\'","session":"s9","type":"error","v":3}',
    SessionSnapshot: '{"accepted_index":0,"actions":[{"kind":"Click","selector":"//div[@class=\'card\'][1]/h3[1]"},{"kind":"EnterData","path":["zips",1],"selector":"//input[@name=\'q\'][1]"}],"created":1700000000.0,"data":{"zips":["48104"]},"session":"s1","snapshots":{"pool":[{"children":[{"children":[{"attrs":{"class":"card"},"children":[{"tag":"h3","text":"Store 1"}],"tag":"div"}],"tag":"body"}],"tag":"html"}],"refs":[0,0,0]},"stats":{"actions":2,"cache_hits":0,"cache_misses":0,"calls":2,"cross_session_hits":0,"elapsed":0.5,"rejections":1,"timed_out_calls":0,"warm_start_hits":0},"timeout":1.0,"type":"session_snapshot","v":3}',
}


class TestGoldenFixtures:
    def test_every_message_type_has_a_golden(self):
        assert set(GOLDEN) == set(message_types())

    @pytest.mark.parametrize("cls", list(GOLDEN), ids=lambda c: c.__name__)
    def test_decode_encode_is_byte_stable(self, cls):
        golden = GOLDEN[cls].encode("utf-8")
        message = DEFAULT_CODEC.decode(golden)
        assert isinstance(message, cls)
        assert DEFAULT_CODEC.encode(message) == golden

    @pytest.mark.parametrize("cls", list(GOLDEN), ids=lambda c: c.__name__)
    def test_golden_carries_the_version_envelope(self, cls):
        wire = json.loads(GOLDEN[cls])
        assert wire["v"] == PROTOCOL_VERSION
        assert isinstance(wire["type"], str)


class TestStrictness:
    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            from_wire({"v": PROTOCOL_VERSION, "type": "nope"})

    def test_foreign_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            from_wire({"v": PROTOCOL_VERSION + 1, "type": "accept", "session": "s1", "index": 0})
        with pytest.raises(ProtocolError, match="version"):
            from_wire({"type": "accept", "session": "s1", "index": 0})

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing field"):
            from_wire({"v": PROTOCOL_VERSION, "type": "accept", "session": "s1"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown field"):
            from_wire(
                {"v": PROTOCOL_VERSION, "type": "accept", "session": "s1",
                 "index": 0, "extra": 1}
            )

    def test_null_in_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="must not be null"):
            from_wire(
                {"v": PROTOCOL_VERSION, "type": "accept", "session": None, "index": 0}
            )

    def test_wrong_scalar_type_rejected(self):
        with pytest.raises(ProtocolError, match="integer"):
            from_wire(
                {"v": PROTOCOL_VERSION, "type": "accept", "session": "s1",
                 "index": "zero"}
            )
        # booleans are not integers on this wire
        with pytest.raises(ProtocolError):
            from_wire(
                {"v": PROTOCOL_VERSION, "type": "accept", "session": "s1",
                 "index": True}
            )

    def test_non_message_value_rejected_by_encoder(self):
        with pytest.raises(ProtocolError, match="not a protocol message"):
            to_wire({"just": "a dict"})

    def test_codec_roundtrip_helper_returns_the_decoded_message(self):
        message = Accept(session="s1", index=2)
        assert DEFAULT_CODEC.roundtrip(message) == message


# ----------------------------------------------------------------------
# Property round-trips over random action traces
# ----------------------------------------------------------------------
_TAGS = ("div", "span", "li", "h3", "a")
_ATTRS = st.one_of(
    st.none(),
    st.fixed_dictionaries({"class": st.sampled_from(("card", "row", "x y", "phone"))}),
)


def _steps():
    return st.lists(
        st.builds(
            Step,
            st.sampled_from((CHILD, DESC)),
            st.one_of(
                # tag-only, or tag plus a full attr=value pair — the
                # two shapes the recorder's raw paths actually produce
                st.builds(Predicate, st.sampled_from(_TAGS)),
                st.builds(
                    Predicate,
                    st.sampled_from(_TAGS),
                    st.just("class"),
                    st.sampled_from(("card", "next", "a b")),
                ),
            ),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=4,
    ).map(lambda steps: ConcreteSelector(tuple(steps)))


def _actions():
    selectors = _steps()
    return st.one_of(
        st.builds(lambda s: Action("Click", s), selectors),
        st.builds(lambda s: Action("ScrapeText", s), selectors),
        st.builds(
            lambda s, t: Action("SendKeys", s, t),
            selectors,
            st.text(min_size=0, max_size=8),
        ),
        st.builds(
            lambda s, key, idx: Action(
                "EnterData", s, None, ValuePath(None, (key, idx))
            ),
            selectors,
            st.sampled_from(("zips", "q")),
            st.integers(min_value=1, max_value=9),
        ),
    )


def _doms():
    leaf = st.builds(
        DOMNode, st.sampled_from(_TAGS), _ATTRS, st.text(max_size=6)
    )
    return st.recursive(
        leaf,
        lambda children: st.builds(
            DOMNode,
            st.sampled_from(_TAGS),
            _ATTRS,
            st.just(""),
            st.lists(children, min_size=1, max_size=3),
        ),
        max_leaves=6,
    ).map(lambda dom: dom.freeze())


class TestPropertyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(session=st.from_regex(r"s[0-9]{1,4}", fullmatch=True), action=_actions(), dom=_doms())
    def test_action_recorded_roundtrips(self, session, action, dom):
        message = ActionRecorded(session=session, action=action, snapshot=dom)
        encoded = DEFAULT_CODEC.encode(message)
        decoded = DEFAULT_CODEC.decode(encoded)
        assert decoded.action == action
        assert DEFAULT_CODEC.encode(decoded) == encoded

    @settings(max_examples=25, deadline=None)
    @given(
        actions=st.lists(_actions(), min_size=0, max_size=5),
        dom=_doms(),
        rejections=st.integers(min_value=0, max_value=3),
        accepted=st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
    )
    def test_session_snapshot_roundtrips(self, actions, dom, rejections, accepted):
        snapshots = tuple([dom] * (len(actions) + 1)) if actions else (dom,)
        message = SessionSnapshot(
            session="s1",
            created=1700000000.5,
            timeout=None,
            data=None,
            actions=tuple(actions),
            snapshots=snapshots,
            accepted_index=accepted,
            stats=SessionTotals(calls=len(actions), rejections=rejections),
        )
        encoded = DEFAULT_CODEC.encode(message)
        decoded = DEFAULT_CODEC.decode(encoded)
        assert tuple(decoded.actions) == tuple(actions)
        assert len(decoded.snapshots) == len(snapshots)
        assert DEFAULT_CODEC.encode(decoded) == encoded

    def test_snapshot_pool_dedups_structurally_equal_objects(self):
        # the service path decodes every snapshot from its own request:
        # identical pages arrive as *distinct* objects and must still
        # pool once (content-key dedup, not object identity)
        import json as json_module

        from repro import io as repro_io

        first = cards_page(3)
        second = repro_io.dom_from_json(
            json_module.loads(json_module.dumps(repro_io.dom_to_json(first)))
        )
        assert first is not second
        message = SessionSnapshot(
            session="s1",
            created=0.0,
            timeout=None,
            data=None,
            actions=(),
            snapshots=(first,),
            accepted_index=None,
            stats=SessionTotals(),
        )
        from dataclasses import replace as dc_replace

        wire = to_wire(dc_replace(message, snapshots=(first, second)))
        assert len(wire["snapshots"]["pool"]) == 1
        assert wire["snapshots"]["refs"] == [0, 0]

    def test_snapshot_pool_dedups_repeated_pages(self):
        dom = cards_page(3)
        actions, snapshots = scrape_cards_trace(dom, 2)
        message = SessionSnapshot(
            session="s1",
            created=0.0,
            timeout=None,
            data=None,
            actions=tuple(actions),
            snapshots=tuple(snapshots),
            accepted_index=None,
            stats=SessionTotals(),
        )
        wire = to_wire(message)
        # scrapes do not mutate the page: one pooled snapshot, m+1 refs
        assert len(wire["snapshots"]["pool"]) == 1
        assert len(wire["snapshots"]["refs"]) == len(actions) + 1


class TestSchemaDocument:
    def test_committed_schema_matches_generated(self):
        assert SCHEMA_PATH.read_text() == render_schema(), (
            "the wire changed without regenerating src/repro/protocol/schema.json "
            "(run: PYTHONPATH=src python -m repro protocol-schema > src/repro/protocol/schema.json)"
        )

    def test_schema_names_every_message(self):
        document = json.loads(render_schema())
        assert document["protocol_version"] == PROTOCOL_VERSION
        assert document["codec"] == JsonCodec.name
        assert len(document["messages"]) == len(message_types())
