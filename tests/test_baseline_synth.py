"""Tests for the Split/Reroll/Unsplit baseline synthesizer (§7.4)."""

import pytest

from repro.baseline import substitute, synthesize_baseline, unroll
from repro.benchmarks import TABLE2_IDS, benchmark_by_id
from repro.benchmarks.sites.plain_lists import NestedListSite, PlainListSite
from repro.browser import record_ground_truth
from repro.browser.replayer import Replayer
from repro.dom import Predicate, parse_selector
from repro.lang import (
    ActionStmt,
    ChildrenOf,
    ForEachSelector,
    Selector,
    canonical_program,
    fresh_var,
    parse_program,
    selector_of,
)
from repro.lang.ast import SEL_VAR

FLAT_GT = parse_program(
    "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
    "  ScrapeText(i/span[1])\n  ScrapeText(i/b[1])"
)
NESTED_GT = parse_program(
    "foreach g in Children(/html[1]/body[1], div) do\n"
    "  foreach i in Children(g/ul[1], li) do\n    ScrapeText(i)"
)


def replays_like_ground_truth(benchmark_site_factory, program, expected_outputs):
    from repro.browser import Browser

    browser = Browser(benchmark_site_factory())
    result = Replayer(browser, raise_errors=False).run(program)
    return result.error is None and result.outputs == expected_outputs


class TestSubstituteAndUnroll:
    def test_substitute_action(self):
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt("ScrapeText", Selector(var, parse_selector("/span[1]").steps))
        binding = parse_selector("//li[2]")
        result = substitute(stmt, var, binding)
        assert str(result.target) == "//li[2]/span[1]"

    def test_substitute_ignores_other_vars(self):
        var, other = fresh_var(SEL_VAR), fresh_var(SEL_VAR)
        stmt = ActionStmt("ScrapeText", Selector(other, ()))
        assert substitute(stmt, var, parse_selector("//li[1]")) == stmt

    def test_substitute_nested_loop_base(self):
        outer, inner = fresh_var(SEL_VAR), fresh_var(SEL_VAR)
        loop = ForEachSelector(
            inner,
            ChildrenOf(Selector(outer, parse_selector("/ul[1]").steps), Predicate("li")),
            (ActionStmt("ScrapeText", Selector(inner, ())),),
        )
        result = substitute(loop, outer, parse_selector("/html[1]/body[1]/div[2]"))
        assert str(result.collection.base) == "/html[1]/body[1]/div[2]/ul[1]"

    def test_unroll_flat_loop(self):
        var = fresh_var(SEL_VAR)
        loop = ForEachSelector(
            var,
            ChildrenOf(selector_of(parse_selector("/html[1]/body[1]/ul[1]")), Predicate("li")),
            (ActionStmt("ScrapeText", Selector(var, ())),),
        )
        statements = unroll(loop, 3)
        assert [str(stmt.target) for stmt in statements] == [
            "/html[1]/body[1]/ul[1]/li[1]",
            "/html[1]/body[1]/ul[1]/li[2]",
            "/html[1]/body[1]/ul[1]/li[3]",
        ]


class TestBaselineSynthesis:
    def test_flat_list_rerolls(self):
        site = PlainListSite(6, fields=2)
        recording = record_ground_truth(site, FLAT_GT)
        result = synthesize_baseline(recording.actions, recording.snapshots)
        assert result.program is not None
        assert len(result.program.statements) == 1
        assert isinstance(result.program.statements[0], ForEachSelector)

    def test_flat_program_replays(self):
        site = PlainListSite(6, fields=2)
        recording = record_ground_truth(site, FLAT_GT)
        result = synthesize_baseline(recording.actions, recording.snapshots)
        assert replays_like_ground_truth(
            lambda: PlainListSite(6, fields=2), result.program, recording.outputs
        )

    def test_nested_list_rerolls_to_nested_loop(self):
        site = NestedListSite(3, 3)
        recording = record_ground_truth(site, NESTED_GT)
        result = synthesize_baseline(recording.actions, recording.snapshots)
        assert result.program is not None
        best = result.program.statements
        assert len(best) == 1
        outer = best[0]
        assert isinstance(outer, ForEachSelector)

    def test_non_loop_trace_stays_sequence(self):
        site = PlainListSite(4, fields=2)
        recording = record_ground_truth(site, FLAT_GT)
        # take a non-repetitive prefix: a single scrape
        result = synthesize_baseline(recording.actions[:1], recording.snapshots[:2])
        assert result.program is not None
        assert len(result.program.statements) == 1
        assert isinstance(result.program.statements[0], ActionStmt)

    def test_empty_trace(self):
        result = synthesize_baseline([], [])
        assert result.program is not None
        assert result.program.statements == ()

    def test_timeout_reported(self):
        benchmark = benchmark_by_id("b56")
        recording = benchmark.record()
        result = synthesize_baseline(
            recording.actions, recording.snapshots, timeout=0.05
        )
        assert result.timed_out
        assert result.program is None

    def test_deterministic(self):
        site = PlainListSite(5, fields=1)
        gt = parse_program(
            "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n  ScrapeText(i/span[1])"
        )
        recording = record_ground_truth(site, gt)
        first = synthesize_baseline(recording.actions, recording.snapshots)
        second = synthesize_baseline(recording.actions, recording.snapshots)
        assert canonical_program(first.program) == canonical_program(second.program)


class TestBaselineScalingShape:
    """The Table 2 claim: cost explodes with nesting depth."""

    def test_nested_costs_more_than_flat(self):
        flat_site = PlainListSite(8, fields=2)  # 16 actions
        flat_rec = record_ground_truth(flat_site, FLAT_GT)
        flat = synthesize_baseline(flat_rec.actions, flat_rec.snapshots, timeout=30)

        nested_site = NestedListSite(4, 4)  # 16 actions
        nested_rec = record_ground_truth(nested_site, NESTED_GT)
        nested = synthesize_baseline(nested_rec.actions, nested_rec.snapshots, timeout=30)

        assert flat.program is not None and nested.program is not None
        # same trace length, substantially more work for the nested shape
        assert nested.item_lists > flat.item_lists
        assert nested.elapsed > flat.elapsed
