"""Session export/import (worker migration) round trips.

The acceptance bar: a session exported from one worker and imported
into another — including across a *process* boundary, with nothing
shared but the wire bytes — produces byte-identical candidate lists for
the remainder of the demonstration.
"""

import multiprocessing
from dataclasses import replace

import pytest

from repro.engine.cache import reset_process_cache
from repro.lang.data import DataSource
from repro.protocol import DEFAULT_CODEC
from repro.protocol.messages import SessionSnapshot
from repro.protocol.session import Session, SessionClosedError, SessionError
from repro.synth.config import DEFAULT_CONFIG
from repro.service.sessions import SessionManager

from helpers import cards_page, scrape_cards_trace


def memory_manager(**kwargs):
    config = replace(DEFAULT_CONFIG, cache_backend="memory")
    return SessionManager(config, timeout=10.0, **kwargs)


def programs(manager, sid):
    return tuple(item.program for item in manager.candidates(sid).candidates)


def _drive_remainder(manager, sid, actions, snapshots, cut):
    """Feed actions[cut:] and collect the per-call candidate lists."""
    per_call = []
    for position in range(cut, len(actions)):
        manager.record_action(sid, actions[position], snapshots[position + 1])
        per_call.append(programs(manager, sid))
    return per_call


class TestManagerRoundTrip:
    def test_imported_session_continues_byte_identically(self):
        reset_process_cache()
        try:
            dom = cards_page(6)
            actions, snapshots = scrape_cards_trace(dom, 5)
            cut = 4
            source = memory_manager()
            sid = source.create(snapshots[0], data=DataSource({"q": ["a"]}))
            for position in range(cut):
                source.record_action(sid, actions[position], snapshots[position + 1])
            reference_now = programs(source, sid)

            # the snapshot crosses the wire as bytes, like between hosts
            wire = DEFAULT_CODEC.encode(source.export_snapshot(sid))
            target = memory_manager()
            snapshot = DEFAULT_CODEC.decode(wire)
            assert isinstance(snapshot, SessionSnapshot)
            new_sid = target.import_snapshot(snapshot).session

            # the replayed session already proposes the same candidates
            assert programs(target, new_sid) == reference_now
            # the source keeps serving its *other* path: a fresh session
            # driven straight through, never migrated
            control = memory_manager()
            control_sid = control.create(snapshots[0], data=DataSource({"q": ["a"]}))
            for position in range(cut):
                control.record_action(
                    control_sid, actions[position], snapshots[position + 1]
                )
            # ... and the remainder of the trace matches call by call
            migrated_calls = _drive_remainder(target, new_sid, actions, snapshots, cut)
            control_calls = _drive_remainder(
                control, control_sid, actions, snapshots, cut
            )
            assert migrated_calls == control_calls
            # imported stats continue from the exported totals
            closed = target.close(new_sid)
            assert closed.stats.calls >= cut + (len(actions) - cut)
        finally:
            reset_process_cache()

    def test_migrated_session_stops_serving_at_the_source(self):
        reset_process_cache()
        try:
            manager = memory_manager()
            sid = manager.create(cards_page(3))
            manager.export_snapshot(sid)
            with pytest.raises(SessionClosedError, match="migrated"):
                manager.candidates(sid)
            assert manager.stats()["sessions"] == 0
        finally:
            reset_process_cache()

    def test_in_flight_migration_blocks_recording_until_aborted(self):
        # the push-migrate race: once the snapshot is taken, a racing
        # record_action must 409 (never land in the doomed local copy);
        # an aborted push puts the session back into service untouched
        reset_process_cache()
        try:
            dom = cards_page(3)
            actions, snapshots = scrape_cards_trace(dom, 2)
            manager = memory_manager()
            sid = manager.create(snapshots[0])
            session, snapshot = manager.begin_migration(sid)
            with pytest.raises(SessionClosedError, match="migrated"):
                manager.record_action(sid, actions[0], snapshots[1])
            manager.abort_migration(session)
            proposed = manager.record_action(sid, actions[0], snapshots[1])
            assert proposed.actions == 1
            # commit after a successful push tears it down for good
            session, _ = manager.begin_migration(sid)
            manager.commit_migration(session)
            with pytest.raises(SessionClosedError, match="migrated"):
                manager.candidates(sid)
        finally:
            reset_process_cache()

    def test_export_without_evict_keeps_serving(self):
        reset_process_cache()
        try:
            manager = memory_manager()
            sid = manager.create(cards_page(3))
            snapshot = manager.export_snapshot(sid, evict=False)
            assert snapshot.session == sid
            assert manager.candidates(sid).candidates == ()
        finally:
            reset_process_cache()

    def test_empty_session_migrates(self):
        reset_process_cache()
        try:
            source = memory_manager()
            sid = source.create(cards_page(2))
            target = memory_manager()
            new_sid = target.import_snapshot(source.export_snapshot(sid)).session
            assert programs(target, new_sid) == ()
            dom = cards_page(2)
            actions, snapshots = scrape_cards_trace(dom, 1)
            target.record_action(new_sid, actions[0], snapshots[1])
        finally:
            reset_process_cache()


class TestSessionCore:
    def test_malformed_snapshot_rejected(self):
        dom = cards_page(2)
        actions, snapshots = scrape_cards_trace(dom, 1)
        bad = SessionSnapshot(
            session="s1",
            created=0.0,
            timeout=None,
            data=None,
            actions=tuple(actions),
            snapshots=(snapshots[0],),  # m actions need m+1 snapshots
            accepted_index=None,
            stats=None,
        )
        # build with stats=None is fine at the dataclass level; the
        # session core validates the trace shape before touching it
        with pytest.raises(SessionError, match="m\\+1"):
            Session.from_snapshot(bad, "s1")

    def test_falsy_but_meaningful_data_sources_survive_export(self):
        # [] / "" / 0 are valid JSON data sources; only the empty-dict
        # default may collapse to null on the wire
        for value, expected in (([], []), ("", ""), (0, 0), ({}, None)):
            session = Session("s1", DataSource(value))
            try:
                assert session.export_snapshot().data == expected, value
            finally:
                session.close()

    def test_accepted_index_and_rejections_survive(self):
        reset_process_cache()
        try:
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 4)
            source = memory_manager()
            sid = source.create(snapshots[0])
            for position, action in enumerate(actions):
                source.record_action(sid, action, snapshots[position + 1])
            source.reject(sid)
            source.accept(sid, 0)
            snapshot = source.export_snapshot(sid)
            assert snapshot.accepted_index == 0
            assert snapshot.stats.rejections == 1
            target = memory_manager()
            new_sid = target.import_snapshot(snapshot).session
            closed = target.close(new_sid)
            assert closed.stats.rejections == 1
        finally:
            reset_process_cache()


# ----------------------------------------------------------------------
# Cross-process: nothing shared but the wire bytes
# ----------------------------------------------------------------------
def _import_and_continue(wire, actions_wire, snapshots_wire, cut, pipe):
    """Child-process entry: fresh caches, import, continue, report."""
    from repro import io as repro_io
    from repro.engine.cache import reset_process_cache as reset
    from repro.service.backends import reset_backends

    reset()
    reset_backends()
    try:
        actions = [repro_io.action_from_json(item) for item in actions_wire]
        snapshots = [repro_io.dom_from_json(item) for item in snapshots_wire]
        manager = memory_manager()
        sid = manager.import_snapshot(DEFAULT_CODEC.decode(wire)).session
        per_call = _drive_remainder(manager, sid, actions, snapshots, cut)
        pipe.send(per_call)
    finally:
        pipe.close()


class TestCrossProcess:
    def test_import_in_a_fresh_process_is_byte_identical(self):
        reset_process_cache()
        try:
            from repro import io as repro_io

            dom = cards_page(6)
            actions, snapshots = scrape_cards_trace(dom, 5)
            cut = 4
            source = memory_manager()
            sid = source.create(snapshots[0])
            for position in range(cut):
                source.record_action(sid, actions[position], snapshots[position + 1])
            wire = DEFAULT_CODEC.encode(source.export_snapshot(sid, evict=False))
            # the source worker keeps going — its remaining calls are
            # the reference the migrated copy must reproduce
            reference = _drive_remainder(source, sid, actions, snapshots, cut)

            context = multiprocessing.get_context("fork")
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_import_and_continue,
                args=(
                    wire,
                    [repro_io.action_to_json(action) for action in actions],
                    [repro_io.dom_to_json(snapshot) for snapshot in snapshots],
                    cut,
                    child_end,
                ),
            )
            process.start()
            child_end.close()
            try:
                migrated = parent_end.recv()
            finally:
                process.join()
            assert process.exitcode == 0
            assert migrated == reference
        finally:
            reset_process_cache()
