"""Unit tests for the per-snapshot DOM indexes (repro.engine.index)."""

import threading

import pytest

from repro.dom import E, page, parse_selector, raw_path, resolve
from repro.dom.xpath import (
    CHILD,
    DESC,
    EPSILON,
    Predicate,
    Step,
    TokenPredicate,
    index_among_children,
    index_among_descendants,
    predicate_family,
    valid,
)
from repro.engine.index import (
    UNSUPPORTED,
    SnapshotIndex,
    index_for,
    set_dom_indexes,
    track_builds,
)
from repro.synth.alternatives import node_predicates

from helpers import cards_page, node_at


@pytest.fixture
def dom():
    return cards_page(4)


class TestIndexLifecycle:
    def test_frozen_snapshot_gets_an_index(self, dom):
        index = index_for(dom)
        assert index is not None
        assert index_for(dom) is index  # built once, cached on the root

    def test_unfrozen_snapshot_is_never_indexed(self):
        assert index_for(E("div")) is None

    def test_disable_flag_bypasses_indexes(self, dom):
        previous = set_dom_indexes(False)
        try:
            assert index_for(dom) is None
        finally:
            set_dom_indexes(previous)


class TestNth:
    def test_matches_linear_scan_for_tag_predicates(self, dom):
        index = index_for(dom)
        pred = Predicate("div")
        linear = [n for n in dom.iter_subtree() if pred.matches(n)]
        for position, expected in enumerate(linear, start=1):
            assert index.nth(pred, position, None) is expected
        assert index.nth(pred, len(linear) + 1, None) is None

    def test_anchored_lookup_excludes_other_subtrees(self, dom):
        index = index_for(dom)
        card2 = node_at(dom, "//div[@class='card'][2]")
        h3 = index.nth(Predicate("h3"), 1, card2)
        assert h3 is card2.children[0]
        assert index.nth(Predicate("h3"), 2, card2) is None

    def test_attribute_and_token_buckets(self, dom):
        index = index_for(dom)
        attr = Predicate("div", "class", "phone")
        assert index.nth(attr, 1, None).text == "555-0101"
        token = TokenPredicate("div", "class", "card")
        assert index.nth(token, 3, None) is node_at(dom, "//div[@class='card'][3]")

    def test_unindexed_attribute_is_unsupported(self, dom):
        index = index_for(dom)
        assert index.nth(Predicate("div", "data-x", "1"), 1, None) is UNSUPPORTED

    def test_falsy_attribute_values_fall_back_to_linear(self):
        # empty values are not bucketed (and value=None matches *absent*
        # attributes), so such predicates must take the linear path
        snapshot = page(E("div", {"class": ""}, text="bare"))
        index = index_for(snapshot)
        assert index.nth(Predicate("div", "class", ""), 1, None) is UNSUPPORTED
        assert index.nth(Predicate("div", "class", None), 1, None) is UNSUPPORTED
        node = resolve(parse_selector("//div[@class=''][1]"), snapshot)
        assert node is not None and node.text == "bare"

    def test_absent_bucket_means_no_match(self, dom):
        # 'table' is indexed (tag family) but absent: a definitive miss
        assert index_for(dom).nth(Predicate("table"), 1, None) is None


class TestRank:
    def test_agrees_with_linear_index_among_descendants(self, dom):
        set_dom_indexes(False)
        try:
            expectations = []
            for pred in (Predicate("div"), Predicate("div", "class", "card")):
                for node in dom.iter_subtree():
                    if pred.matches(node):
                        expectations.append(
                            (pred, node, index_among_descendants(None, node, pred, dom))
                        )
        finally:
            set_dom_indexes(True)
        index = index_for(dom)
        for pred, node, expected in expectations:
            assert index.rank(pred, node, None) == expected

    def test_rank_outside_anchor_subtree_is_none(self, dom):
        index = index_for(dom)
        card1 = node_at(dom, "//div[@class='card'][1]")
        h3_of_card2 = node_at(dom, "//div[@class='card'][2]/h3[1]")
        assert index.rank(Predicate("h3"), h3_of_card2, card1) is None


class TestResolutionEquivalence:
    def test_descendant_steps_resolve_identically(self, dom):
        selectors = [
            "//div[@class='card'][2]/h3[1]",
            "//h3[3]",
            "//div[@class='sidebar'][1]",
            "//div[@class='card'][2]//div[@class='phone'][1]",
            "//span[1]",  # no match either way
        ]
        for text in selectors:
            selector = parse_selector(text)
            fresh = cards_page(4)  # indexed resolution
            previous = set_dom_indexes(False)
            try:
                plain = cards_page(4)
                linear = resolve(selector, plain)
            finally:
                set_dom_indexes(previous)
            indexed = resolve(selector, fresh)
            if linear is None:
                assert indexed is None
            else:
                assert raw_path(indexed) == raw_path(linear)

    def test_valid_uses_the_index(self, dom):
        assert valid(parse_selector("//div[@class='phone'][4]"), dom)
        assert not valid(parse_selector("//div[@class='phone'][5]"), dom)


class TestBucketEnumeration:
    def test_raw_path_of_matches_raw_path(self, dom):
        index = index_for(dom)
        for node in dom.iter_subtree():
            assert index.raw_path_of(node) == raw_path(node)
        # memoized: the same object comes back
        some = node_at(dom, "//div[@class='card'][2]")
        assert index.raw_path_of(some) is index.raw_path_of(some)

    def test_raw_steps_between_is_the_child_chain(self, dom):
        index = index_for(dom)
        card = node_at(dom, "//div[@class='card'][3]")
        h3 = card.children[0]
        steps = index.raw_steps_between(card, h3)
        assert steps == (Step(CHILD, Predicate("h3"), 1),)
        assert index.raw_steps_between(dom, h3) == raw_path(h3).steps[1:]
        assert index.raw_steps_between(card, card) == ()

    def test_predicates_of_matches_node_predicates(self, dom):
        index = index_for(dom)
        for node in dom.iter_subtree():
            for token in (False, True):
                assert index.predicates_of(node, True, token) == node_predicates(
                    node, True, token
                )
            assert index.predicates_of(node, False, False) == node_predicates(
                node, False
            )

    def test_child_rank_matches_index_among_children(self, dom):
        index = index_for(dom)
        for node in dom.iter_subtree():
            for pred in predicate_family(node, token_predicates=True):
                assert index.child_rank(node, pred) == index_among_children(node, pred)
        # non-matching predicate: no rank
        card = node_at(dom, "//div[@class='card'][1]")
        assert index.child_rank(card, Predicate("span")) is None

    def test_element_plan_replays_the_legacy_walk(self, dom):
        index = index_for(dom)
        for element in dom.iter_subtree():
            for use_alternatives in (True, False):
                expected = []
                preds = node_predicates(element, use_alternatives)
                parent_prefix = (
                    raw_path(element.parent) if element.parent else EPSILON
                )
                for pred in preds:
                    child_index = index_among_children(element, pred)
                    if child_index is not None:
                        expected.append((parent_prefix, CHILD, pred, child_index))
                if use_alternatives:
                    anchors = [None]
                    if element.parent is not None:
                        anchors.append(element.parent)
                    for anchor in anchors:
                        prefix = EPSILON if anchor is None else raw_path(anchor)
                        for pred in preds:
                            desc_index = index_among_descendants(
                                anchor, element, pred, dom
                            )
                            if desc_index is not None:
                                expected.append((prefix, DESC, pred, desc_index))
                plan = index.element_plan(element, use_alternatives, False)
                assert list(plan) == expected

    def test_contains(self, dom):
        index = index_for(dom)
        assert index.contains(dom)
        assert index.contains(node_at(dom, "//h3[2]"))
        assert not index.contains(cards_page(2))


class TestBuildTracking:
    def test_scope_counts_only_builds_inside_it(self):
        before = cards_page(2)
        index_for(before)  # built outside any scope
        with track_builds() as tracker:
            index_for(cards_page(2))
            index_for(cards_page(3))
            inside = tracker.count
        index_for(cards_page(4))  # after the scope: not counted
        assert inside == tracker.count == 2

    def test_scopes_nest(self):
        with track_builds() as outer:
            index_for(cards_page(2))
            with track_builds() as inner:
                index_for(cards_page(3))
            assert inner.count == 1
        assert outer.count == 2

    def test_scopes_are_thread_local(self):
        # another thread building indexes concurrently must not leak
        # into this thread's scope (the two-synthesizer interleaving bug)
        entered = threading.Event()
        done = threading.Event()
        counts = {}

        def other() -> None:
            entered.wait(5)
            with track_builds() as theirs:
                for size in (2, 3, 4):
                    index_for(cards_page(size))
                counts["other"] = theirs.count
            done.set()

        thread = threading.Thread(target=other)
        thread.start()
        with track_builds() as mine:
            index_for(cards_page(5))
            entered.set()  # let the other thread build inside our scope
            done.wait(5)
        thread.join(5)
        assert mine.count == 1
        assert counts["other"] == 3
