"""Unit tests for the per-snapshot DOM indexes (repro.engine.index)."""

import pytest

from repro.dom import E, page, parse_selector, raw_path, resolve
from repro.dom.xpath import (
    DESC,
    Predicate,
    Step,
    TokenPredicate,
    index_among_descendants,
    valid,
)
from repro.engine.index import (
    UNSUPPORTED,
    SnapshotIndex,
    index_for,
    set_dom_indexes,
)

from helpers import cards_page, node_at


@pytest.fixture
def dom():
    return cards_page(4)


class TestIndexLifecycle:
    def test_frozen_snapshot_gets_an_index(self, dom):
        index = index_for(dom)
        assert index is not None
        assert index_for(dom) is index  # built once, cached on the root

    def test_unfrozen_snapshot_is_never_indexed(self):
        assert index_for(E("div")) is None

    def test_disable_flag_bypasses_indexes(self, dom):
        previous = set_dom_indexes(False)
        try:
            assert index_for(dom) is None
        finally:
            set_dom_indexes(previous)


class TestNth:
    def test_matches_linear_scan_for_tag_predicates(self, dom):
        index = index_for(dom)
        pred = Predicate("div")
        linear = [n for n in dom.iter_subtree() if pred.matches(n)]
        for position, expected in enumerate(linear, start=1):
            assert index.nth(pred, position, None) is expected
        assert index.nth(pred, len(linear) + 1, None) is None

    def test_anchored_lookup_excludes_other_subtrees(self, dom):
        index = index_for(dom)
        card2 = node_at(dom, "//div[@class='card'][2]")
        h3 = index.nth(Predicate("h3"), 1, card2)
        assert h3 is card2.children[0]
        assert index.nth(Predicate("h3"), 2, card2) is None

    def test_attribute_and_token_buckets(self, dom):
        index = index_for(dom)
        attr = Predicate("div", "class", "phone")
        assert index.nth(attr, 1, None).text == "555-0101"
        token = TokenPredicate("div", "class", "card")
        assert index.nth(token, 3, None) is node_at(dom, "//div[@class='card'][3]")

    def test_unindexed_attribute_is_unsupported(self, dom):
        index = index_for(dom)
        assert index.nth(Predicate("div", "data-x", "1"), 1, None) is UNSUPPORTED

    def test_falsy_attribute_values_fall_back_to_linear(self):
        # empty values are not bucketed (and value=None matches *absent*
        # attributes), so such predicates must take the linear path
        snapshot = page(E("div", {"class": ""}, text="bare"))
        index = index_for(snapshot)
        assert index.nth(Predicate("div", "class", ""), 1, None) is UNSUPPORTED
        assert index.nth(Predicate("div", "class", None), 1, None) is UNSUPPORTED
        node = resolve(parse_selector("//div[@class=''][1]"), snapshot)
        assert node is not None and node.text == "bare"

    def test_absent_bucket_means_no_match(self, dom):
        # 'table' is indexed (tag family) but absent: a definitive miss
        assert index_for(dom).nth(Predicate("table"), 1, None) is None


class TestRank:
    def test_agrees_with_linear_index_among_descendants(self, dom):
        set_dom_indexes(False)
        try:
            expectations = []
            for pred in (Predicate("div"), Predicate("div", "class", "card")):
                for node in dom.iter_subtree():
                    if pred.matches(node):
                        expectations.append(
                            (pred, node, index_among_descendants(None, node, pred, dom))
                        )
        finally:
            set_dom_indexes(True)
        index = index_for(dom)
        for pred, node, expected in expectations:
            assert index.rank(pred, node, None) == expected

    def test_rank_outside_anchor_subtree_is_none(self, dom):
        index = index_for(dom)
        card1 = node_at(dom, "//div[@class='card'][1]")
        h3_of_card2 = node_at(dom, "//div[@class='card'][2]/h3[1]")
        assert index.rank(Predicate("h3"), h3_of_card2, card1) is None


class TestResolutionEquivalence:
    def test_descendant_steps_resolve_identically(self, dom):
        selectors = [
            "//div[@class='card'][2]/h3[1]",
            "//h3[3]",
            "//div[@class='sidebar'][1]",
            "//div[@class='card'][2]//div[@class='phone'][1]",
            "//span[1]",  # no match either way
        ]
        for text in selectors:
            selector = parse_selector(text)
            fresh = cards_page(4)  # indexed resolution
            previous = set_dom_indexes(False)
            try:
                plain = cards_page(4)
                linear = resolve(selector, plain)
            finally:
                set_dom_indexes(previous)
            indexed = resolve(selector, fresh)
            if linear is None:
                assert indexed is None
            else:
                assert raw_path(indexed) == raw_path(linear)

    def test_valid_uses_the_index(self, dom):
        assert valid(parse_selector("//div[@class='phone'][4]"), dom)
        assert not valid(parse_selector("//div[@class='phone'][5]"), dom)
