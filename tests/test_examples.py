"""Integration: every example script runs end-to-end and says what it should.

The examples double as documentation; if one stops working the README's
promises are broken, so each is executed as a subprocess (the way a
user would run it) and checked for its key output marker.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script name → a line fragment its output must contain.
MARKERS = {
    "quickstart.py": "Scraped dataset",
    "store_scraper.py": "P4",
    "unicorn_names.py": "unicorn",
    "custom_site.py": "Program in effect",
    "baseline_comparison.py": "WebRobot",
    "numbered_pagination.py": "paginate",
    "export_codegen.py": "imacros script",
    "drift_repair.py": "Unrepairable page correctly refused",
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


def test_every_example_has_a_marker():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(MARKERS), "examples/ and MARKERS out of sync"


@pytest.mark.parametrize("name", sorted(MARKERS))
def test_example_runs(name):
    output = run_example(name)
    assert MARKERS[name].lower() in output.lower(), (
        f"{name} ran but its output lacks {MARKERS[name]!r}"
    )
