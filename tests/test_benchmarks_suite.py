"""Tests for the 76-benchmark suite: statistics, recordings, ground truths."""

import pytest

from repro.benchmarks import (
    ENTRY,
    EXTRACTION,
    NAVIGATION,
    PAGINATION,
    TABLE2_IDS,
    Benchmark,
    ScriptedDemo,
    all_benchmarks,
    benchmark_by_id,
)
from repro.lang import ActionStmt, ForEachValue, Program, WhileLoop
from repro.lang.ast import ForEachSelector


class TestSuiteStatistics:
    """The paper's §7 'Statistics of benchmarks', asserted exactly."""

    def setup_method(self):
        self.suite = all_benchmarks()

    def test_seventy_six_benchmarks(self):
        assert len(self.suite) == 76

    def test_ids_sequential(self):
        assert [b.bid for b in self.suite] == [f"b{i}" for i in range(1, 77)]

    def test_all_involve_extraction(self):
        assert all(EXTRACTION in b.features for b in self.suite)

    def test_29_involve_entry(self):
        assert sum(ENTRY in b.features for b in self.suite) == 29

    def test_60_involve_navigation(self):
        assert sum(NAVIGATION in b.features for b in self.suite) == 60

    def test_33_involve_pagination(self):
        assert sum(PAGINATION in b.features for b in self.suite) == 33

    def test_28_involve_entry_extraction_navigation(self):
        triple = {ENTRY, EXTRACTION, NAVIGATION}
        assert sum(triple <= b.features for b in self.suite) == 28

    def test_unsupported_cases_present(self):
        unsupported = [b.bid for b in self.suite if not b.expected_supported]
        assert unsupported == ["b6", "b9", "b10"]

    def test_table2_ids_exist_and_are_plain(self):
        for bid in TABLE2_IDS:
            assert benchmark_by_id(bid).family == "plain"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            benchmark_by_id("b99")


class TestGroundTruthShapes:
    def test_pagination_ground_truths_use_while_loops(self):
        for benchmark in all_benchmarks():
            if PAGINATION in benchmark.features and benchmark.expected_supported:
                program = benchmark.ground_truth
                assert isinstance(program, Program)
                has_while = any(
                    isinstance(stmt, WhileLoop) for stmt in program.statements
                ) or any(
                    isinstance(inner, WhileLoop)
                    for stmt in program.statements
                    if isinstance(stmt, (ForEachValue, ForEachSelector))
                    for inner in stmt.body
                )
                assert has_while, f"{benchmark.bid} should paginate with while"

    def test_entry_ground_truths_use_value_loops(self):
        for benchmark in all_benchmarks():
            if ENTRY in benchmark.features:
                program = benchmark.ground_truth
                assert isinstance(program, Program)
                assert any(
                    isinstance(stmt, ForEachValue) for stmt in program.statements
                ), f"{benchmark.bid} should iterate the data source"

    def test_unsupported_use_scripted_demos(self):
        for benchmark in all_benchmarks():
            if not benchmark.expected_supported:
                assert isinstance(benchmark.ground_truth, ScriptedDemo)

    def test_table2_ground_truths_are_selector_loops_only(self):
        def only_selector_loops(statements):
            for stmt in statements:
                if isinstance(stmt, ForEachSelector):
                    if not only_selector_loops(stmt.body):
                        return False
                elif isinstance(stmt, ActionStmt):
                    if stmt.kind in ("EnterData",):
                        return False
                else:
                    return False
            return True

        for bid in TABLE2_IDS:
            program = benchmark_by_id(bid).ground_truth
            assert only_selector_loops(program.statements), bid


class TestRecordings:
    def test_every_benchmark_records(self):
        for benchmark in all_benchmarks():
            recording = benchmark.record()
            assert recording.length >= 4, benchmark.bid
            assert len(recording.snapshots) == recording.length + 1
            assert recording.outputs, benchmark.bid

    def test_recording_cached(self):
        benchmark = benchmark_by_id("b73")
        assert benchmark.record() is benchmark.record()

    def test_recordings_deterministic(self):
        benchmark = benchmark_by_id("b73")
        first = benchmark._record(benchmark.make_site, 500)
        second = benchmark._record(benchmark.make_site, 500)
        assert [str(a) for a in first.actions] == [str(a) for a in second.actions]
        assert first.outputs == second.outputs

    def test_paper_cap_of_500_actions(self):
        for benchmark in all_benchmarks():
            recording = benchmark.record()
            assert recording.length <= 500

    def test_truncated_flag_set_for_long_tasks(self):
        recording = benchmark_by_id("b21").record()  # 100 zips: way over cap
        assert recording.truncated and recording.length == 500


class TestFamilyOutputs:
    """Recordings agree with the sites' own expected-content oracles."""

    def test_store_fixed_outputs(self):
        benchmark = benchmark_by_id("b33")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields("48104", ("name", "phone"))

    def test_plain_list_outputs(self):
        benchmark = benchmark_by_id("b73")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields()

    def test_nested_list_outputs(self):
        benchmark = benchmark_by_id("b12")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields()

    def test_triple_list_outputs(self):
        benchmark = benchmark_by_id("b56")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields()

    def test_forum_outputs(self):
        benchmark = benchmark_by_id("b19")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields(("title", "replies"))

    def test_job_next_outputs(self):
        benchmark = benchmark_by_id("b38")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields(
            ("title", "company", "experience")
        )

    def test_catalog_outputs(self):
        benchmark = benchmark_by_id("b44")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields(("price", "stock", "sku"))

    def test_sectioned_outputs(self):
        benchmark = benchmark_by_id("b52")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields(("what", "when"))

    def test_wiki_outputs(self):
        benchmark = benchmark_by_id("b11")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields(
            ("name", "capital", "population")
        )

    def test_numbered_job_outputs(self):
        benchmark = benchmark_by_id("b9")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields(("title", "company"))

    def test_match_outputs(self):
        benchmark = benchmark_by_id("b6")
        recording = benchmark.record()
        site = benchmark.make_site()
        assert recording.outputs == site.expected_fields(("score", "star"))

    def test_unicorn_outputs(self):
        benchmark = benchmark_by_id("b57")
        recording = benchmark.record()
        site = benchmark.make_site()
        customers = benchmark.data.value["customers"]
        expected = site.expected_names(customers)
        # truncation-aware comparison
        assert recording.outputs == expected[: len(recording.outputs)]
        assert recording.outputs

    def test_calculator_outputs(self):
        benchmark = benchmark_by_id("b55")
        recording = benchmark.record()
        site = benchmark.make_site()
        values = benchmark.data.value["miles"]
        assert recording.outputs == site.expected_results(values)[: len(recording.outputs)]

    def test_search_outputs(self):
        benchmark = benchmark_by_id("b69")
        recording = benchmark.record()
        site = benchmark.make_site()
        keywords = benchmark.data.value["keywords"]
        expected = site.expected_fields(keywords, ("name", "street", "rating"))
        assert recording.outputs == expected[: len(recording.outputs)]

    def test_news_click_outputs(self):
        benchmark = benchmark_by_id("b1")
        recording = benchmark.record()
        site = benchmark.make_site()
        expected = [site.body_text(i) for i in range(1, site.articles + 1)]
        assert recording.outputs == expected
