"""Property-based tests for the exporters over random programs.

Every well-formed program must export to *syntactically valid* output
on all three targets — the generators may never emit code that breaks
on an unusual (but legal) combination of loops, variables, and
selectors.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.export import to_imacros, to_playwright, to_selenium
from repro.lang import format_program

from test_export import balanced_braces
from test_property_lang import programs


class TestExportProperties:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_selenium_always_compiles(self, program):
        compile(to_selenium(program), "<selenium>", "exec")

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_playwright_always_compiles(self, program):
        compile(to_playwright(program), "<playwright>", "exec")

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_imacros_braces_balance(self, program):
        source = to_imacros(program)
        assert balanced_braces(source)
        # the DSL source survives as a comment, line for line
        for line in format_program(program).splitlines():
            assert line.rstrip() in source

    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_every_scrape_exports_an_extraction(self, program):
        from repro.lang.ast import ActionStmt, SCRAPE_TEXT

        def count_scrapes(statements):
            total = 0
            for stmt in statements:
                if isinstance(stmt, ActionStmt):
                    total += stmt.kind == SCRAPE_TEXT
                elif hasattr(stmt, "body"):
                    total += count_scrapes(stmt.body)
            return total

        scrapes = count_scrapes(program.statements)
        # one emission site per scrape statement, whatever the nesting
        assert to_selenium(program).count("outputs.append(") >= scrapes
        assert to_imacros(program).count("grab(") >= scrapes
