"""The resilient remote cache backend (repro.fleet.remote).

Fault injection against real sockets: a refused port, a server
speaking garbage, one that stalls past the timeout, one that drops the
connection mid-body.  Every failure mode must degrade to a cache miss
or a dropped write — the backend never raises into the engine — and
corrupt payloads must never promote into entries.  Also pins the
circuit-breaker state machine (closed → open → half-open → closed), the
warm-start path over the wire between "worker processes" (simulated by
resetting the per-process backend registry), and the acceptance
scenario: killing the cache server mid-session costs warm starts, never
a 5xx, and the worker re-attaches when the tier returns.
"""

import socket
import threading
import time
from dataclasses import replace

import pytest

from repro.engine.cache import reset_process_cache
from repro.fleet.cache_server import make_cache_server
from repro.fleet.pool import reset_pool
from repro.fleet.remote import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RemoteBackend,
)
from repro.service.backends import CONSISTENCY, EXACT, reset_backends, resolve_backend
from repro.service.client import ServiceClient
from repro.service.server import make_server
from repro.service.sessions import SessionManager
from repro.synth.config import DEFAULT_CONFIG

from helpers import cards_page, scrape_cards_trace

KEY = b"\x07" * 16


@pytest.fixture(autouse=True)
def _isolate():
    reset_process_cache()
    reset_pool()
    yield
    reset_backends()
    reset_process_cache()
    reset_pool()


@pytest.fixture
def cache(tmp_path):
    server = make_cache_server(port=0, path=str(tmp_path / "cache.sqlite"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.store.close()
        thread.join(timeout=5)


def _cache_url(server) -> str:
    return f"remote://127.0.0.1:{server.server_address[1]}"


def _dead_port() -> int:
    """A port nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class _FaultServer:
    """One-connection-at-a-time socket server with a scripted behavior."""

    def __init__(self, behavior):
        self._behavior = behavior
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._running = True
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while self._running:
            try:
                connection, _ = self._sock.accept()
            except OSError:
                return
            try:
                self._behavior(connection)
            except OSError:
                pass
            finally:
                try:
                    connection.close()
                except OSError:
                    pass

    def close(self):
        self._running = False
        try:
            self._sock.close()
        except OSError:
            pass


def _drain_request(connection):
    connection.settimeout(2.0)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = connection.recv(65536)
        if not chunk:
            return data
        data += chunk
    return data


class TestFaultInjection:
    def test_connection_refused_degrades_to_miss(self):
        backend = RemoteBackend(
            f"remote://127.0.0.1:{_dead_port()}",
            timeout=0.3,
            retries=1,
            breaker_threshold=100,
        )
        assert backend.load_entry(EXACT, KEY) is None
        assert backend.fetch_entry(EXACT, KEY) == (None, 0)
        assert backend.io_errors == 2  # retries do not double-count

    def test_writes_to_a_dead_tier_drop_not_raise(self):
        backend = RemoteBackend(
            f"remote://127.0.0.1:{_dead_port()}",
            timeout=0.3,
            retries=0,
            breaker_threshold=100,
        )
        backend.store_consistency(KEY, 5)
        # the buffered write still serves locally
        assert backend.load_consistency(KEY) == 5
        backend.flush()
        assert backend.dropped_writes == 1
        assert backend.entries == 0  # nothing acknowledged

    def test_garbage_bytes_degrade_to_miss(self):
        def talk_nonsense(connection):
            _drain_request(connection)
            connection.sendall(b"PONY PONY PONY\r\n\r\n")

        server = _FaultServer(talk_nonsense)
        try:
            backend = RemoteBackend(
                f"remote://127.0.0.1:{server.port}",
                timeout=1.0,
                retries=0,
                breaker_threshold=100,
            )
            assert backend.load_entry(EXACT, KEY) is None
            assert backend.io_errors == 1
        finally:
            server.close()

    def test_valid_http_garbage_payload_degrades_to_miss(self):
        def http_nonsense(connection):
            _drain_request(connection)
            body = b"\x00\xff not any codec"
            connection.sendall(
                b"HTTP/1.1 200 OK\r\nContent-Length: "
                + str(len(body)).encode()
                + b"\r\n\r\n"
                + body
            )

        server = _FaultServer(http_nonsense)
        try:
            backend = RemoteBackend(
                f"remote://127.0.0.1:{server.port}",
                timeout=1.0,
                retries=0,
                breaker_threshold=100,
            )
            assert backend.load_entry(EXACT, KEY) is None
        finally:
            server.close()

    def test_slow_server_times_out_within_budget(self):
        def stall(connection):
            _drain_request(connection)
            time.sleep(2.0)

        server = _FaultServer(stall)
        try:
            backend = RemoteBackend(
                f"remote://127.0.0.1:{server.port}",
                timeout=0.3,
                retries=0,
                breaker_threshold=100,
            )
            started = time.monotonic()
            assert backend.load_entry(EXACT, KEY) is None
            assert time.monotonic() - started < 1.5
        finally:
            server.close()

    def test_mid_body_disconnect_degrades_to_miss(self):
        def drop_mid_body(connection):
            _drain_request(connection)
            connection.sendall(
                b"HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\npartial"
            )
            # close with most of the body unsent -> IncompleteRead

        server = _FaultServer(drop_mid_body)
        try:
            backend = RemoteBackend(
                f"remote://127.0.0.1:{server.port}",
                timeout=1.0,
                retries=0,
                breaker_threshold=100,
            )
            assert backend.load_entry(EXACT, KEY) is None
            assert backend.io_errors == 1
        finally:
            server.close()

    def test_corrupt_payloads_never_promote(self, cache):
        # a foreign/corrupt row in the tier must read as a miss, never
        # as a mangled entry handed to the engine
        cache.store.store_payload(EXACT, KEY, {"junk": 1})
        cache.store.store_payload(CONSISTENCY, b"\x08" * 16, {"v": "NaN"})
        backend = RemoteBackend(_cache_url(cache))
        assert backend.fetch_entry(EXACT, KEY) == (None, 0)
        assert backend.load_consistency(b"\x08" * 16) is None
        assert backend.load_hits == 0


class TestCircuitBreaker:
    def test_closed_to_open_to_half_open_to_closed(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, reset_after=1.0, clock=lambda: clock[0])
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # open: requests skip
        clock[0] = 1.5
        assert breaker.allow()  # exactly one half-open probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # concurrent requests still skip
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=lambda: clock[0])
        breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] = 1.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock[0] = 2.0
        assert breaker.allow()  # a fresh probe after another window

    def test_open_breaker_skips_the_wire(self):
        backend = RemoteBackend(
            f"remote://127.0.0.1:{_dead_port()}",
            timeout=0.3,
            retries=0,
            breaker_threshold=1,
            breaker_reset_s=60.0,
        )
        assert backend.load_entry(EXACT, KEY) is None
        assert backend.io_errors == 1
        started = time.monotonic()
        for _ in range(20):
            assert backend.load_entry(EXACT, KEY) is None
        # 20 skipped probes cost microseconds, not 20 connect timeouts
        assert time.monotonic() - started < 0.3
        assert backend.io_errors == 1


class TestWireRoundTrip:
    def test_warm_start_crosses_worker_processes(self, cache):
        url = _cache_url(cache)
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 4)

        def drive():
            manager = SessionManager(
                replace(DEFAULT_CONFIG, cache_backend=url), timeout=5.0
            )
            sid = manager.create(snapshots[0])
            for position, action in enumerate(actions):
                manager.record_action(sid, action, snapshots[position + 1])
            programs = tuple(
                item.program for item in manager.candidates(sid).candidates
            )
            manager.close(sid)  # flushes the remote write buffer
            return programs, manager.stats()["totals"]

        cold, cold_totals = drive()
        assert cache.store.entries > 0  # the tier holds the session's rows
        # a "new worker process": fresh registry, fresh engine cache
        reset_backends()
        reset_process_cache()
        warm, warm_totals = drive()
        assert warm == cold  # byte-identical candidates over the tier
        assert warm_totals["warm_start_hits"] > 0
        backend = resolve_backend(url)
        assert backend.load_hits > 0
        assert backend.io_errors == 0

    def test_stats_duck_type_like_the_file_backend(self, cache):
        backend = RemoteBackend(_cache_url(cache))
        backend.store_consistency(KEY, 9)
        backend.flush()
        assert backend.persisted_bytes > 0
        assert backend.entries == 1
        assert backend.name == "remote"
        assert backend.persistent is True


class TestMidLoadKill:
    def test_cache_death_never_surfaces_and_the_worker_reattaches(
        self, tmp_path, monkeypatch
    ):
        store_path = str(tmp_path / "cache.sqlite")
        cache = make_cache_server(port=0, path=store_path)
        port = cache.server_address[1]
        threading.Thread(target=cache.serve_forever, daemon=True).start()

        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "0.3")
        monkeypatch.setenv("REPRO_REMOTE_RETRIES", "0")
        monkeypatch.setenv("REPRO_REMOTE_BREAKER_THRESHOLD", "2")
        monkeypatch.setenv("REPRO_REMOTE_BREAKER_RESET_S", "0.2")
        reset_backends()

        url = f"remote://127.0.0.1:{port}"
        worker = make_server(
            port=0,
            config=replace(DEFAULT_CONFIG, cache_backend=url),
            timeout=5.0,
        )
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        client = ServiceClient(f"http://127.0.0.1:{worker.server_address[1]}")
        try:
            dom = cards_page(6)
            actions, snapshots = scrape_cards_trace(dom, 5)
            sid = client.create_session(snapshots[0])
            client.record_action(sid, actions[0], snapshots[1])

            # kill the cache tier mid-session
            cache.shutdown()
            cache.server_close()
            cache.store.close()

            for position in (1, 2):
                # the typed client raises on any non-2xx: surviving the
                # call IS the no-5xx assertion
                proposed = client.record_action(
                    sid, actions[position], snapshots[position + 1]
                )
                assert proposed.session == sid
            backend = resolve_backend(url)
            assert backend.io_errors > 0  # it did notice the outage

            # the tier comes back on the same port; the breaker window
            # passes and the worker re-attaches
            revived = make_cache_server(port=port, path=store_path)
            threading.Thread(target=revived.serve_forever, daemon=True).start()
            try:
                time.sleep(0.25)
                for position in (3, 4):
                    proposed = client.record_action(
                        sid, actions[position], snapshots[position + 1]
                    )
                assert proposed.programs > 0  # the session still converges
                client.close_session(sid)  # close flushes to the tier
                assert backend.breaker.state == CLOSED
                assert revived.store.entries > 0
            finally:
                revived.shutdown()
                revived.server_close()
                revived.store.close()
        finally:
            worker.shutdown()
            worker.manager.close_all()
            worker.server_close()
