"""Round-trip tests for the DSL parser and pretty-printer."""

import pytest

from repro.lang import (
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    WhileLoop,
    canonical_program,
    format_program,
    parse_program,
)
from repro.util import ParseError

SUBWAY_P4 = """
foreach d1 in ValuePaths(x["zips"]) do
  EnterData(//input[@name='search'][1], d1)
  Click(//button[@class='go'][1])
  while true do
    foreach r1 in Dscts(/, div[@class='rightContainer']) do
      ScrapeText(r1//h3[1])
      ScrapeText(r1//div[@class='locatorPhone'][1])
    Click(//button[@class='next'][1]/span[1])
"""


class TestParseBasics:
    def test_single_actions(self):
        prog = parse_program("Click(//a[1])\nGoBack\nExtractURL")
        kinds = [stmt.kind for stmt in prog.statements]
        assert kinds == ["Click", "GoBack", "ExtractURL"]

    def test_send_keys_text(self):
        prog = parse_program('SendKeys(//input[1], "hello, world")')
        stmt = prog.statements[0]
        assert stmt.text == "hello, world"

    def test_enter_data_path(self):
        prog = parse_program('EnterData(//input[1], x["zips"][2])')
        stmt = prog.statements[0]
        assert stmt.value.accessors == ("zips", 2)

    def test_comments_and_blanks_skipped(self):
        prog = parse_program("# header\n\nClick(//a[1])\n")
        assert len(prog) == 1


class TestParseLoops:
    def test_selector_loop(self):
        prog = parse_program(
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])"
        )
        loop = prog.statements[0]
        assert isinstance(loop, ForEachSelector)
        assert loop.collection.pred.attr == "class"
        body_stmt = loop.body[0]
        assert body_stmt.target.base == loop.var

    def test_children_loop(self):
        prog = parse_program(
            "foreach r in Children(//ul[1], li) do\n  ScrapeText(r/span[1])"
        )
        loop = prog.statements[0]
        assert type(loop.collection).__name__ == "ChildrenOf"

    def test_value_loop(self):
        prog = parse_program(
            'foreach d in ValuePaths(x["zips"]) do\n  EnterData(//input[1], d)'
        )
        loop = prog.statements[0]
        assert isinstance(loop, ForEachValue)
        assert loop.body[0].value.base == loop.var

    def test_while_loop_splits_trailing_click(self):
        prog = parse_program(
            "while true do\n  ScrapeText(//h3[1])\n  Click(//button[1])"
        )
        loop = prog.statements[0]
        assert isinstance(loop, WhileLoop)
        assert len(loop.body) == 1
        assert loop.click.kind == "Click"

    def test_nested_full_program(self):
        prog = parse_program(SUBWAY_P4)
        outer = prog.statements[0]
        assert isinstance(outer, ForEachValue)
        assert isinstance(outer.body[2], WhileLoop)
        inner = outer.body[2].body[0]
        assert isinstance(inner, ForEachSelector)

    def test_sibling_loops_can_reuse_names(self):
        text = (
            "foreach r in Dscts(/, div) do\n  ScrapeText(r//h3[1])\n"
            "foreach r in Dscts(/, span) do\n  ScrapeText(r//b[1])"
        )
        prog = parse_program(text)
        assert prog.statements[0].var != prog.statements[1].var

    def test_shadowing_restores_outer_binding(self):
        text = (
            "foreach r in Dscts(/, ul) do\n"
            "  foreach r in Children(r, li) do\n"
            "    ScrapeText(r/span[1])\n"
            "  ScrapeText(r//h2[1])"
        )
        prog = parse_program(text)
        outer = prog.statements[0]
        inner = outer.body[0]
        trailing = outer.body[1]
        assert inner.collection.base.base == outer.var
        assert trailing.target.base == outer.var


class TestParseErrors:
    def test_unbound_variable(self):
        with pytest.raises(ParseError):
            parse_program("ScrapeText(r//h3[1])")

    def test_while_without_click(self):
        with pytest.raises(ParseError):
            parse_program("while true do\n  ScrapeText(//h3[1])")

    def test_empty_loop_body(self):
        with pytest.raises(ParseError):
            parse_program("foreach r in Dscts(/, div) do\nClick(//a[1])")

    def test_bad_indentation(self):
        with pytest.raises(ParseError):
            parse_program("Click(//a[1])\n    Click(//b[1])")

    def test_odd_indent(self):
        with pytest.raises(ParseError):
            parse_program(" Click(//a[1])")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_program("Hover(//a[1])")

    def test_wrong_arity(self):
        with pytest.raises(ParseError):
            parse_program("Click(//a[1], //b[1])")

    def test_unquoted_send_keys(self):
        with pytest.raises(ParseError):
            parse_program("SendKeys(//input[1], hello)")

    def test_x_cannot_be_loop_var(self):
        with pytest.raises(ParseError):
            parse_program('foreach x in ValuePaths(x["a"]) do\n  EnterData(//i[1], x)')

    def test_value_var_in_selector_position(self):
        with pytest.raises(ParseError):
            parse_program(
                'foreach d in ValuePaths(x["a"]) do\n  ScrapeText(d//h3[1])'
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "Click(//a[1])",
            "GoBack",
            'SendKeys(//input[1], "q")',
            'EnterData(//input[1], x["zips"][1])',
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])",
            SUBWAY_P4,
        ],
    )
    def test_parse_format_parse_fixpoint(self, text):
        prog = parse_program(text)
        printed = format_program(prog)
        reparsed = parse_program(printed)
        assert canonical_program(reparsed) == canonical_program(prog)
        assert format_program(reparsed) == printed
