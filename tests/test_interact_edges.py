"""Edge cases for the interaction model: rejections, interrupts, phases."""

import pytest

from repro.benchmarks import benchmark_by_id
from repro.browser import Browser, record_ground_truth
from repro.interact import InteractiveSession, OracleUser, Phase, SessionReport
from repro.interact.user import NoisyUser
from repro.lang import DataSource, parse_program
from repro.synth import Synthesizer

from repro.benchmarks.sites.plain_lists import PlainListSite

FLAT_GT = parse_program(
    "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
    "  ScrapeText(i/span[1])\n  ScrapeText(i/b[1])"
)


def flat_task(items=6):
    site = PlainListSite(items, fields=2, seed="ie")
    recording = record_ground_truth(site, FLAT_GT)
    live = PlainListSite(items, fields=2, seed="ie")
    return recording, live


class TestSessionReportMetrics:
    def test_automation_fraction(self):
        report = SessionReport(total_actions=10, automated=6)
        assert report.automation_fraction == 0.6

    def test_automation_fraction_empty(self):
        assert SessionReport().automation_fraction == 0.0


class TestAuthorizationFlow:
    def test_authorized_before_automation(self):
        recording, live = flat_task()
        session = InteractiveSession(
            Browser(live), Synthesizer(DataSource({})), OracleUser(recording),
            auth_accepts_to_automate=3,
        )
        report = session.run()
        assert report.completed
        assert report.authorized >= 3  # threshold accepted one-by-one

    def test_high_threshold_stays_in_auth(self):
        recording, live = flat_task(items=4)
        session = InteractiveSession(
            Browser(live), Synthesizer(DataSource({})), OracleUser(recording),
            auth_accepts_to_automate=999,
        )
        report = session.run()
        assert report.completed
        assert report.automated == 0  # never reached the auto phase
        assert report.authorized > 0

    def test_always_rejecting_user_demonstrates_everything(self):
        recording, live = flat_task(items=4)

        class Contrarian(OracleUser):
            def judge(self, predictions):
                return None  # rejects every prediction

        session = InteractiveSession(
            Browser(live), Synthesizer(DataSource({})), Contrarian(recording)
        )
        report = session.run()
        assert report.completed
        assert report.automated == 0 and report.authorized == 0
        assert report.demonstrated == recording.length
        assert report.rejected > 0


class TestNoisyUserSeeds:
    def test_mistake_rate_zero_equals_oracle(self):
        recording, live = flat_task()
        noisy = NoisyUser(recording, mistake_rate=0.0, seed=3)
        oracle_report = InteractiveSession(
            Browser(live), Synthesizer(DataSource({})), noisy
        ).run()
        assert oracle_report.completed
        assert oracle_report.rejected == 0

    def test_seeded_noise_is_deterministic(self):
        first_counts = []
        for _ in range(2):
            recording, live = flat_task()
            report = InteractiveSession(
                Browser(live), Synthesizer(DataSource({})),
                NoisyUser(recording, mistake_rate=0.3, seed=11),
            ).run()
            first_counts.append((report.demonstrated, report.rejected))
        assert first_counts[0] == first_counts[1]


class TestPhaseEnum:
    def test_phase_values(self):
        assert {phase.value for phase in Phase} == {"demo", "auth", "auto", "done"}
