"""Tests for the static well-formedness checker (repro.lang.check)."""

import pytest

from repro.lang import DataSource, parse_program
from repro.lang.ast import (
    SCRAPE_TEXT,
    SEL_VAR,
    ActionStmt,
    DescendantsOf,
    ForEachSelector,
    Program,
    Selector,
    Var,
)
from repro.dom.xpath import Predicate
from repro.lang.check import (
    ERROR,
    WARNING,
    Diagnostic,
    assert_well_formed,
    check_program,
    errors_only,
)
from repro.util.errors import CheckError

DATA = DataSource({"zips": ["48104", "48105"], "profile": {"name": "Ellie"}})


def program(text: str):
    from repro.lang.parser import parse_program

    return parse_program(text)


class TestCleanPrograms:
    def test_straight_line_clean(self):
        assert check_program(program("Click(//a[1])\nGoBack\nExtractURL")) == []

    def test_full_p4_clean(self):
        p4 = program(
            'foreach d1 in ValuePaths(x["zips"]) do\n'
            "  EnterData(//input[1], d1)\n"
            "  Click(//button[1])\n"
            "  while true do\n"
            "    foreach r1 in Dscts(/, div[@class='card']) do\n"
            "      ScrapeText(r1//h3[1])\n"
            "    Click(//button[@class='next'][1])"
        )
        assert check_program(p4, DATA) == []

    def test_value_paths_against_data(self):
        clean = program('EnterData(//input[1], x["zips"][2])')
        assert check_program(clean, DATA) == []


class TestVariableScoping:
    def test_free_selector_variable(self):
        loop = program("foreach r in Dscts(/, li) do\n  ScrapeText(r/span[1])")
        inner = loop.statements[0].body[0]
        # hoist the body statement out of its binder
        broken = Program((inner,))
        diags = check_program(broken)
        assert any("free selector variable" in d.message for d in errors_only(diags))

    def test_free_value_variable(self):
        loop = program('foreach d in ValuePaths(x["zips"]) do\n  EnterData(//input[1], d)')
        inner = loop.statements[0].body[0]
        broken = Program((inner,))
        diags = check_program(broken, DATA)
        assert any("free value variable" in d.message for d in errors_only(diags))

    def test_shadowing_same_variable_object(self):
        var = Var(SEL_VAR, 999)
        inner = ForEachSelector(
            var,
            DescendantsOf(Selector(var), Predicate("li")),
            (ActionStmt(SCRAPE_TEXT, Selector(var)),),
        )
        outer = ForEachSelector(
            var,
            DescendantsOf(Selector(), Predicate("ul")),
            (inner,),
        )
        diags = check_program(Program((outer,)))
        assert any("shadows" in d.message for d in errors_only(diags))

    def test_unused_loop_variable_warns(self):
        loop = program("foreach r in Dscts(/, li) do\n  ScrapeText(//h3[1])")
        diags = check_program(loop)
        assert errors_only(diags) == []
        assert any(d.severity == WARNING and "never used" in d.message for d in diags)

    def test_nested_use_counts_as_use(self):
        loop = program(
            "foreach r in Dscts(/, ul) do\n"
            "  foreach s in Children(r, li) do\n"
            "    ScrapeText(s/span[1])"
        )
        diags = check_program(loop)
        # outer var used as inner collection base; inner var used in body
        assert [d for d in diags if "never used" in d.message] == []

    def test_while_click_use_counts(self):
        loop = program(
            "foreach r in Dscts(/, div) do\n"
            "  while true do\n"
            "    ScrapeText(//h3[1])\n"
            "    Click(r/button[1])"
        )
        diags = check_program(loop)
        assert [d for d in diags if "never used" in d.message] == []


class TestDataTyping:
    def test_missing_key(self):
        bad = program('EnterData(//input[1], x["nope"][1])')
        diags = check_program(bad, DATA)
        assert any("does not resolve" in d.message for d in errors_only(diags))

    def test_index_out_of_range(self):
        bad = program('EnterData(//input[1], x["zips"][9])')
        diags = check_program(bad, DATA)
        assert any("does not resolve" in d.message for d in errors_only(diags))

    def test_entering_composite_value(self):
        bad = program('EnterData(//input[1], x["profile"])')
        diags = check_program(bad, DATA)
        assert any("needs a scalar" in d.message for d in errors_only(diags))

    def test_value_loop_over_non_array(self):
        bad = program(
            'foreach d in ValuePaths(x["profile"]) do\n  EnterData(//input[1], d)'
        )
        diags = check_program(bad, DATA)
        assert any("ValuePaths" in d.message for d in errors_only(diags))

    def test_no_data_skips_typing(self):
        # without a data source, path checks are skipped entirely
        maybe = program('EnterData(//input[1], x["nope"][1])')
        assert check_program(maybe) == []


class TestWhileLoops:
    def test_empty_body_warns(self):
        from repro.lang.ast import CLICK, WhileLoop

        loop = WhileLoop((), ActionStmt(CLICK, Selector()))
        diags = check_program(Program((loop,)))
        assert any("clicks forever" in d.message for d in diags)

    def test_click_path_addressed_past_body(self):
        loop = program("while true do\n  ScrapeText(//h3[1])\n  Click(//b[1])")
        # make the click site ill-formed by hoisting it under a fake var
        from repro.lang.ast import CLICK, WhileLoop, fresh_var

        var = fresh_var(SEL_VAR)
        bad = WhileLoop(
            loop.statements[0].body,
            ActionStmt(CLICK, Selector(var)),
        )
        diags = check_program(Program((bad,)))
        errors = errors_only(diags)
        assert errors and errors[0].path == (0, 1)


class TestPublicHelpers:
    def test_assert_well_formed_passes_clean(self):
        assert_well_formed(program("Click(//a[1])"))

    def test_assert_well_formed_raises(self):
        loop = program("foreach r in Dscts(/, li) do\n  ScrapeText(r/span[1])")
        broken = Program((loop.statements[0].body[0],))
        with pytest.raises(CheckError, match="free selector variable"):
            assert_well_formed(broken)

    def test_diagnostic_str_shows_path(self):
        diag = Diagnostic(ERROR, (0, 2), "boom")
        assert str(diag) == "error at 0.2: boom"

    def test_diagnostic_str_top_level(self):
        diag = Diagnostic(WARNING, (), "hmm")
        assert "<top>" in str(diag)

    def test_top_level_reexports(self):
        import repro

        assert repro.check_program is check_program
