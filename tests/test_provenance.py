"""Tests for provenance-tracking execution (repro.semantics.provenance).

The load-bearing invariant: the provenance walker is a *decorated* copy
of the evaluator, so its projected action sequence must be identical to
``execute``'s on the same inputs — checked here property-style over
randomly parameterized recordings.
"""

from hypothesis import given, settings, strategies as st

from repro.benchmarks.sites.plain_lists import NestedListSite, PlainListSite
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.browser import record_ground_truth
from repro.lang import DataSource, EMPTY_DATA, parse_program
from repro.semantics import DOMTrace, execute
from repro.semantics.provenance import (
    explain,
    render_explanation,
    render_summary,
    statement_at,
)

FLAT_GT = parse_program(
    "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
    "  ScrapeText(i/span[1])\n  ScrapeText(i/b[1])"
)
NESTED_GT = parse_program(
    "foreach g in Children(/html[1]/body[1], div) do\n"
    "  foreach i in Children(g/ul[1], li) do\n    ScrapeText(i)"
)
STORE_GT = parse_program("""
while true do
  foreach r in Dscts(/, div[@class='rightContainer']) do
    ScrapeText(r//h3[1])
  Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
""")


@st.composite
def cases(draw):
    """(program, recording, data) triples from known site families."""
    family = draw(st.sampled_from(["flat", "nested", "store"]))
    if family == "flat":
        site = PlainListSite(draw(st.integers(2, 7)), fields=2,
                             seed=f"pv{draw(st.integers(0, 5))}")
        return FLAT_GT, record_ground_truth(site, FLAT_GT), EMPTY_DATA
    if family == "nested":
        site = NestedListSite(draw(st.integers(2, 4)), draw(st.integers(2, 4)),
                              seed=f"pw{draw(st.integers(0, 5))}")
        return NESTED_GT, record_ground_truth(site, NESTED_GT), EMPTY_DATA
    site = StoreLocatorSite(draw(st.integers(2, 3)), draw(st.integers(2, 4)),
                            fixed_zip=f"48{draw(st.integers(100, 120))}")
    return STORE_GT, record_ground_truth(site, STORE_GT), EMPTY_DATA


class TestMatchesEvaluator:
    @given(cases())
    @settings(max_examples=25, deadline=None)
    def test_projected_actions_equal_execute(self, case):
        program, recording, data = case
        doms = DOMTrace(recording.snapshots)
        plain = execute(program, doms, data)
        traced = explain(program, doms, data)
        assert traced.actions == plain.actions

    @given(cases(), st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_max_actions_cap_matches(self, case, cap):
        program, recording, data = case
        doms = DOMTrace(recording.snapshots)
        plain = execute(program, doms, data, max_actions=cap)
        traced = explain(program, doms, data, max_actions=cap)
        assert traced.actions == plain.actions

    @given(cases())
    @settings(max_examples=25, deadline=None)
    def test_snapshot_indices_increase_one_per_action(self, case):
        program, recording, data = case
        traced = explain(program, DOMTrace(recording.snapshots), data)
        indices = [record.snapshot_index for record in traced.records]
        assert indices == list(range(len(indices)))


class TestProvenanceStructure:
    def setup_method(self):
        site = NestedListSite(3, 2, seed="prov")
        self.recording = record_ground_truth(site, NESTED_GT)
        self.result = explain(
            NESTED_GT, DOMTrace(self.recording.snapshots), EMPTY_DATA
        )

    def test_every_action_from_inner_scrape(self):
        # the only emitting statement is the inner loop's ScrapeText
        assert set(record.path for record in self.result.records) == {(0, 0, 0)}

    def test_iteration_stack_outermost_first(self):
        first = self.result.records[0]
        assert [loop_path for loop_path, _ in first.iterations] == [(0,), (0, 0)]
        assert [iteration for _, iteration in first.iterations] == [1, 1]

    def test_iteration_counts_cover_groups_and_items(self):
        counts = self.result.iteration_counts()
        assert counts[(0,)] == 3  # 3 groups
        assert counts[(0, 0)] == 2  # 2 items each

    def test_bindings_name_both_loop_variables(self):
        record = self.result.records[-1]
        assert len(record.bindings) == 2
        rendered = [text for _, text in record.bindings]
        assert all("/" in text for text in rendered)

    def test_by_statement_groups_everything(self):
        groups = self.result.by_statement()
        assert sum(len(group) for group in groups.values()) == len(self.result.records)

    def test_depth_matches_nesting(self):
        assert all(record.depth == 2 for record in self.result.records)


class TestWhileProvenance:
    def setup_method(self):
        site = StoreLocatorSite(3, 2, fixed_zip="48104")
        self.recording = record_ground_truth(site, STORE_GT)
        self.result = explain(
            STORE_GT, DOMTrace(self.recording.snapshots), EMPTY_DATA
        )

    def test_terminating_click_addressed_past_body(self):
        click_paths = {
            record.path
            for record in self.result.records
            if record.action.kind == "Click"
        }
        assert click_paths == {(0, 1)}  # body length 1, click at index 1

    def test_while_iterations_advance(self):
        pages = {
            iteration
            for record in self.result.records
            for loop_path, iteration in record.iterations
            if loop_path == (0,)
        }
        assert pages == {1, 2, 3}


class TestRendering:
    def test_explanation_lists_every_action(self):
        site = PlainListSite(3, fields=2, seed="render")
        recording = record_ground_truth(site, FLAT_GT)
        result = explain(FLAT_GT, DOMTrace(recording.snapshots), EMPTY_DATA)
        text = render_explanation(FLAT_GT, result)
        assert len(text.splitlines()) == len(result.records)
        assert "stmt 0.0" in text
        assert "[iter 1]" in text

    def test_summary_describes_statements(self):
        site = PlainListSite(3, fields=2, seed="render2")
        recording = record_ground_truth(site, FLAT_GT)
        result = explain(FLAT_GT, DOMTrace(recording.snapshots), EMPTY_DATA)
        text = render_summary(FLAT_GT, result)
        assert "(ScrapeText)" in text
        assert "loop 0: 3 iterations" in text

    def test_statement_at_resolves_while_click(self):
        click = statement_at(STORE_GT, (0, 1))
        assert click.kind == "Click"

    def test_statement_at_resolves_nested(self):
        stmt = statement_at(NESTED_GT, (0, 0, 0))
        assert stmt.kind == "ScrapeText"
