"""Tests for the HTML-to-DOM parser."""

import pytest

from repro.dom import parse_selector, resolve, to_html
from repro.dom.html import parse_fragment, parse_html
from repro.util import ParseError

CARDS = """
<html><body>
  <div class="sidebar">ads</div>
  <div class="results">
    <div class="card"><h3>Store One</h3><div class="phone">555-0100</div></div>
    <div class="card"><h3>Store Two</h3><div class="phone">555-0200</div></div>
  </div>
</body></html>
"""


class TestParseHtml:
    def test_structure_and_selectors(self):
        dom = parse_html(CARDS)
        assert dom.tag == "html"
        assert dom.frozen
        node = resolve(parse_selector("//div[@class='card'][2]/h3[1]"), dom)
        assert node.text == "Store Two"

    def test_text_attachment(self):
        dom = parse_html("<div>hello <b>bold</b> world</div>")
        assert dom.text == "hello world"
        assert dom.children[0].text == "bold"
        assert dom.text_content() == "hello world bold"

    def test_attributes(self):
        dom = parse_html('<input name="q" value="x" disabled>')
        assert dom.attrs == {"name": "q", "value": "x", "disabled": ""}

    def test_void_elements_do_not_nest(self):
        dom = parse_html("<div><br><input name='a'><span>s</span></div>")
        assert [child.tag for child in dom.children] == ["br", "input", "span"]

    def test_self_closing_syntax(self):
        dom = parse_html("<div><img src='x'/><span>s</span></div>")
        assert [child.tag for child in dom.children] == ["img", "span"]

    def test_tags_lowercased(self):
        dom = parse_html("<DIV><SPAN>x</SPAN></DIV>")
        assert dom.tag == "div"
        assert dom.children[0].tag == "span"

    def test_comments_ignored(self):
        dom = parse_html("<div><!-- hi --><span>x</span></div>")
        assert len(dom.children) == 1

    def test_implicit_close_is_forgiving(self):
        dom = parse_html("<div><p>one<p>two</p></div>")
        # the first <p> is implicitly closed by </p> matching ancestor-wise
        assert dom.tag == "div"


class TestParseHtmlErrors:
    def test_unclosed_root(self):
        with pytest.raises(ParseError):
            parse_html("<div><span>x</span>")

    def test_stray_closing_tag(self):
        with pytest.raises(ParseError):
            parse_html("<div></div></span>")

    def test_mismatched_closing_tag(self):
        with pytest.raises(ParseError):
            parse_html("<div></span></div>")

    def test_text_outside_root(self):
        with pytest.raises(ParseError):
            parse_html("hello <div>x</div>")

    def test_multiple_roots_rejected(self):
        with pytest.raises(ParseError):
            parse_html("<div>a</div><div>b</div>")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_html("   ")


class TestParseFragment:
    def test_multiple_roots(self):
        roots = parse_fragment("<li>a</li><li>b</li><li>c</li>")
        assert [node.text for node in roots] == ["a", "b", "c"]
        assert not roots[0].frozen  # fragments stay buildable

    def test_round_trip_through_to_html(self):
        dom = parse_html(CARDS)
        rendered = to_html(dom)
        reparsed = parse_html(rendered)
        assert reparsed.structural_key() == dom.structural_key()
