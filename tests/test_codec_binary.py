"""The binary payload codec, adversarially.

Property tests pin the codec's contract from three sides: round-trips
over random payload values (binary and JSON must decode to the *same*
value), byte stability (re-encoding a decoded value reproduces the
bytes), and corruption (every truncation or bit flip of a valid blob
raises :class:`ProtocolError` or decodes cleanly — never any other
exception, and through the file backend never anything but a miss).

``tests/data/codec_golden.json`` holds committed wire bytes.  Those
fixtures are the compatibility gate for the preset dictionary and
``FORMAT_VERSION``: if an edit to the codec changes how the recorded
values encode, or stops decoding the recorded bytes, these tests fail
— bump ``FORMAT_VERSION`` and regenerate deliberately, never silently.

The back half covers the store-side machinery the codec feeds: the
per-backend :class:`StepInterner` LRU, the size-tier persistence
policy, the decoded-entry cache, and mixed-codec stores (a store
written under ``REPRO_CODEC=json`` keeps serving after the switch to
binary, row by row, via the sniff).
"""

import json
import os
import sqlite3
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.dom.xpath import parse_selector
from repro.engine.keys import stable_digest
from repro.lang import X, click, enter_data, scrape_text, send_keys
from repro.lang.ast import SEL_VAR, Var
from repro.protocol.codec import (
    FORMAT_VERSION,
    HEADER,
    BinaryCodec,
    JsonCodec,
    codec_for_content_type,
    decode_value,
    encode_value,
    resolve_codec,
    sniff_codec,
)
from repro.protocol.messages import ProtocolError
from repro.semantics.env import Env
from repro.service.backends import (
    CONSISTENCY,
    EXACT,
    TERMINAL,
    DEFAULT_TIER_COST,
    TIER_COST_CEIL,
    TIER_COST_FLOOR,
    TIER_RECALC_EVERY,
    FileBackend,
    StepInterner,
    entry_from_payload,
    entry_to_payload,
)

GOLDEN = Path(__file__).parent / "data" / "codec_golden.json"


# ----------------------------------------------------------------------
# Strategies: the value universe both codecs must agree on — JSON's
# (None/bool/int/float/str, lists, str-keyed dicts), with big ints and
# without NaN (x != x breaks equality, and the store never writes one).
# ----------------------------------------------------------------------
scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(1 << 80), max_value=1 << 80)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30)
)
values = st.recursive(
    scalars,
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=20,
)


def _sample_entry(interner=None):
    """A realistic store entry payload (selectors, env, examined set)."""
    actions = (
        click(parse_selector("/html[1]/body[1]//div[@class='card'][2]")),
        scrape_text(parse_selector("//div[@class~='match'][1]/h3[1]")),
        send_keys(parse_selector("//input[@name='q'][1]"), "laptops"),
        enter_data(parse_selector("//input[1]"), X.extend("zips").extend(3)),
    )
    env = Env().bind(Var(SEL_VAR, 1), parse_selector("/html[1]/body[1]/div[2]"))
    return entry_to_payload(actions, env, (0, 3), True, interner or StepInterner())


class TestRoundTrip:
    @given(values)
    @settings(max_examples=200, deadline=None)
    def test_binary_round_trips_every_payload_value(self, value):
        assert decode_value(encode_value(value)) == value

    @given(values)
    @settings(max_examples=200, deadline=None)
    def test_binary_and_json_decode_to_the_same_value(self, value):
        binary, text = BinaryCodec(), JsonCodec()
        via_binary = binary.decode_payload(binary.encode_payload(value))
        via_json = text.decode_payload(text.encode_payload(value))
        assert via_binary == via_json == value

    @given(values)
    @settings(max_examples=200, deadline=None)
    def test_encoding_is_byte_stable(self, value):
        blob = encode_value(value)
        assert encode_value(decode_value(blob)) == blob

    def test_big_ints_survive(self):
        for n in (1 << 200, -(1 << 200), (1 << 62) - 1, 1 << 62, -(1 << 62)):
            assert decode_value(encode_value(n)) == n

    def test_entry_payloads_agree_across_codecs(self):
        payload = _sample_entry()
        binary, text = BinaryCodec(), JsonCodec()
        assert binary.decode_payload(binary.encode_payload(payload)) == payload
        assert binary.decode_payload(
            binary.encode_payload(payload)
        ) == text.decode_payload(text.encode_payload(payload))

    def test_decoded_entries_rebuild_identical_objects(self):
        interner = StepInterner()
        payload = _sample_entry(interner)
        blob = encode_value(payload)
        actions, env, examined, ok = entry_from_payload(
            decode_value(blob), StepInterner()
        )
        ref_actions, ref_env, ref_examined, ref_ok = entry_from_payload(
            payload, StepInterner()
        )
        assert actions == ref_actions
        assert env.fingerprint() == ref_env.fingerprint()
        assert (examined, ok) == (ref_examined, ref_ok)

    def test_sniff_and_content_types_identify_each_codec(self):
        blob = encode_value({"a": []})
        assert sniff_codec(blob).name == "binary"
        assert sniff_codec(b'{"a": []}').name == "json"
        for codec in (BinaryCodec(), JsonCodec()):
            assert codec_for_content_type(codec.content_type).name == codec.name
        assert codec_for_content_type("text/html") is None

    def test_resolve_codec_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEC", "binary")
        assert resolve_codec().name == "binary"
        monkeypatch.delenv("REPRO_CODEC")
        assert resolve_codec(default="json").name == "json"
        with pytest.raises(ValueError):
            resolve_codec("gzip")


class TestCorruption:
    """No corrupt payload may ever raise anything but ProtocolError."""

    def _blobs(self):
        return [
            encode_value(_sample_entry()),
            encode_value([None, True, 1 << 70, -3, 2.5, "x" * 40, {"k": [1]}]),
            encode_value("ScrapeText"),
        ]

    def test_every_truncation_is_a_protocol_error(self):
        for blob in self._blobs():
            for cut in range(len(blob)):
                with pytest.raises(ProtocolError):
                    decode_value(blob[:cut])

    def test_trailing_garbage_is_a_protocol_error(self):
        blob = encode_value([1, 2])
        with pytest.raises(ProtocolError):
            decode_value(blob + b"\x00")

    def test_bad_magic_and_version_are_protocol_errors(self):
        blob = encode_value(None)
        with pytest.raises(ProtocolError):
            decode_value(b"\xc4" + blob[1:])
        with pytest.raises(ProtocolError):
            decode_value(bytes((HEADER[0], FORMAT_VERSION + 1)) + blob[2:])

    def test_bit_flips_never_escape_as_other_exceptions(self):
        # A flip may still decode (it can form a different valid
        # payload); it must decode or raise ProtocolError, nothing else.
        for blob in self._blobs():
            for pos in range(len(blob)):
                for bit in (0x01, 0x10, 0x80):
                    mutated = bytearray(blob)
                    mutated[pos] ^= bit
                    try:
                        decode_value(bytes(mutated))
                    except ProtocolError:
                        pass

    @given(st.binary(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_decode_or_raise_protocol_error(self, junk):
        try:
            decode_value(junk)
        except ProtocolError:
            pass

    def test_corrupt_store_rows_degrade_to_misses(self, tmp_path):
        path = tmp_path / "store.sqlite"
        writer = FileBackend(path, tier_cost=-1)
        key = stable_digest(("exact", "flip"))
        actions = (scrape_text(parse_selector("//h3[1]")),)
        writer.store_entry(EXACT, key, actions, Env(), None, True)
        writer.flush()

        conn = sqlite3.connect(path)
        (payload,) = conn.execute(
            "SELECT payload FROM entries WHERE key = ?", (key,)
        ).fetchone()
        mutated = bytearray(payload)
        mutated[len(mutated) // 2] ^= 0x40
        conn.execute(
            "UPDATE entries SET payload = ? WHERE key = ?", (bytes(mutated), key)
        )
        conn.commit()
        conn.close()

        reader = FileBackend(path, tier_cost=-1)
        assert reader.load_entry(EXACT, key) is None  # a miss, not a crash


class TestGoldenFixtures:
    """Committed wire bytes: the dictionary/FORMAT_VERSION compat gate."""

    def _load(self):
        document = json.loads(GOLDEN.read_text())
        assert document["format_version"] == FORMAT_VERSION, (
            "golden fixtures were generated for another format version — "
            "regenerate tests/data/codec_golden.json deliberately"
        )
        return document["cases"]

    def test_recorded_bytes_still_decode_to_the_recorded_values(self):
        for case in self._load():
            assert decode_value(bytes.fromhex(case["hex"])) == case["value"], (
                f"golden case {case['name']!r} no longer decodes — "
                "this breaks stores written by earlier builds"
            )

    def test_recorded_values_still_encode_to_the_recorded_bytes(self):
        for case in self._load():
            if not case["stable_encode"]:
                continue  # value had shared-identity back-references
            assert encode_value(case["value"]).hex() == case["hex"], (
                f"golden case {case['name']!r} encodes differently — "
                "dictionary or tag changes require a FORMAT_VERSION bump"
            )

    def test_shared_rows_decode_as_equal_lists(self):
        case = {c["name"]: c for c in self._load()}["shared-backref"]
        decoded = decode_value(bytes.fromhex(case["hex"]))
        assert decoded == case["value"]
        assert decoded[0] == decoded[1] == decoded[2]


class TestStepInterner:
    def _steps(self, count):
        return [
            parse_selector(f"//div[@class='c{i}'][1]").steps[-1] for i in range(count)
        ]

    def test_encode_side_shares_one_row_per_step(self):
        interner = StepInterner()
        step = self._steps(1)[0]
        assert interner.step_to_row(step) is interner.step_to_row(step)

    def test_decode_side_shares_one_step_per_row(self):
        interner = StepInterner()
        row = [False, "div", "class", "c0", False, 1]
        assert interner.row_to_step(row) is interner.row_to_step(list(row))

    def test_capacity_bounds_both_tables(self):
        interner = StepInterner(capacity=4)
        for step in self._steps(10):
            row = interner.step_to_row(step)
            interner.row_to_step(row)
        assert len(interner._rows) <= 4
        assert len(interner._steps) <= 4

    def test_hot_entries_survive_an_overflow(self):
        interner = StepInterner(capacity=4)
        steps = self._steps(6)
        hot = steps[0]
        hot_row = interner.step_to_row(hot)
        for step in steps[1:4]:
            interner.step_to_row(step)
        interner.step_to_row(hot)  # touch: migrates to the back
        for step in steps[4:]:
            interner.step_to_row(step)
        assert interner.step_to_row(hot) is hot_row

    def test_each_backend_owns_its_interner(self, tmp_path):
        a = FileBackend(tmp_path / "a.sqlite")
        b = FileBackend(tmp_path / "b.sqlite")
        assert a.interner is not b.interner


class TestTierPolicy:
    def test_terminal_and_consistency_always_persist(self, tmp_path):
        backend = FileBackend(tmp_path / "s.sqlite", tier_cost=5)
        assert backend.should_persist(TERMINAL, 0)
        assert backend.should_persist(CONSISTENCY, 0)
        assert backend.tier_skips == 0

    def test_cheap_exact_entries_are_skipped(self, tmp_path):
        backend = FileBackend(tmp_path / "s.sqlite", tier_cost=5)
        assert not backend.should_persist(EXACT, 5)
        assert not backend.should_persist(EXACT, 0)
        assert backend.tier_skips == 2

    def test_expensive_and_unbounded_exact_entries_persist(self, tmp_path):
        backend = FileBackend(tmp_path / "s.sqlite", tier_cost=5)
        assert backend.should_persist(EXACT, 6)
        assert backend.should_persist(EXACT, None)
        assert backend.tier_skips == 0

    def test_negative_threshold_disables_tiering(self, tmp_path):
        backend = FileBackend(tmp_path / "s.sqlite", tier_cost=-1)
        assert backend.should_persist(EXACT, 0)
        assert backend.tier_skips == 0

    def test_environment_selects_the_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TIER_COST", "7")
        assert FileBackend(tmp_path / "a.sqlite").tier_cost == 7
        monkeypatch.setenv("REPRO_STORE_TIERING", "off")
        assert FileBackend(tmp_path / "b.sqlite").tier_cost == -1
        monkeypatch.delenv("REPRO_STORE_TIERING")
        monkeypatch.setenv("REPRO_STORE_TIER_COST", "not-a-number")
        assert FileBackend(tmp_path / "c.sqlite").tier_cost == DEFAULT_TIER_COST

    def test_default_threshold_is_the_environment_default(self, tmp_path):
        assert FileBackend(tmp_path / "s.sqlite").tier_cost == DEFAULT_TIER_COST


class TestAdaptiveTierCost:
    """Unpinned stores derive ``tier_cost`` from observed recompute costs."""

    def _observe(self, backend, cost, count):
        for _ in range(count):
            backend.should_persist(EXACT, cost)

    def test_unpinned_stores_adapt_pinned_stores_do_not(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_TIER_COST", raising=False)
        adaptive = FileBackend(tmp_path / "a.sqlite")
        assert adaptive.tier_adaptive
        assert adaptive.tier_cost == DEFAULT_TIER_COST  # the seed
        pinned = FileBackend(tmp_path / "b.sqlite", tier_cost=5)
        assert not pinned.tier_adaptive
        monkeypatch.setenv("REPRO_STORE_TIER_COST", "7")
        env_pinned = FileBackend(tmp_path / "c.sqlite")
        assert not env_pinned.tier_adaptive
        self._observe(pinned, 200, TIER_RECALC_EVERY)
        self._observe(env_pinned, 200, TIER_RECALC_EVERY)
        assert pinned.tier_cost == 5
        assert env_pinned.tier_cost == 7

    def test_expensive_population_raises_the_threshold(self, tmp_path):
        backend = FileBackend(tmp_path / "s.sqlite")
        self._observe(backend, 40, TIER_RECALC_EVERY)
        # p75 of an all-40 population is 40: cheap-relative-to-the-store
        # entries below it stop persisting
        assert backend.tier_cost == 40
        assert backend.should_persist(EXACT, 41)
        assert not backend.should_persist(EXACT, 13)

    def test_derived_threshold_is_clamped(self, tmp_path):
        cheap = FileBackend(tmp_path / "cheap.sqlite")
        self._observe(cheap, 1, TIER_RECALC_EVERY)
        assert cheap.tier_cost == TIER_COST_FLOOR
        dear = FileBackend(tmp_path / "dear.sqlite")
        # pools in the overflow bucket, then clamps to the ceiling —
        # genuinely expensive entries must keep persisting
        self._observe(dear, 100_000, TIER_RECALC_EVERY)
        assert dear.tier_cost == TIER_COST_CEIL
        assert dear.should_persist(EXACT, TIER_COST_CEIL + 1)

    def test_mixed_population_takes_the_percentile(self, tmp_path):
        backend = FileBackend(tmp_path / "s.sqlite")
        # 96 cheap + 32 expensive = 128 samples; p75 lands on the cheap
        # bucket's cumulative edge
        self._observe(backend, 5, 96)
        self._observe(backend, 200, 32)
        assert backend.tier_cost == 5

    def test_recalc_happens_every_batch_not_every_call(self, tmp_path):
        backend = FileBackend(tmp_path / "s.sqlite")
        self._observe(backend, 2, TIER_RECALC_EVERY - 1)
        assert backend.tier_cost == DEFAULT_TIER_COST  # still the seed
        backend.should_persist(EXACT, 2)
        assert backend.tier_cost == TIER_COST_FLOOR

    def test_disabled_tiering_never_observes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TIERING", "off")
        backend = FileBackend(tmp_path / "s.sqlite")
        self._observe(backend, 2, TIER_RECALC_EVERY)
        assert backend.tier_cost == -1
        assert backend.tier_skips == 0


class TestDecodedEntryCache:
    def _stored(self, tmp_path, **kwargs):
        path = tmp_path / "store.sqlite"
        writer = FileBackend(path, tier_cost=-1)
        key = stable_digest(("exact", "decoded"))
        actions = (scrape_text(parse_selector("//h3[1]")),)
        writer.store_entry(EXACT, key, actions, Env(), (0,), True)
        writer.flush()
        return FileBackend(path, tier_cost=-1, **kwargs), key

    def test_second_fetch_is_a_decode_hit_with_byte_accounting(self, tmp_path):
        reader, key = self._stored(tmp_path)
        entry, saved = reader.fetch_entry(EXACT, key)
        assert entry is not None and saved == 0
        assert reader.decode_hits == 0

        again, saved = reader.fetch_entry(EXACT, key)
        assert again == entry and saved > 0
        assert reader.decode_hits == 1
        assert reader.decode_bytes == saved

    def test_cached_entry_is_served_without_reparsing(self, tmp_path):
        reader, key = self._stored(tmp_path)
        first, _ = reader.fetch_entry(EXACT, key)
        second, _ = reader.fetch_entry(EXACT, key)
        assert second is first  # the decoded tuple itself, not a copy

    def test_byte_budget_evicts_oldest_decoded_entries(self, tmp_path):
        # codec pinned: the budget below is sized against binary rows,
        # and the REPRO_CODEC=json CI leg must not change the geometry
        path = tmp_path / "store.sqlite"
        writer = FileBackend(path, tier_cost=-1, codec=BinaryCodec())
        keys = []
        for i in range(12):
            key = stable_digest(("exact", f"k{i}"))
            actions = tuple(
                scrape_text(parse_selector(f"//div[@class='x{i}'][{j + 1}]"))
                for j in range(6)
            )
            writer.store_entry(EXACT, key, actions, Env(), None, False)
            keys.append(key)
        writer.flush()

        reader = FileBackend(
            path, tier_cost=-1, codec=BinaryCodec(), decode_cache_bytes=400
        )
        for key in keys:
            assert reader.fetch_entry(EXACT, key)[0] is not None
        assert 0 < reader._decoded_bytes <= 400
        assert len(reader._decoded) < len(keys)

    def test_zero_budget_disables_the_cache(self, tmp_path):
        reader, key = self._stored(tmp_path, decode_cache_bytes=0)
        assert reader.fetch_entry(EXACT, key)[0] is not None
        entry, saved = reader.fetch_entry(EXACT, key)
        assert entry is not None and saved == 0
        assert reader.decode_hits == 0


class TestMixedCodecStores:
    def test_json_rows_keep_serving_after_the_switch_to_binary(self, tmp_path):
        path = tmp_path / "store.sqlite"
        json_writer = FileBackend(path, codec=JsonCodec(), tier_cost=-1)
        old_key = stable_digest(("exact", "old"))
        old_actions = (click(parse_selector("//a[1]")),)
        json_writer.store_entry(EXACT, old_key, old_actions, Env(), None, False)
        json_writer.flush()

        binary = FileBackend(path, codec=BinaryCodec(), tier_cost=-1)
        new_key = stable_digest(("exact", "new"))
        new_actions = (scrape_text(parse_selector("//h2[1]")),)
        binary.store_entry(EXACT, new_key, new_actions, Env(), None, True)
        binary.flush()

        reader = FileBackend(path, tier_cost=-1)
        assert reader.load_entry(EXACT, old_key)[0] == old_actions
        assert reader.load_entry(EXACT, new_key)[0] == new_actions

        conn = sqlite3.connect(path)
        rows = dict(conn.execute("SELECT key, payload FROM entries").fetchall())
        conn.close()
        assert sniff_codec(bytes(rows[old_key])).name == "json"
        assert sniff_codec(bytes(rows[new_key])).name == "binary"

    def test_binary_rows_shrink_the_same_entry(self, tmp_path):
        entry = _sample_entry()
        assert len(BinaryCodec().encode_payload(entry)) < len(
            JsonCodec().encode_payload(entry)
        )
