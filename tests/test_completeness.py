"""Theorem 5.5-style completeness round-trips.

The theorem: if some program generalizes the trace and every loop has at
least two iterations exhibited, the synthesizer returns a generalizing
program.  We randomize known task families (sizes, field counts), record
the ground truth, cut the trace at points where two iterations of every
loop are visible, and assert a correct prediction appears.

These are slower than unit tests but pin the paper's central guarantee.
"""

from hypothesis import given, settings, strategies as st

from repro.benchmarks.sites.plain_lists import NestedListSite, PlainListSite
from repro.benchmarks.sites.wiki_table import WikiTableSite
from repro.browser import record_ground_truth
from repro.lang import EMPTY_DATA, parse_program
from repro.semantics import actions_consistent
from repro.synth import SynthesisProblem, Synthesizer, satisfies
from repro.semantics.trace import DOMTrace

FLAT_GT_1 = parse_program(
    "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n  ScrapeText(i/span[1])"
)
FLAT_GT_2 = parse_program(
    "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
    "  ScrapeText(i/span[1])\n  ScrapeText(i/b[1])"
)
NESTED_GT = parse_program(
    "foreach g in Children(/html[1]/body[1], div) do\n"
    "  foreach i in Children(g/ul[1], li) do\n    ScrapeText(i)"
)
WIKI_GT = parse_program(
    "foreach w in Dscts(/, tr[@class='data']) do\n"
    "  ScrapeText(w//td[@class='name'][1])\n"
    "  ScrapeText(w//td[@class='capital'][1])"
)


def check_generalizes_at(recording, data, cut):
    """Synthesize at ``cut`` and require a correct prediction."""
    synthesizer = Synthesizer(data)
    actions, snapshots = recording.prefix(cut)
    result = synthesizer.synthesize(actions, snapshots)
    assert result.predictions, f"no prediction at cut {cut}"
    expected = recording.actions[cut]
    dom = recording.snapshots[cut]
    assert any(
        actions_consistent(option, expected, dom) for option in result.predictions
    ), f"no correct prediction at cut {cut}"
    # every returned program must satisfy the demonstration (soundness)
    problem = SynthesisProblem(tuple(actions), DOMTrace(snapshots), data)
    for program in result.programs[:5]:
        assert satisfies(program, problem)


class TestCompletenessFlatLists:
    @given(items=st.integers(3, 8), fields=st.integers(1, 2))
    @settings(max_examples=10, deadline=None)
    def test_flat_list_two_iterations_suffice(self, items, fields):
        site = PlainListSite(items, fields=fields, seed=f"c{items}{fields}")
        ground_truth = FLAT_GT_2 if fields == 2 else FLAT_GT_1
        recording = record_ground_truth(site, ground_truth)
        per_iteration = fields
        # two full iterations visible, at least one action remains
        cut = 2 * per_iteration
        if cut < recording.length:
            check_generalizes_at(recording, EMPTY_DATA, cut)

    @given(items=st.integers(4, 8))
    @settings(max_examples=6, deadline=None)
    def test_flat_list_all_later_cuts_generalize(self, items):
        site = PlainListSite(items, fields=2, seed=f"l{items}")
        recording = record_ground_truth(site, FLAT_GT_2)
        for cut in range(4, recording.length):
            check_generalizes_at(recording, EMPTY_DATA, cut)


class TestCompletenessNested:
    @given(groups=st.integers(2, 4), per_group=st.integers(2, 4))
    @settings(max_examples=8, deadline=None)
    def test_nested_lists_generalize_after_two_groups(self, groups, per_group):
        site = NestedListSite(groups, per_group, seed=f"n{groups}{per_group}")
        recording = record_ground_truth(site, NESTED_GT)
        # two full outer iterations + one more action
        cut = 2 * per_group
        if cut < recording.length:
            check_generalizes_at(recording, EMPTY_DATA, cut)


class TestCompletenessAttributeSelectors:
    @given(rows=st.integers(3, 8))
    @settings(max_examples=8, deadline=None)
    def test_wiki_rows_need_attribute_predicates(self, rows):
        site = WikiTableSite(rows, seed=f"w{rows}", header=True)
        recording = record_ground_truth(site, WIKI_GT)
        cut = 4  # two 2-field iterations
        if cut < recording.length:
            check_generalizes_at(recording, EMPTY_DATA, cut)
