"""End-to-end tests of the synthesis engine on hand-recorded traces."""

import pytest

from repro.dom import E, page, parse_selector, raw_path, resolve
from repro.lang import (
    EMPTY_DATA,
    DataSource,
    ForEachSelector,
    ForEachValue,
    WhileLoop,
    click,
    enter_data,
    format_program,
    scrape_text,
    X,
)
from repro.semantics import actions_consistent
from repro.synth import (
    DEFAULT_CONFIG,
    Synthesizer,
    no_incremental_config,
    no_selector_config,
)

from helpers import cards_page, node_at, plain_list_page, raw_action, scrape_cards_trace


def predict(synth, actions, snapshots):
    return synth.synthesize(actions, snapshots)


class TestSinglePageLoop:
    def test_scrape_two_cards_generalizes(self):
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        assert result.programs, "expected a generalizing program"
        best = result.best_program
        assert isinstance(best.statements[0], ForEachSelector)
        assert len(best.statements) == 1

    def test_prediction_is_third_card_h3(self):
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        expected = raw_action(scrape_text, dom, "//div[@class='card'][3]/h3[1]")
        assert result.best_prediction is not None
        assert actions_consistent(result.best_prediction, expected, dom)

    def test_sidebar_requires_alternative_selectors(self):
        # Cards start at body div[2]; raw child indices (2, 3) admit no
        # (1, 2) loop reading, so the no-selector ablation fails here.
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA, no_selector_config()).synthesize(
            actions, snapshots
        )
        assert result.best_prediction is None

    def test_plain_list_works_without_alternatives(self):
        dom = plain_list_page(4)
        actions = []
        for index in (1, 2):
            actions.append(raw_action(scrape_text, dom, f"//li[{index}]/span[1]"))
            actions.append(raw_action(scrape_text, dom, f"//li[{index}]/b[1]"))
        snapshots = [dom] * 5
        result = Synthesizer(EMPTY_DATA, no_selector_config()).synthesize(
            actions, snapshots
        )
        expected = raw_action(scrape_text, dom, "//li[3]/span[1]")
        assert result.best_prediction is not None
        assert actions_consistent(result.best_prediction, expected, dom)

    def test_too_short_trace_no_prediction(self):
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        for cut in (1, 2):
            result = Synthesizer(EMPTY_DATA).synthesize(
                actions[:cut], snapshots[: cut + 1]
            )
            assert result.best_prediction is None, f"no loop visible after {cut} actions"

    def test_partial_second_iteration_suffices(self):
        # Validation accepts r = j + 1: one statement beyond the first
        # iteration (Algorithm 3 line 4), so the third action already
        # admits a correct prediction of the fourth.
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA).synthesize(actions[:3], snapshots[:4])
        assert result.best_prediction is not None
        assert actions_consistent(result.best_prediction, actions[3], snapshots[3])

    def test_empty_trace(self):
        dom = cards_page(1)
        result = Synthesizer(EMPTY_DATA).synthesize([], [dom])
        assert result.programs == [] and result.predictions == []

    def test_synthesized_program_satisfies_trace(self):
        from repro.synth import SynthesisProblem, satisfies
        from repro.semantics import DOMTrace

        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        problem = SynthesisProblem(tuple(actions), DOMTrace(snapshots), EMPTY_DATA)
        for program in result.programs:
            assert satisfies(program, problem)


class TestIncrementalSession:
    def test_predictions_flow_after_first_repetition(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 6)
        synth = Synthesizer(EMPTY_DATA)
        correct = 0
        for k in range(1, len(actions)):
            result = synth.synthesize(actions[:k], snapshots[: k + 1])
            if result.best_prediction is not None and actions_consistent(
                result.best_prediction, actions[k], snapshots[k]
            ):
                correct += 1
        # predictions are possible from k=3 on (first pair + one more)
        assert correct >= len(actions) - 4

    def test_store_shrinks_via_absorption(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 6)
        synth = Synthesizer(EMPTY_DATA)
        # Stop one action short of the end: after the full demonstration
        # there is nothing left to predict, so no program generalizes.
        for k in range(4, len(actions)):
            result = synth.synthesize(actions[:k], snapshots[: k + 1])
        best = result.best_program
        assert len(best.statements) == 1
        assert isinstance(best.statements[0], ForEachSelector)

    def test_exhausted_page_stops_generalizing(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 6)
        synth = Synthesizer(EMPTY_DATA)
        for k in range(4, len(actions) + 1):
            result = synth.synthesize(actions[:k], snapshots[: k + 1])
        assert result.programs == []

    def test_non_incremental_matches_incremental_result(self):
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 3)
        inc = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        non_inc = Synthesizer(EMPTY_DATA, no_incremental_config()).synthesize(
            actions, snapshots
        )
        assert inc.best_prediction is not None
        assert non_inc.best_prediction is not None
        assert actions_consistent(
            inc.best_prediction, non_inc.best_prediction, snapshots[-1]
        )

    def test_divergent_trace_resets_store(self):
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        synth = Synthesizer(EMPTY_DATA)
        synth.synthesize(actions, snapshots)
        other_dom = plain_list_page(3)
        other_actions = [raw_action(scrape_text, other_dom, "//li[1]/span[1]")]
        result = synth.synthesize(other_actions, [other_dom] * 2)
        assert result.stats.trace_length == 1


class TestPagination:
    def make_site(self):
        page1 = cards_page(2, with_next=True)
        page2 = page(
            E("div", {"class": "sidebar"}, text="ads"),
            E("div", {"class": "card"}, E("h3", text="Store A"),
              E("div", {"class": "phone"}, text="555-1000")),
            E("div", {"class": "card"}, E("h3", text="Store B"),
              E("div", {"class": "phone"}, text="555-2000")),
            E("button", {"class": "next"}, text="next"),
        )
        page3 = page(
            E("div", {"class": "sidebar"}, text="ads"),
            E("div", {"class": "card"}, E("h3", text="Store C"),
              E("div", {"class": "phone"}, text="555-3000")),
            E("div", {"class": "card"}, E("h3", text="Store D"),
              E("div", {"class": "phone"}, text="555-4000")),
        )
        return page1, page2, page3

    def record(self, pages, scraped_on_last):
        actions, snapshots = [], []
        for page_index, current in enumerate(pages):
            is_last = page_index == len(pages) - 1
            count = scraped_on_last if is_last else 2
            for card in range(1, count + 1):
                for field in (f"//div[@class='card'][{card}]/h3[1]",
                              f"//div[@class='card'][{card}]/div[@class='phone'][1]"):
                    snapshots.append(current)
                    actions.append(raw_action(scrape_text, current, field))
            if not is_last:
                snapshots.append(current)
                actions.append(raw_action(click, current, "//button[@class='next'][1]"))
        snapshots.append(pages[len(pages) - 1])
        return actions, snapshots

    def test_while_loop_synthesized(self):
        page1, page2, page3 = self.make_site()
        actions, snapshots = self.record([page1, page2, page3], scraped_on_last=1)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        assert result.programs
        best = result.best_program
        assert len(best.statements) == 1
        assert isinstance(best.statements[0], WhileLoop)
        inner = best.statements[0].body[0]
        assert isinstance(inner, ForEachSelector)

    def test_while_prediction_continues_third_page(self):
        page1, page2, page3 = self.make_site()
        actions, snapshots = self.record([page1, page2, page3], scraped_on_last=1)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        expected = raw_action(scrape_text, page3, "//div[@class='card'][2]/h3[1]")
        assert actions_consistent(result.best_prediction, expected, page3)

    def test_incremental_pagination_session(self):
        page1, page2, page3 = self.make_site()
        actions, snapshots = self.record([page1, page2, page3], scraped_on_last=2)
        synth = Synthesizer(EMPTY_DATA)
        outcomes = {}
        for k in range(1, len(actions)):
            result = synth.synthesize(actions[:k], snapshots[: k + 1])
            outcomes[k] = result.best_prediction is not None and actions_consistent(
                result.best_prediction, actions[k], snapshots[k]
            )
        # Mirrors the paper's interaction flow: scraping continuations are
        # predicted once one repetition is visible (k=3 on page 1, k=8 on
        # page 2 — P2's analogue) and everywhere after the while loop
        # emerges at the second "next page" click (k≥10 — P3's analogue).
        for k in (3, 8, 10, 11, 12, 13):
            assert outcomes[k], f"expected a correct prediction at k={k}"
        # Pagination clicks are unpredictable before the while loop exists
        # (the paper's user demonstrates them manually), as is the very
        # first action of page 2.
        for k in (1, 2, 4, 5, 9):
            assert not outcomes[k], f"no correct prediction expected at k={k}"


class TestDataEntryLoop:
    def make_generator_site(self):
        def entry_page(value="", result=None):
            parts = [
                E("input", {"name": "who", "value": value}),
                E("button", {"class": "go"}, text="generate"),
            ]
            if result:
                parts.append(E("div", {"class": "result"}, text=result))
            return page(*parts)

        return entry_page

    def record(self, names, scrape_last=True):
        entry_page = self.make_generator_site()
        data = DataSource({"names": names})
        actions, snapshots = [], []
        current = entry_page()
        for index, name in enumerate(names, start=1):
            snapshots.append(current)
            actions.append(
                raw_action(enter_data, current, "//input[@name='who'][1]",
                           path=X.extend("names").extend(index))
            )
            current = self.make_generator_site()(value=name)
            snapshots.append(current)
            actions.append(raw_action(click, current, "//button[@class='go'][1]"))
            current = self.make_generator_site()(result=f"unicorn-{name}")
            if index < len(names) or scrape_last:
                snapshots.append(current)
                actions.append(raw_action(scrape_text, current, "//div[@class='result'][1]"))
        snapshots.append(current)
        return data, actions, snapshots

    def test_value_loop_synthesized(self):
        data, actions, snapshots = self.record(["ada", "bob", "cyd"])
        cut = 6  # two full iterations demonstrated, third remains
        result = Synthesizer(data).synthesize(actions[:cut], snapshots[: cut + 1])
        assert result.programs
        best = result.best_program
        assert len(best.statements) == 1
        loop = best.statements[0]
        assert isinstance(loop, ForEachValue)
        assert loop.collection.path.accessors == ("names",)
        assert len(loop.body) == 3

    def test_value_loop_predicts_third_entry(self):
        data, actions, snapshots = self.record(["ada", "bob", "cyd"])
        cut = 6  # stop right after the second scrape
        result = Synthesizer(data).synthesize(actions[:cut], snapshots[: cut + 1])
        prediction = result.best_prediction
        assert prediction is not None
        assert prediction.kind == "EnterData"
        assert prediction.path.accessors == ("names", 3)

    def test_fully_demonstrated_data_stops_generalizing(self):
        data, actions, snapshots = self.record(["ada", "bob"])
        result = Synthesizer(data).synthesize(actions, snapshots)
        assert result.programs == []


class TestRankingAndStats:
    def test_programs_ranked_smallest_first(self):
        from repro.lang import program_size

        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 3)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        sizes = [program_size(program) for program in result.programs]
        assert sizes == sorted(sizes)

    def test_stats_populated(self):
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        stats = result.stats
        assert stats.trace_length == 4
        assert stats.pops > 0
        assert stats.speculated > 0
        assert stats.validated > 0
        assert stats.elapsed >= 0.0

    def test_snapshot_count_validated(self):
        from repro.util import SynthesisError

        dom = cards_page(1)
        with pytest.raises(SynthesisError):
            Synthesizer(EMPTY_DATA).synthesize([], [dom, dom])
