"""The session manager (repro.service.sessions).

Covers the session lifecycle (create / record-action / candidates /
accept / reject / close) over the typed protocol messages, parity with
driving a Synthesizer directly, concurrent sessions, error paths, idle
eviction, and the stats aggregation the service reports.
"""

import threading
from dataclasses import replace

import pytest

from repro.engine.cache import reset_process_cache
from repro.lang import EMPTY_DATA
from repro.lang.data import DataSource
from repro.lang.pretty import format_program
from repro.protocol.messages import (
    Accepted,
    CandidateList,
    ProgramProposed,
    SessionClosed,
)
from repro.protocol.session import SessionClosedError, UnknownSessionError
from repro.synth.config import DEFAULT_CONFIG, serial_validation_config
from repro.synth.synthesizer import Synthesizer
from repro.service.sessions import SessionError, SessionManager

from helpers import cards_page, scrape_cards_trace


def memory_manager(**kwargs):
    """A manager pinned to the in-process backend (parity-run safe)."""
    config = replace(DEFAULT_CONFIG, cache_backend="memory")
    return SessionManager(config, **kwargs)


def served_programs(manager, sid):
    return [item.program for item in manager.candidates(sid).candidates]


class TestLifecycle:
    def test_create_record_candidates_accept_close(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 4)
            sid = manager.create(snapshots[0])
            proposed = None
            for position, action in enumerate(actions):
                proposed = manager.record_action(sid, action, snapshots[position + 1])
                assert isinstance(proposed, ProgramProposed)
                assert proposed.session == sid
                assert proposed.actions == position + 1
            assert proposed.programs > 0
            assert proposed.predictions
            listed = manager.candidates(sid)
            assert isinstance(listed, CandidateList)
            assert len(listed.candidates) == proposed.programs
            assert listed.candidates[0].index == 0
            accepted = manager.accept(sid, 0)
            assert isinstance(accepted, Accepted)
            assert accepted.program == listed.candidates[0].program
            closed = manager.close(sid)
            assert isinstance(closed, SessionClosed)
            assert closed.stats.calls == len(actions)
            assert closed.stats.actions == len(actions)
            manager.close_all()
        finally:
            reset_process_cache()

    def test_matches_a_directly_driven_synthesizer(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 4)
            direct = Synthesizer(EMPTY_DATA, serial_validation_config())
            sid = manager.create(snapshots[0])
            for position, action in enumerate(actions):
                manager.record_action(sid, action, snapshots[position + 1])
                expected = direct.synthesize(
                    actions[: position + 1], snapshots[: position + 2]
                )
                served = served_programs(manager, sid)
                assert served == [format_program(p) for p in expected.programs]
            manager.close_all()
            direct.close()
        finally:
            reset_process_cache()

    def test_sessions_carry_their_own_data_sources(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(3)
            with_data = manager.create(dom, data=DataSource({"q": ["a"]}))
            without = manager.create(dom)
            assert with_data != without
            assert set(manager.session_ids()) == {with_data, without}
            manager.close_all()
            assert manager.session_ids() == ()
        finally:
            reset_process_cache()

    def test_reject_counts_into_stats(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(3)
            sid = manager.create(dom)
            rejected = manager.reject(sid)
            assert rejected.rejections == 1
            assert manager.reject(sid).rejections == 2
            closed = manager.close(sid)
            assert closed.stats.rejections == 2
            assert manager.stats()["totals"]["rejections"] == 2
        finally:
            reset_process_cache()


class TestErrors:
    def test_unknown_session_rejected(self):
        manager = memory_manager()
        with pytest.raises(UnknownSessionError):
            manager.record_action("nope", None, None)
        with pytest.raises(UnknownSessionError):
            manager.candidates("nope")
        with pytest.raises(UnknownSessionError):
            manager.close("nope")

    def test_closed_session_is_distinguishable_from_unknown(self):
        reset_process_cache()
        try:
            manager = memory_manager()
            sid = manager.create(cards_page(2))
            manager.close(sid)
            with pytest.raises(SessionClosedError, match="closed"):
                manager.record_action(sid, None, None)
            with pytest.raises(SessionClosedError):
                manager.close(sid)
        finally:
            reset_process_cache()

    def test_accept_requires_candidates(self):
        reset_process_cache()
        try:
            manager = memory_manager()
            sid = manager.create(cards_page(3))
            with pytest.raises(SessionError):
                manager.accept(sid)
        finally:
            reset_process_cache()

    def test_accept_index_bounds(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 4)
            sid = manager.create(snapshots[0])
            for position, action in enumerate(actions):
                manager.record_action(sid, action, snapshots[position + 1])
            with pytest.raises(SessionError):
                manager.accept(sid, 10_000)
        finally:
            reset_process_cache()


class TestEviction:
    def test_idle_sessions_evicted_and_counted(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0, max_idle_s=1000.0)
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 2)
            idle = manager.create(snapshots[0])
            manager.record_action(idle, actions[0], snapshots[1])
            fresh = manager.create(snapshots[0])
            # push the idle session past the TTL without sleeping
            manager._session(idle).last_used -= 2000.0
            evicted = manager.evict_idle()
            assert evicted == 1
            stats = manager.stats()
            assert stats["sessions_evicted"] == 1
            assert stats["sessions"] == 1
            # the evicted session's work is not lost from the totals
            assert stats["totals"]["calls"] == 1
            # and touching it now reports "evicted", not "unknown"
            with pytest.raises(SessionClosedError, match="evicted"):
                manager.candidates(idle)
            assert manager.session_ids() == (fresh,)
        finally:
            reset_process_cache()

    def test_ttl_resolution_from_env(self, monkeypatch):
        from repro.service.sessions import resolved_session_ttl

        monkeypatch.delenv("REPRO_SESSION_TTL", raising=False)
        assert resolved_session_ttl(None) is None
        assert resolved_session_ttl(12.5) == 12.5
        monkeypatch.setenv("REPRO_SESSION_TTL", "30")
        assert resolved_session_ttl(None) == 30.0
        monkeypatch.setenv("REPRO_SESSION_TTL", "0")
        assert resolved_session_ttl(None) is None

    def test_busy_sessions_survive_the_sweep(self):
        reset_process_cache()
        try:
            manager = memory_manager(max_idle_s=0.001)
            sid = manager.create(cards_page(2))
            session = manager._session(sid)
            session.last_used -= 100.0
            with session.lock:  # mid-request: the sweep must skip it
                assert manager.evict_idle() == 0
            assert sid in manager.session_ids()
        finally:
            reset_process_cache()


class TestConcurrency:
    def test_concurrent_sessions_synthesize_independently(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 3)
            errors = []
            served: dict[str, list] = {}

            def drive(worker: int):
                try:
                    sid = manager.create(snapshots[0])
                    for position, action in enumerate(actions):
                        manager.record_action(sid, action, snapshots[position + 1])
                    served[sid] = served_programs(manager, sid)
                    manager.close(sid)
                except Exception as exc:  # pragma: no cover - the assertion
                    errors.append(exc)

            threads = [threading.Thread(target=drive, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            outputs = list(served.values())
            assert all(output == outputs[0] for output in outputs)
            assert outputs[0]  # the workload synthesizes programs
        finally:
            reset_process_cache()


class TestStats:
    def test_manager_stats_aggregate_live_and_closed(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 3)
            first = manager.create(snapshots[0])
            for position, action in enumerate(actions):
                manager.record_action(first, action, snapshots[position + 1])
            manager.close(first)
            second = manager.create(snapshots[0])
            for position, action in enumerate(actions):
                manager.record_action(second, action, snapshots[position + 1])
            stats = manager.stats()
            assert stats["sessions"] == 1
            assert stats["closed_sessions"] == 1
            assert stats["sessions_evicted"] == 0
            assert stats["backend"] == "memory"
            assert stats["totals"]["calls"] == 2 * len(actions)
            # the second session reuses the first's executions through
            # the process-level shared cache
            assert stats["totals"]["cross_session_hits"] > 0
        finally:
            reset_process_cache()


class TestAnalysisAnnotations:
    def test_proposal_and_candidates_carry_analysis(self):
        reset_process_cache()
        try:
            manager = memory_manager(timeout=5.0)
            dom = cards_page(5)
            actions, snapshots = scrape_cards_trace(dom, 4)
            sid = manager.create(snapshots[0])
            proposed = None
            for position, action in enumerate(actions):
                proposed = manager.record_action(sid, action, snapshots[position + 1])
            assert proposed.analysis is not None
            assert proposed.analysis.effect == "read-only"
            assert proposed.analysis.safe_replay is True
            assert proposed.analysis.termination == "terminating"
            listed = manager.candidates(sid)
            assert all(item.analysis is not None for item in listed.candidates)
            manager.close_all()
        finally:
            reset_process_cache()

    def test_accept_guard_refuses_mutating_program(self):
        from repro.lang import parse_program
        from repro.protocol.session import Session
        from repro.synth.synthesizer import SynthesisResult

        session = Session("s1", EMPTY_DATA)
        session.start(cards_page(2))
        mutating = parse_program('SendKeys(//input[@name=\'q\'][1], "term")')
        session.last_result = SynthesisResult(programs=[mutating])
        with pytest.raises(SessionError, match="refusing"):
            session.accept(0, require_safe_replay=True)
        # the plain accept is the explicit override
        accepted = session.accept(0)
        assert accepted.index == 0
        session.close()

    def test_accept_guard_passes_read_only_program(self):
        from repro.lang import parse_program
        from repro.protocol.session import Session
        from repro.synth.synthesizer import SynthesisResult

        session = Session("s1", EMPTY_DATA)
        session.start(cards_page(2))
        session.last_result = SynthesisResult(
            programs=[parse_program("ScrapeText(//h3[1])")]
        )
        accepted = session.accept(0, require_safe_replay=True)
        assert accepted.program == "ScrapeText(//h3[1])"
        session.close()
