"""The standalone cache tier (repro.fleet.cache_server) and the shared
keep-alive pool (repro.fleet.pool).

Boots a real cache server on an ephemeral port and speaks the payload
wire protocol at it raw — hex keys, codec payload dicts — pinning batch
get/put semantics, write-buffer visibility (a put is readable before
the SQLite flush), content negotiation, the health/stats/metrics
routes, and that malformed requests come back 400, never 500.
"""

import threading
from http.client import HTTPConnection

import pytest

from repro.fleet.cache_server import make_cache_server
from repro.fleet.pool import ConnectionPool, pool, reset_pool
from repro.protocol.codec import resolve_codec, sniff_codec
from repro.service.backends import EXACT

JSON = resolve_codec("json")
BINARY = resolve_codec("binary")


@pytest.fixture
def cache(tmp_path):
    """A cache server thread on an ephemeral port, torn down afterwards."""
    server = make_cache_server(port=0, path=str(tmp_path / "cache.sqlite"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.store.close()
        thread.join(timeout=5)


def _post(server, path, payload, codec=JSON, accept=None):
    host, port = server.server_address[:2]
    connection = HTTPConnection(host, port, timeout=10.0)
    try:
        connection.request(
            "POST",
            path,
            body=codec.encode_payload(payload),
            headers={
                "Content-Type": codec.content_type,
                "Accept": (accept or codec).content_type,
            },
        )
        response = connection.getresponse()
        body = response.read()
    finally:
        connection.close()
    return response, body


def _get(server, path):
    host, port = server.server_address[:2]
    connection = HTTPConnection(host, port, timeout=10.0)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read()
    finally:
        connection.close()
    return response, body


KEY = b"\x01" * 16
PAYLOAD = {"v": 42}


class TestWireProtocol:
    def test_put_then_get_round_trips(self, cache):
        response, body = _post(
            cache, "/v1/cache/put", {"e": [[2, KEY.hex(), PAYLOAD]]}
        )
        assert response.status == 200
        ack = JSON.decode_payload(body)
        assert ack["stored"] == 1
        response, body = _get_entries(cache, [[2, KEY.hex()]])
        assert response.status == 200
        assert body["e"] == [PAYLOAD]

    def test_get_misses_are_nulls_in_order(self, cache):
        _post(cache, "/v1/cache/put", {"e": [[2, KEY.hex(), PAYLOAD]]})
        response, body = _get_entries(
            cache, [[2, (b"\x02" * 16).hex()], [2, KEY.hex()]]
        )
        assert response.status == 200
        assert body["e"] == [None, PAYLOAD]

    def test_put_is_readable_before_the_sqlite_flush(self, cache):
        # the store buffers writes (flush_every rows); a get from another
        # worker must still see the row immediately
        assert cache.store._pending or cache.store.flush_every > 1
        _post(cache, "/v1/cache/put", {"e": [[0, KEY.hex(), {"a": []}]]})
        _, body = _get_entries(cache, [[0, KEY.hex()]])
        assert body["e"] == [{"a": []}]

    def test_put_ack_carries_store_totals(self, cache):
        _, body = _post(
            cache,
            "/v1/cache/put",
            {"e": [[2, KEY.hex(), PAYLOAD], [2, (b"\x02" * 16).hex(), PAYLOAD]]},
        )
        ack = JSON.decode_payload(body)
        assert ack["entries"] == 2
        assert ack["bytes"] > 0

    def test_binary_request_json_response_negotiation(self, cache):
        response, body = _post(
            cache,
            "/v1/cache/put",
            {"e": [[2, KEY.hex(), PAYLOAD]]},
            codec=BINARY,
            accept=JSON,
        )
        assert response.status == 200
        assert response.getheader("Content-Type") == JSON.content_type
        assert JSON.decode_payload(body)["stored"] == 1


def _get_entries(cache, keys):
    response, body = _post(cache, "/v1/cache/get", {"k": keys})
    return response, (JSON.decode_payload(body) if response.status == 200 else body)


class TestBadRequests:
    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no "k"
            {"k": "nope"},  # not a list
            {"k": [[9, KEY.hex()]]},  # unknown kind
            {"k": [[0, "zz"]]},  # not hex
            {"k": [[0, ""]]},  # empty key
            {"k": [[0]]},  # short row
        ],
    )
    def test_malformed_get_is_400(self, cache, payload):
        response, body = _post(cache, "/v1/cache/get", payload)
        assert response.status == 400
        assert JSON.decode_payload(body)["error"] == "bad_request"

    def test_malformed_put_row_is_400(self, cache):
        response, _ = _post(
            cache, "/v1/cache/put", {"e": [[EXACT, KEY.hex(), "not a dict"]]}
        )
        assert response.status == 400

    def test_unknown_routes_are_404(self, cache):
        response, _ = _get(cache, "/nope")
        assert response.status == 404
        response, _ = _post(cache, "/v1/nope", {})
        assert response.status == 404

    def test_garbage_body_is_400_not_500(self, cache):
        host, port = cache.server_address[:2]
        connection = HTTPConnection(host, port, timeout=10.0)
        try:
            connection.request("POST", "/v1/cache/get", body=b"\xff\xfe garbage")
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()


class TestOperationalRoutes:
    def test_healthz_names_the_role(self, cache):
        response, body = _get(cache, "/healthz")
        health = sniff_codec(body).decode_payload(body)
        assert health["ok"] is True
        assert health["role"] == "cache"

    def test_stats_reflect_traffic(self, cache):
        _post(cache, "/v1/cache/put", {"e": [[2, KEY.hex(), PAYLOAD]]})
        _get_entries(cache, [[2, KEY.hex()]])
        _, body = _get(cache, "/v1/stats")
        stats = sniff_codec(body).decode_payload(body)
        assert stats["role"] == "cache"
        assert stats["entries"] == 1
        assert stats["loads"] >= 1

    def test_metrics_route_counts_hits_and_misses(self, cache):
        _post(cache, "/v1/cache/put", {"e": [[2, KEY.hex(), PAYLOAD]]})
        _get_entries(cache, [[2, KEY.hex()], [2, (b"\x03" * 16).hex()]])
        response, body = _get(cache, "/v1/metrics")
        assert response.status == 200
        text = body.decode("utf-8")
        assert 'repro_cache_server_requests_total{op="get",outcome="hit"}' in text
        assert 'repro_cache_server_requests_total{op="get",outcome="miss"}' in text


class TestConnectionPool:
    def test_release_then_acquire_reuses(self, cache):
        host, port = cache.server_address[:2]
        shared = ConnectionPool()
        first = shared.acquire(host, port, timeout=5.0)
        first.request("GET", "/healthz")
        first.getresponse().read()
        shared.release(host, port, first)
        assert shared.idle_count(host, port) == 1
        again = shared.acquire(host, port, timeout=2.0)
        assert again is first
        assert again.timeout == 2.0  # the new caller's budget applies
        assert shared.stats()["reused"] == 1
        shared.discard(again)

    def test_overflow_release_discards(self):
        shared = ConnectionPool(max_idle_per_host=1)
        a = shared.acquire("127.0.0.1", 1)
        b = shared.acquire("127.0.0.1", 1)
        shared.release("127.0.0.1", 1, a)
        shared.release("127.0.0.1", 1, b)
        assert shared.idle_count("127.0.0.1", 1) == 1
        assert shared.stats()["discarded"] == 1
        shared.clear()

    def test_process_pool_reset(self):
        shared = pool()
        shared.acquire("127.0.0.1", 1)
        assert shared.stats()["created"] >= 1
        reset_pool()
        assert pool().stats() == {
            "created": 0,
            "reused": 0,
            "discarded": 0,
            "idle": 0,
        }
