"""Pipelined scheduling + resumable loop execution (PR: streaming latency).

Three properties pinned here:

1. **Pipeline parity** — :class:`PipelineScheduler` must synthesize
   byte-identical ranked output to :class:`SerialScheduler`: the
   per-pop drain barrier means overlap changes the wall clock, never
   the schedule's observable order.  Pinned on a real benchmark sweep
   and property-based over randomized traces, at zero workers (inline
   drain) and with the wave pool engaged.

2. **Resumable-loop correctness** — continuation entries are a pure
   optimization: a session with ``resumable_loops`` on must produce
   exactly the output of the same session with it off, while actually
   taking resume hits; and the engine-level stitched result must equal
   a from-scratch execution on every growing window.

3. **Deadline-clip accounting** — a deadline firing mid-wave must
   never let the wave loop re-take settled candidates: no candidate is
   validated twice and ``stats.validated`` equals the pushes applied.
"""

import types
from dataclasses import replace

from hypothesis import given, settings

from repro.benchmarks.suite import benchmark_by_id
from repro.lang import EMPTY_DATA
from repro.lang.ast import canonical_program
from repro.semantics import evaluator
from repro.semantics.trace import DOMTrace
from repro.engine.engine import ExecutionEngine
from repro.synth import scheduler as scheduler_module
from repro.synth.config import (
    DEFAULT_CONFIG,
    pipeline_config,
    resolved_pipeline,
    serial_validation_config,
)
from repro.synth.scheduler import (
    PipelineScheduler,
    PoolScheduler,
    SerialScheduler,
)
from repro.synth.synthesizer import Synthesizer

from helpers import cards_page, scrape_cards_trace
from test_synth_scheduler import TIMEOUT, _session_outputs, random_traces


def _pipeline_synthesizer(data, workers: int = 0) -> Synthesizer:
    """A pipelined synthesizer forced to exercise the wave pool."""
    synthesizer = Synthesizer(data, pipeline_config(workers=workers))
    if workers >= 2:
        synthesizer._scheduler = PipelineScheduler(workers, min_batch=2)
    return synthesizer


class TestPipelineConfig:
    def test_pipeline_accepts_zero_workers(self):
        scheduler = PipelineScheduler(0)
        assert scheduler.workers == 0
        scheduler.close()
        scheduler.close()  # idempotent

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE", "1")
        assert resolved_pipeline(DEFAULT_CONFIG)
        # an explicit config value beats the environment
        assert not resolved_pipeline(serial_validation_config())
        monkeypatch.delenv("REPRO_PIPELINE")
        assert not resolved_pipeline(DEFAULT_CONFIG)

    def test_synthesizer_wires_the_env_pipeline(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE", "1")
        synthesizer = Synthesizer(EMPTY_DATA)
        try:
            assert isinstance(synthesizer.scheduler, PipelineScheduler)
        finally:
            synthesizer.close()

    def test_serial_config_pins_pipeline_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE", "1")
        synthesizer = Synthesizer(EMPTY_DATA, serial_validation_config())
        try:
            assert isinstance(synthesizer.scheduler, SerialScheduler)
        finally:
            synthesizer.close()


class TestPipelineSerialParity:
    def test_benchmark_sweep(self):
        """Every prefix of a real benchmark: identical ranked output."""
        recording = benchmark_by_id("b12").record()
        length = min(recording.length - 1, 16)
        actions, snapshots = recording.prefix(length)
        serial = Synthesizer(benchmark_by_id("b12").data, serial_validation_config())
        inline = _pipeline_synthesizer(benchmark_by_id("b12").data, workers=0)
        pooled = _pipeline_synthesizer(benchmark_by_id("b12").data, workers=4)
        try:
            expected = _session_outputs(serial, actions, snapshots)
            assert _session_outputs(inline, actions, snapshots) == expected
            assert _session_outputs(pooled, actions, snapshots) == expected
        finally:
            serial.close()
            inline.close()
            pooled.close()

    @given(random_traces())
    @settings(max_examples=15, deadline=None)
    def test_pipeline_equals_serial_on_randomized_traces(self, trace):
        actions, snapshots = trace
        serial = Synthesizer(EMPTY_DATA, serial_validation_config())
        pipelined = _pipeline_synthesizer(EMPTY_DATA, workers=4)
        try:
            assert _session_outputs(serial, actions, snapshots) == _session_outputs(
                pipelined, actions, snapshots
            )
        finally:
            serial.close()
            pipelined.close()

    def test_phase_times_are_recorded(self):
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 4)
        pipelined = _pipeline_synthesizer(EMPTY_DATA, workers=0)
        try:
            for cut in range(1, len(actions) + 1):
                stats = pipelined.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT
                ).stats
            assert stats.speculate_s > 0.0
            assert stats.validate_s >= 0.0
            assert stats.extend_s >= 0.0
        finally:
            pipelined.close()


class TestResumableLoops:
    def test_session_output_identical_with_resume_off(self):
        """Continuations are invisible: byte-identical ranked output."""
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 5)
        resuming = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        baseline = Synthesizer(
            EMPTY_DATA, replace(DEFAULT_CONFIG, resumable_loops=False)
        )
        try:
            resume_total = 0
            for cut in range(1, len(actions) + 1):
                grown = resuming.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT
                )
                flat = baseline.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT
                )
                resume_total += grown.stats.cache_resume_hits
                assert flat.stats.cache_resume_hits == 0
                assert [canonical_program(p) for p in grown.programs] == [
                    canonical_program(p) for p in flat.programs
                ]
                assert [str(a) for a in grown.predictions] == [
                    str(a) for a in flat.predictions
                ]
            # the optimization actually engaged on this loop-heavy trace
            assert resume_total > 0
        finally:
            resuming.close()
            baseline.close()

    def test_growing_session_matches_from_scratch(self):
        """One-action-at-a-time growth vs a fresh synthesizer per cut.

        The incremental store retains rewrites a one-shot call would
        not rediscover, so the ranked *lists* may differ in length —
        but the winning program and every prediction must agree.
        """
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 5)
        session = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        try:
            resume_total = 0
            for cut in range(1, len(actions) + 1):
                grown = session.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT
                )
                resume_total += grown.stats.cache_resume_hits
                scratch_synth = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
                scratch = scratch_synth.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT
                )
                scratch_synth.close()
                grown_best = grown.best_program
                scratch_best = scratch.best_program
                assert (grown_best is None) == (scratch_best is None)
                if grown_best is not None:
                    assert canonical_program(grown_best) == canonical_program(
                        scratch_best
                    )
                assert [str(a) for a in grown.predictions] == [
                    str(a) for a in scratch.predictions
                ]
            assert resume_total > 0
        finally:
            session.close()

    def test_engine_resume_matches_fresh_execution(self):
        """The stitched resume equals from-scratch on every window."""
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 5)
        synthesizer = Synthesizer(EMPTY_DATA, serial_validation_config())
        program = synthesizer.synthesize(actions, snapshots, timeout=TIMEOUT).best_program
        synthesizer.close()
        assert program is not None
        statement = program.statements[0]

        engine = ExecutionEngine.for_config(EMPTY_DATA, DEFAULT_CONFIG)
        for end in range(1, len(snapshots) + 1):
            window = DOMTrace(snapshots, 0, end)
            resumed = engine.execute(
                [statement], window, max_actions=len(window), resumable=True
            )
            fresh = evaluator.execute([statement], window, EMPTY_DATA)
            assert resumed.actions == fresh.actions
            assert resumed.env.fingerprint() == fresh.env.fingerprint()
        assert engine.counters().resume_hits > 0


class _CountdownDeadline:
    """A deadline that reports expired after ``allowed`` checks."""

    def __init__(self, allowed: int) -> None:
        self.allowed = allowed

    def expired(self) -> bool:
        self.allowed -= 1
        return self.allowed < 0


class _CaptureScheduler(SerialScheduler):
    """Serial schedule that records every pop it processes."""

    def __init__(self) -> None:
        self.pops = []

    def process_pop(self, current, candidates, context, deadline, stats, push):
        self.pops.append((current, list(candidates), context))
        super().process_pop(current, candidates, context, deadline, stats, push)


class TestDeadlineClipAccounting:
    def test_clipped_waves_never_double_validate(self, monkeypatch):
        """A mid-wave deadline must not re-take settled candidates.

        Replays the largest real candidate list through the pool under
        a deadline that clips at every possible position: stale span
        accounting would re-dispatch (and double-count) candidates a
        previous wave already settled.
        """
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 5)
        capture = _CaptureScheduler()
        synthesizer = Synthesizer(EMPTY_DATA, serial_validation_config())
        synthesizer._scheduler = capture
        for cut in range(1, len(actions) + 1):
            synthesizer.synthesize(actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT)
        current, candidates, context = max(capture.pops, key=lambda p: len(p[1]))
        assert len(candidates) >= 4

        real_validate = scheduler_module.validate
        for allowed in range(0, 2 * len(candidates) + 4):
            calls: dict[int, int] = {}

            def counting_validate(candidate, tuple_, ctx):
                calls[id(candidate)] = calls.get(id(candidate), 0) + 1
                return real_validate(candidate, tuple_, ctx)

            monkeypatch.setattr(scheduler_module, "validate", counting_validate)
            pool = PoolScheduler(2, min_batch=2)
            stats = types.SimpleNamespace(
                validated=0, validations=0, pruned=0, timed_out=False
            )
            pushes = []
            try:
                pool.process_pop(
                    current,
                    list(candidates),
                    context,
                    _CountdownDeadline(allowed),
                    stats,
                    pushes.append,
                )
            finally:
                pool.close()
                monkeypatch.setattr(scheduler_module, "validate", real_validate)
            assert all(count == 1 for count in calls.values()), (
                f"candidate validated twice with deadline at {allowed}"
            )
            assert stats.validated == len(pushes)
        synthesizer.close()
