"""Edge cases of ``Synthesizer._prune_store`` (the incremental-store cap)."""

from dataclasses import replace

from repro.dom import raw_path
from repro.lang import EMPTY_DATA, scrape_text
from repro.semantics import actions_consistent
from repro.synth import DEFAULT_CONFIG, Synthesizer
from repro.synth.rewrite import initial_tuple

from helpers import cards_page, node_at, scrape_cards_trace


def singleton_prefix_store(actions, lengths):
    """A store of all-singleton tuples over the given prefix lengths.

    ``initial_tuple`` over a ``k``-prefix yields a ``k``-statement tuple;
    distinct lengths give distinct dedup keys, and the longest one plays
    the role of the all-singleton tuple of the full trace.
    """
    store = {}
    for length in lengths:
        tuple_ = initial_tuple(actions[:length])
        store[tuple_.key()] = tuple_
    return store


def capped_synthesizer(cap):
    return Synthesizer(EMPTY_DATA, replace(DEFAULT_CONFIG, max_store_tuples=cap))


class TestPruneStore:
    def test_store_exactly_at_cap_is_untouched(self):
        dom = cards_page(5)
        actions, _ = scrape_cards_trace(dom, 4)
        synth = capped_synthesizer(3)
        store = singleton_prefix_store(actions, [2, 4, 8])
        synth._store = dict(store)
        synth._prune_store()
        assert synth._store == store

    def test_one_over_cap_drops_the_second_largest(self):
        dom = cards_page(5)
        actions, _ = scrape_cards_trace(dom, 4)
        synth = capped_synthesizer(3)
        store = singleton_prefix_store(actions, [2, 4, 6, 8])
        synth._store = dict(store)
        synth._prune_store()
        lengths = sorted(t.length for t in synth._store.values())
        # cap-1 smallest plus the maximal (all-singleton) tuple survive
        assert len(synth._store) == 3
        assert lengths == [2, 4, 8]

    def test_all_singleton_tuple_always_survives(self):
        dom = cards_page(5)
        actions, _ = scrape_cards_trace(dom, 4)
        synth = capped_synthesizer(2)
        store = singleton_prefix_store(actions, [1, 2, 3, 4, 5, 6, 7, 8])
        full = initial_tuple(actions)
        synth._store = dict(store)
        synth._prune_store()
        assert len(synth._store) == 2
        survivors = sorted(t.length for t in synth._store.values())
        assert survivors == [1, len(actions)]
        assert full.key() in synth._store


class TestPruneStoreEndToEnd:
    def test_tiny_cap_still_predicts_incrementally(self):
        # P0's extension seeds spans no rewrite can express; with a tiny
        # store the session must keep generalizing across calls
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 5)
        synth = capped_synthesizer(2)
        result = None
        for cut in range(1, len(actions) + 1):
            result = synth.synthesize(actions[:cut], snapshots[: cut + 1])
            assert len(synth._store) <= 2
        assert result.best_prediction is not None
        expected = scrape_text(raw_path(node_at(dom, "//div[@class='card'][6]/h3[1]")))
        assert actions_consistent(result.best_prediction, expected, dom)
