"""Property-based tests for the DOM substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.dom import (
    E,
    parse_selector,
    raw_path,
    resolve,
)
from repro.dom.xpath import CHILD, DESC, ConcreteSelector, Predicate, Step

TAGS = ("div", "span", "li", "h3", "a", "p")
CLASSES = ("", "card", "row", "item", "meta")


@st.composite
def dom_trees(draw, max_depth=3):
    """Random small frozen pages."""

    def node(depth):
        tag = draw(st.sampled_from(TAGS))
        cls = draw(st.sampled_from(CLASSES))
        attrs = {"class": cls} if cls else {}
        children = []
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                children.append(node(depth + 1))
        text = draw(st.sampled_from(["", "x", "hello"]))
        return E(tag, attrs, *children, text=text)

    body = node(0)
    root = E("html", E("body", body))
    return root.freeze()


@st.composite
def selectors(draw):
    """Random concrete selectors (not necessarily resolvable)."""
    steps = []
    for _ in range(draw(st.integers(1, 4))):
        axis = draw(st.sampled_from([CHILD, DESC]))
        tag = draw(st.sampled_from(TAGS))
        cls = draw(st.sampled_from(CLASSES))
        pred = Predicate(tag, "class", cls) if cls and draw(st.booleans()) else Predicate(tag)
        steps.append(Step(axis, pred, draw(st.integers(1, 3))))
    return ConcreteSelector(tuple(steps))


class TestDomProperties:
    @given(dom_trees())
    @settings(max_examples=60, deadline=None)
    def test_raw_path_round_trips_for_every_node(self, root):
        for node in root.iter_subtree():
            assert resolve(raw_path(node), root) is node

    @given(dom_trees())
    @settings(max_examples=40, deadline=None)
    def test_document_order_is_stable(self, root):
        nodes = list(root.iter_subtree())
        assert nodes[0] is root
        # each node appears exactly once
        assert len({id(node) for node in nodes}) == len(nodes)

    @given(dom_trees())
    @settings(max_examples=40, deadline=None)
    def test_structural_key_equal_for_clones(self, root):
        assert root.clone().structural_key() == root.structural_key()

    @given(selectors())
    @settings(max_examples=80, deadline=None)
    def test_selector_parse_print_round_trip(self, selector):
        assert parse_selector(str(selector)) == selector

    @given(dom_trees(), selectors())
    @settings(max_examples=80, deadline=None)
    def test_resolution_is_deterministic_and_cached(self, root, selector):
        first = resolve(selector, root)
        second = resolve(selector, root)
        assert first is second  # including the None case

    @given(dom_trees(), selectors())
    @settings(max_examples=60, deadline=None)
    def test_resolved_node_belongs_to_tree(self, root, selector):
        node = resolve(selector, root)
        if node is not None:
            assert node.root() is root
