"""Focused tests: iMacros export of the harder loop shapes.

`test_export.py` covers dispatch and the common shapes; these tests pin
down the translations that are easy to get subtly wrong — nested
selector loops (variable-based collection bases), paginate loops
(counter substitution), and value loops nested inside selector loops.
"""

from __future__ import annotations

import pytest

from repro.export import to_imacros
from repro.lang import parse_program
from repro.lang.ast import (
    ActionStmt,
    CounterTemplate,
    PaginateLoop,
    Program,
    SCRAPE_TEXT,
    Selector,
)
from repro.dom.xpath import CHILD, DESC, Predicate, Step

from test_export import balanced_braces

NESTED = """
foreach g in Dscts(/, div[@class='group']) do
  foreach r in Children(g, li) do
    ScrapeText(r/span[1])
"""


class TestNestedLoops:
    def test_inner_collection_base_is_the_outer_element(self):
        source = to_imacros(parse_program(NESTED))
        assert balanced_braces(source)
        # inner Children collection splices the outer element's path
        assert 'element_1 + "/li[" + index_2 + "]"' in source

    def test_inner_body_uses_inner_element(self):
        source = to_imacros(parse_program(NESTED))
        assert 'under(element_2, "{origin}/span[1]")' in source

    def test_probe_guards_both_loops(self):
        source = to_imacros(parse_program(NESTED))
        assert source.count("if (!probe(element_") == 2


class TestValueLoopNesting:
    def test_value_loop_inside_selector_loop(self):
        text = (
            "foreach r in Dscts(/, form) do\n"
            '  foreach d in ValuePaths(x["terms"]) do\n'
            "    EnterData(r//input[1], d)"
        )
        source = to_imacros(parse_program(text))
        assert balanced_braces(source)
        assert "for (var vi_1 = 0; vi_1 < data['terms'].length; vi_1++)" in source
        assert "content(value_1)" in source


class TestPaginateExport:
    def make_paginate(self) -> Program:
        template = CounterTemplate(
            prefix_steps=(Step(CHILD, Predicate("html"), 1),),
            axis=DESC,
            tag="a",
            attr="data-page",
            value_prefix="",
            value_suffix="",
        )
        body = (ActionStmt(SCRAPE_TEXT, Selector(None, (Step(DESC, Predicate("h3"), 1),))),)
        advance = Selector(None, (Step(DESC, Predicate("a", "class", "next-block"), 1),))
        return Program((PaginateLoop(body, template, advance, start=2),))

    def test_counter_substituted_at_runtime(self):
        source = to_imacros(self.make_paginate())
        assert balanced_braces(source)
        assert "var page_1 = 2;" in source
        assert '.split("{k}").join(String(page_1));' in source

    def test_advance_button_is_second_choice(self):
        source = to_imacros(self.make_paginate())
        numbered_at = source.index("if (probe(numbered_1))")
        advance_at = source.index("if (probe(advance_1))")
        assert numbered_at < advance_at
        assert source.index("break;") > advance_at

    def test_template_hole_marker_survives_quoting(self):
        source = to_imacros(self.make_paginate())
        assert "{k}" in source
        assert '@data-page=\'{k}\'' in source
