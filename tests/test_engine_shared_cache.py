"""The process-level shared execution cache (repro.engine.cache).

Covers the concurrency surface PR 3 introduced: lock-striped shards,
per-session counter views with cross-session hit attribution, snapshot
interning (including its race behaviour), byte accounting with LRU
eviction, and the process-wide singleton.
"""

import threading

from repro.dom import E, page
from repro.engine.cache import (
    CacheCounters,
    ExecutionCache,
    SharedExecutionCache,
    process_cache,
    reset_process_cache,
)
from repro.engine.index import index_for
from repro.lang import EMPTY_DATA
from repro.lang.data import DataSource
from repro.lang.ast import canonical_program
from repro.synth.config import parallel_validation_config, serial_validation_config
from repro.synth.synthesizer import Synthesizer

from helpers import cards_page, scrape_cards_trace


class TestCounters:
    def test_merge_sums_every_field(self):
        left = CacheCounters(hits=3, misses=2, evictions=1, exact_hits=1,
                             prefix_hits=1, consistency_hits=1, cross_session_hits=1)
        right = CacheCounters(hits=5, misses=1, evictions=0, exact_hits=2,
                              prefix_hits=2, consistency_hits=1, cross_session_hits=4)
        left.merge(right)
        assert left == CacheCounters(hits=8, misses=3, evictions=1, exact_hits=3,
                                     prefix_hits=3, consistency_hits=2,
                                     cross_session_hits=5)

    def test_explicit_recorder_counts_alongside_the_cache_aggregate(self):
        cache = ExecutionCache(8)
        worker = CacheCounters()
        cache.put(("base",), (1,), 1, ("a",), None, pins=(), counters=worker)
        assert cache.get(("base",), (1,), 1, counters=worker) is not None
        assert cache.get(("other",), (1,), 1, counters=worker) is None
        # the worker's private recorder and the cache's own (shard-level
        # aggregate) counters both saw the traffic — merge-based
        # accumulation never loses counts to either side
        assert (worker.hits, worker.misses) == (1, 1)
        assert (cache.counters.hits, cache.counters.misses) == (1, 1)
        # traffic without an explicit recorder lands on the aggregate only
        assert cache.get(("base",), (1,), 1) is not None
        assert cache.counters.hits == 2
        assert worker.hits == 1


class TestByteAccounting:
    def test_bytes_grow_with_entries_and_shrink_on_eviction(self):
        cache = ExecutionCache(max_entries=2)
        assert cache.approx_bytes == 0
        cache.put(("a",), (1,), 1, ("x",), None, pins=())
        one_entry = cache.approx_bytes
        assert one_entry > 0
        cache.put(("b",), (2,), 1, ("x", "y"), None, pins=())
        two_entries = cache.approx_bytes
        assert two_entries > one_entry
        # third insert evicts the oldest: bytes stay bounded, counted
        cache.put(("c",), (3,), 1, ("x",), None, pins=())
        assert cache.counters.evictions == 1
        assert cache.approx_bytes < two_entries + one_entry
        assert len(cache) <= 2

    def test_shared_cache_aggregates_shard_bytes(self):
        shared = SharedExecutionCache(max_entries=64, shards=4)
        session = shared.session()
        for index in range(10):
            session.put((f"k{index}",), (index,), 1, ("a",), None, pins=())
        assert shared.approx_bytes > 0
        assert len(shared) == 10
        shared.clear()
        assert shared.approx_bytes == 0
        assert len(shared) == 0


class TestSessions:
    def test_sessions_share_entries_and_attribute_cross_hits(self):
        shared = SharedExecutionCache(max_entries=64, shards=2)
        writer, reader = shared.session(), shared.session()
        writer.put(("base",), (1,), 1, ("a",), None, pins=())
        assert writer.get(("base",), (1,), 1) is not None
        assert writer.counters.cross_session_hits == 0  # own entry
        assert reader.get(("base",), (1,), 1) is not None
        assert reader.counters.cross_session_hits == 1
        assert reader.counters.hits == 1
        # shard-level (global) counters saw both hits
        assert shared.counters().hits == 2

    def test_consistency_memo_is_shared_too(self):
        shared = SharedExecutionCache(max_entries=64, shards=2)
        writer, reader = shared.session(), shared.session()
        writer.put_consistency(("key",), 3, pins=())
        assert reader.get_consistency(("key",)) == 3
        assert reader.counters.consistency_hits == 1
        assert reader.counters.cross_session_hits == 1


class TestInterning:
    def test_structurally_equal_roots_collapse(self):
        shared = SharedExecutionCache()
        first = cards_page(3)
        second = cards_page(3).clone().freeze()
        assert first is not second
        assert shared.intern_snapshot(first) is first
        assert shared.intern_snapshot(second) is first
        assert shared.intern_hits == 1
        assert shared.interned_snapshots == 1
        assert shared.interned_bytes > 0
        # interned sessions share one SnapshotIndex (and its enum_memo)
        assert index_for(shared.intern_snapshot(second)) is index_for(first)

    def test_different_structures_stay_distinct(self):
        shared = SharedExecutionCache()
        assert shared.intern_snapshot(cards_page(3)) is not shared.intern_snapshot(
            cards_page(4)
        )
        assert shared.interned_snapshots == 2

    def test_unfrozen_snapshots_pass_through(self):
        shared = SharedExecutionCache()
        mutable = E("div")
        assert shared.intern_snapshot(mutable) is mutable
        assert shared.interned_snapshots == 0

    def test_interning_lru_evicts_and_counts(self):
        shared = SharedExecutionCache(max_snapshots=2)
        shared.intern_snapshot(cards_page(2))
        shared.intern_snapshot(cards_page(3))
        before = shared.interned_bytes
        shared.intern_snapshot(cards_page(4))
        assert shared.snapshot_evictions == 1
        assert shared.interned_snapshots == 2
        assert shared.interned_bytes <= before + 10_000

    def test_concurrent_interning_yields_one_canonical(self):
        # the race the intern lock exists for: N threads intern distinct
        # structurally equal clones at once; everyone must get the same
        # canonical root and the table must hold exactly one entry
        shared = SharedExecutionCache()
        template = cards_page(5)
        clones = [template.clone().freeze() for _ in range(8)]
        results = [None] * len(clones)
        barrier = threading.Barrier(len(clones))

        def intern(position, root):
            barrier.wait()
            results[position] = shared.intern_snapshot(root)

        threads = [
            threading.Thread(target=intern, args=(position, root))
            for position, root in enumerate(clones)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.interned_snapshots == 1
        canonical = results[0]
        assert all(result is canonical for result in results)
        assert shared.intern_hits == len(clones) - 1

    def test_concurrent_shard_traffic_stays_consistent(self):
        shared = SharedExecutionCache(max_entries=256, shards=4)
        sessions = [shared.session() for _ in range(4)]
        errors = []

        def hammer(session, salt):
            try:
                for index in range(200):
                    key = (f"k{(index + salt) % 50}",)
                    session.put(key, (index % 7,), 1, ("a",), None, pins=())
                    session.get(key, (index % 7,), 1)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(session, salt))
            for salt, session in enumerate(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        merged = shared.counters()
        assert merged.hits + merged.misses == 4 * 200
        assert merged.hits == merged.exact_hits + merged.prefix_hits + merged.consistency_hits


class TestDataInterning:
    def test_equal_content_sources_collapse(self):
        shared = SharedExecutionCache()
        first = DataSource({"zips": [10001, 10002]})
        second = DataSource({"zips": [10001, 10002]})
        other = DataSource({"zips": [90210]})
        assert shared.intern_data(first) is first
        assert shared.intern_data(second) is first
        assert shared.intern_data(other) is other

    def test_sessions_with_separately_loaded_data_still_share(self):
        # each session 'loads' its own equal-content data source (the
        # repeated-CLI-invocation shape); execution keys address the
        # source by id, so sharing depends on for_config interning it
        reset_process_cache()
        try:
            config = parallel_validation_config(workers=0, shared=True)
            actions, _ = scrape_cards_trace(cards_page(5), 4)
            snaps_a = [cards_page(5).clone().freeze()] * (len(actions) + 1)
            snaps_b = [cards_page(5).clone().freeze()] * (len(actions) + 1)
            session_a = Synthesizer(DataSource({"q": ["a", "b"]}), config)
            session_b = Synthesizer(DataSource({"q": ["a", "b"]}), config)
            for cut in range(1, len(actions) + 1):
                session_a.synthesize(actions[:cut], snaps_a[: cut + 1])
            cross = 0
            for cut in range(1, len(actions) + 1):
                result = session_b.synthesize(actions[:cut], snaps_b[: cut + 1])
                cross += result.stats.cache_cross_session_hits
            assert cross > 0
        finally:
            reset_process_cache()


class TestCrossSessionSynthesis:
    def test_two_sessions_over_the_same_site_share_executions(self):
        reset_process_cache()
        try:
            config = parallel_validation_config(workers=0, shared=True)
            actions, _ = scrape_cards_trace(cards_page(5), 4)
            dom_a = cards_page(5).clone().freeze()
            dom_b = cards_page(5).clone().freeze()
            snaps_a = [dom_a] * (len(actions) + 1)
            snaps_b = [dom_b] * (len(actions) + 1)
            session_a = Synthesizer(EMPTY_DATA, config)
            session_b = Synthesizer(EMPTY_DATA, serial_validation_config())
            baseline = Synthesizer(EMPTY_DATA, config)
            cross_a = 0
            for cut in range(1, len(actions) + 1):
                result_a = session_a.synthesize(actions[:cut], snaps_a[: cut + 1])
                expected = session_b.synthesize(actions[:cut], snaps_b[: cut + 1])
                cross_a += result_a.stats.cache_cross_session_hits
                assert [canonical_program(p) for p in result_a.programs] == [
                    canonical_program(p) for p in expected.programs
                ]
            assert cross_a == 0  # first session over the site: nothing to reuse
            cross_second = 0
            for cut in range(1, len(actions) + 1):
                result = baseline.synthesize(actions[:cut], snaps_b[: cut + 1])
                cross_second += result.stats.cache_cross_session_hits
                assert result.stats.interned_snapshots >= 1
            assert cross_second > 0  # session two hit session one's entries
        finally:
            reset_process_cache()

    def test_serial_private_sessions_never_share(self):
        actions, snapshots = scrape_cards_trace(cards_page(4), 3)
        first = Synthesizer(EMPTY_DATA, serial_validation_config())
        second = Synthesizer(EMPTY_DATA, serial_validation_config())
        for cut in range(1, len(actions) + 1):
            a = first.synthesize(actions[:cut], snapshots[: cut + 1])
            b = second.synthesize(actions[:cut], snapshots[: cut + 1])
            assert a.stats.cache_cross_session_hits == 0
            assert b.stats.cache_cross_session_hits == 0
            assert b.stats.interned_snapshots == 0


class TestProcessCache:
    def test_singleton_until_reset(self):
        reset_process_cache()
        try:
            first = process_cache()
            assert process_cache() is first
            reset_process_cache()
            assert process_cache() is not first
        finally:
            reset_process_cache()
