"""The process-level shared execution cache (repro.engine.cache).

Covers the concurrency surface PR 3 introduced: lock-striped shards,
per-session counter views with cross-session hit attribution, snapshot
interning (including its race behaviour), byte accounting with LRU
eviction, and the process-wide singleton.
"""

import threading
from dataclasses import replace

from repro.dom import E, page
from repro.engine.cache import (
    CacheCounters,
    ExecutionCache,
    SharedExecutionCache,
    process_cache,
    reset_process_cache,
)
from repro.engine.index import index_for
from repro.lang import EMPTY_DATA
from repro.lang.data import DataSource
from repro.lang.ast import canonical_program
from repro.synth.config import parallel_validation_config, serial_validation_config
from repro.synth.synthesizer import Synthesizer

from helpers import cards_page, scrape_cards_trace


def shared_memory_config(workers: int = 0):
    """Process-shared cache pinned to the in-process backend.

    The cross-session attribution assertions below are about *in-process*
    sharing semantics; a persistent store left by earlier tests (e.g.
    under the ``REPRO_CACHE_BACKEND=file`` CI parity run) would turn the
    expected cross-session hits into warm-start hits.
    """
    return replace(
        parallel_validation_config(workers=workers, shared=True),
        cache_backend="memory",
    )


class TestCounters:
    def test_merge_sums_every_field(self):
        left = CacheCounters(hits=3, misses=2, evictions=1, exact_hits=1,
                             prefix_hits=1, consistency_hits=1, cross_session_hits=1)
        right = CacheCounters(hits=5, misses=1, evictions=0, exact_hits=2,
                              prefix_hits=2, consistency_hits=1, cross_session_hits=4)
        left.merge(right)
        assert left == CacheCounters(hits=8, misses=3, evictions=1, exact_hits=3,
                                     prefix_hits=3, consistency_hits=2,
                                     cross_session_hits=5)

    def test_explicit_recorder_counts_alongside_the_cache_aggregate(self):
        cache = ExecutionCache(8)
        worker = CacheCounters()
        cache.put(("base",), (1,), 1, ("a",), None, counters=worker)
        assert cache.get(("base",), (1,), 1, counters=worker) is not None
        assert cache.get(("other",), (1,), 1, counters=worker) is None
        # the worker's private recorder and the cache's own (shard-level
        # aggregate) counters both saw the traffic — merge-based
        # accumulation never loses counts to either side
        assert (worker.hits, worker.misses) == (1, 1)
        assert (cache.counters.hits, cache.counters.misses) == (1, 1)
        # traffic without an explicit recorder lands on the aggregate only
        assert cache.get(("base",), (1,), 1) is not None
        assert cache.counters.hits == 2
        assert worker.hits == 1


class TestByteAccounting:
    def test_bytes_grow_with_entries_and_shrink_on_eviction(self):
        cache = ExecutionCache(max_entries=2)
        assert cache.approx_bytes == 0
        cache.put(("a",), (1,), 1, ("x",), None)
        one_entry = cache.approx_bytes
        assert one_entry > 0
        cache.put(("b",), (2,), 1, ("x", "y"), None)
        two_entries = cache.approx_bytes
        assert two_entries > one_entry
        # third insert evicts the oldest: bytes stay bounded, counted
        cache.put(("c",), (3,), 1, ("x",), None)
        assert cache.counters.evictions == 1
        assert cache.approx_bytes < two_entries + one_entry
        assert len(cache) <= 2

    def test_shared_cache_aggregates_shard_bytes(self):
        shared = SharedExecutionCache(max_entries=64, shards=4)
        session = shared.session()
        for index in range(10):
            session.put((f"k{index}",), (index,), 1, ("a",), None)
        assert shared.approx_bytes > 0
        assert len(shared) == 10
        shared.clear()
        assert shared.approx_bytes == 0
        assert len(shared) == 0


class TestSessions:
    def test_sessions_share_entries_and_attribute_cross_hits(self):
        shared = SharedExecutionCache(max_entries=64, shards=2)
        writer, reader = shared.session(), shared.session()
        writer.put(("base",), (1,), 1, ("a",), None)
        assert writer.get(("base",), (1,), 1) is not None
        assert writer.counters.cross_session_hits == 0  # own entry
        assert reader.get(("base",), (1,), 1) is not None
        assert reader.counters.cross_session_hits == 1
        assert reader.counters.hits == 1
        # shard-level (global) counters saw both hits
        assert shared.counters().hits == 2

    def test_consistency_memo_is_shared_too(self):
        shared = SharedExecutionCache(max_entries=64, shards=2)
        writer, reader = shared.session(), shared.session()
        writer.put_consistency(("key",), 3)
        assert reader.get_consistency(("key",)) == 3
        assert reader.counters.consistency_hits == 1
        assert reader.counters.cross_session_hits == 1


class TestInterning:
    def test_structurally_equal_roots_collapse(self):
        shared = SharedExecutionCache()
        first = cards_page(3)
        second = cards_page(3).clone().freeze()
        assert first is not second
        assert shared.intern_snapshot(first) is first
        assert shared.intern_snapshot(second) is first
        assert shared.intern_hits == 1
        assert shared.interned_snapshots == 1
        assert shared.interned_bytes > 0
        # interned sessions share one SnapshotIndex (and its enum_memo)
        assert index_for(shared.intern_snapshot(second)) is index_for(first)

    def test_different_structures_stay_distinct(self):
        shared = SharedExecutionCache()
        assert shared.intern_snapshot(cards_page(3)) is not shared.intern_snapshot(
            cards_page(4)
        )
        assert shared.interned_snapshots == 2

    def test_unfrozen_snapshots_pass_through(self):
        shared = SharedExecutionCache()
        mutable = E("div")
        assert shared.intern_snapshot(mutable) is mutable
        assert shared.interned_snapshots == 0

    def test_interning_lru_evicts_and_counts(self):
        shared = SharedExecutionCache(max_snapshots=2)
        shared.intern_snapshot(cards_page(2))
        shared.intern_snapshot(cards_page(3))
        before = shared.interned_bytes
        shared.intern_snapshot(cards_page(4))
        assert shared.snapshot_evictions == 1
        assert shared.interned_snapshots == 2
        assert shared.interned_bytes <= before + 10_000

    def test_concurrent_interning_yields_one_canonical(self):
        # the race the intern lock exists for: N threads intern distinct
        # structurally equal clones at once; everyone must get the same
        # canonical root and the table must hold exactly one entry
        shared = SharedExecutionCache()
        template = cards_page(5)
        clones = [template.clone().freeze() for _ in range(8)]
        results = [None] * len(clones)
        barrier = threading.Barrier(len(clones))

        def intern(position, root):
            barrier.wait()
            results[position] = shared.intern_snapshot(root)

        threads = [
            threading.Thread(target=intern, args=(position, root))
            for position, root in enumerate(clones)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.interned_snapshots == 1
        canonical = results[0]
        assert all(result is canonical for result in results)
        assert shared.intern_hits == len(clones) - 1

    def test_concurrent_shard_traffic_stays_consistent(self):
        shared = SharedExecutionCache(max_entries=256, shards=4)
        sessions = [shared.session() for _ in range(4)]
        errors = []

        def hammer(session, salt):
            try:
                for index in range(200):
                    key = (f"k{(index + salt) % 50}",)
                    session.put(key, (index % 7,), 1, ("a",), None)
                    session.get(key, (index % 7,), 1)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(session, salt))
            for salt, session in enumerate(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        merged = shared.counters()
        assert merged.hits + merged.misses == 4 * 200
        assert merged.hits == merged.exact_hits + merged.prefix_hits + merged.consistency_hits


class TestDataInterning:
    def test_equal_content_sources_collapse(self):
        shared = SharedExecutionCache()
        first = DataSource({"zips": [10001, 10002]})
        second = DataSource({"zips": [10001, 10002]})
        other = DataSource({"zips": [90210]})
        assert shared.intern_data(first) is first
        assert shared.intern_data(second) is first
        assert shared.intern_data(other) is other

    def test_sessions_with_separately_loaded_data_still_share(self):
        # each session 'loads' its own equal-content data source (the
        # repeated-CLI-invocation shape); execution keys address the
        # source by id, so sharing depends on for_config interning it
        reset_process_cache()
        try:
            config = shared_memory_config()
            actions, _ = scrape_cards_trace(cards_page(5), 4)
            snaps_a = [cards_page(5).clone().freeze()] * (len(actions) + 1)
            snaps_b = [cards_page(5).clone().freeze()] * (len(actions) + 1)
            session_a = Synthesizer(DataSource({"q": ["a", "b"]}), config)
            session_b = Synthesizer(DataSource({"q": ["a", "b"]}), config)
            for cut in range(1, len(actions) + 1):
                session_a.synthesize(actions[:cut], snaps_a[: cut + 1])
            cross = 0
            for cut in range(1, len(actions) + 1):
                result = session_b.synthesize(actions[:cut], snaps_b[: cut + 1])
                cross += result.stats.cache_cross_session_hits
            assert cross > 0
        finally:
            reset_process_cache()


class TestCrossSessionSynthesis:
    def test_two_sessions_over_the_same_site_share_executions(self):
        reset_process_cache()
        try:
            config = shared_memory_config()
            actions, _ = scrape_cards_trace(cards_page(5), 4)
            dom_a = cards_page(5).clone().freeze()
            dom_b = cards_page(5).clone().freeze()
            snaps_a = [dom_a] * (len(actions) + 1)
            snaps_b = [dom_b] * (len(actions) + 1)
            session_a = Synthesizer(EMPTY_DATA, config)
            session_b = Synthesizer(EMPTY_DATA, serial_validation_config())
            baseline = Synthesizer(EMPTY_DATA, config)
            cross_a = 0
            for cut in range(1, len(actions) + 1):
                result_a = session_a.synthesize(actions[:cut], snaps_a[: cut + 1])
                expected = session_b.synthesize(actions[:cut], snaps_b[: cut + 1])
                cross_a += result_a.stats.cache_cross_session_hits
                assert [canonical_program(p) for p in result_a.programs] == [
                    canonical_program(p) for p in expected.programs
                ]
            assert cross_a == 0  # first session over the site: nothing to reuse
            cross_second = 0
            for cut in range(1, len(actions) + 1):
                result = baseline.synthesize(actions[:cut], snaps_b[: cut + 1])
                cross_second += result.stats.cache_cross_session_hits
                assert result.stats.interned_snapshots >= 1
            assert cross_second > 0  # session two hit session one's entries
        finally:
            reset_process_cache()

    def test_serial_private_sessions_never_share(self):
        actions, snapshots = scrape_cards_trace(cards_page(4), 3)
        first = Synthesizer(EMPTY_DATA, serial_validation_config())
        second = Synthesizer(EMPTY_DATA, serial_validation_config())
        for cut in range(1, len(actions) + 1):
            a = first.synthesize(actions[:cut], snapshots[: cut + 1])
            b = second.synthesize(actions[:cut], snapshots[: cut + 1])
            assert a.stats.cache_cross_session_hits == 0
            assert b.stats.cache_cross_session_hits == 0
            assert b.stats.interned_snapshots == 0


class TestProcessCache:
    def test_singleton_until_reset(self):
        reset_process_cache()
        try:
            first = process_cache()
            assert process_cache() is first
            reset_process_cache()
            assert process_cache() is not first
        finally:
            reset_process_cache()


class TestByteThresholds:
    def test_byte_threshold_evicts_oldest_until_under(self):
        cache = ExecutionCache(max_entries=1024, max_bytes=2000)
        for index in range(32):
            cache.put((f"k{index}",), (index,), 1, ("a",) * 8, None)
        assert cache.counters.evictions > 0
        assert cache.approx_bytes <= 2000
        # the most recent entry always survives
        assert cache.get(("k31",), (31,), 1) is not None
        assert cache.get(("k0",), (0,), 1) is None

    def test_single_oversized_entry_does_not_wedge_the_cache(self):
        cache = ExecutionCache(max_entries=8, max_bytes=250)
        cache.put(("big",), tuple(range(64)), 64, ("a",) * 64, None)
        # larger than the whole budget: kept as the last entry standing
        assert len(cache) >= 1
        assert cache.get(("big",), tuple(range(64)), 64) is not None

    def test_rejects_non_positive_byte_threshold(self):
        import pytest

        with pytest.raises(ValueError):
            ExecutionCache(max_entries=8, max_bytes=0)

    def test_shared_cache_splits_the_threshold_across_shards(self):
        shared = SharedExecutionCache(max_entries=1024, shards=4, max_bytes=8000)
        session = shared.session()
        for index in range(256):
            session.put((f"k{index}",), (index,), 1, ("a",) * 8, None)
        assert shared.counters().evictions > 0
        assert sum(s.cache.approx_bytes for s in shared._shards) <= 8000

    def test_window_length_scales_the_terminal_entry_estimate(self):
        # the ROADMAP eviction-policy note: terminal entries for long
        # windows must weigh in proportion to their examined prefix, so
        # byte thresholds pressure exactly the entries count thresholds
        # undercounted (value keys already removed the snapshot pinning)
        small = ExecutionCache(max_entries=8)
        large = ExecutionCache(max_entries=8)
        small.put(("b",), tuple(range(4)), 4, ("a",), None)
        large.put(("b",), tuple(range(40)), 40, ("a",), None)
        assert large.approx_bytes > small.approx_bytes


class TestEnumMemoAccounting:
    def test_enum_bytes_counted_in_shared_footprint(self):
        shared = SharedExecutionCache()
        dom = cards_page(4)
        canonical = shared.intern_snapshot(dom)
        index = index_for(canonical)
        before = shared.approx_bytes
        index.enum_memo[("decomp", 1, True, 2, 64, False)] = [object()] * 10
        assert index.enum_memo.approx_bytes > 0
        assert shared.enum_bytes == index.enum_memo.approx_bytes
        assert shared.approx_bytes == before + index.enum_memo.approx_bytes

    def test_enum_memo_evicts_when_over_budget(self):
        from repro.engine.index import EnumMemo

        memo = EnumMemo(max_bytes=3000)
        for index in range(32):
            memo[("decomp", index)] = [object()] * 8
        assert memo.evictions > 0
        assert memo.approx_bytes <= 3000
        assert memo.get(("decomp", 31)) is not None  # newest kept
        assert memo.get(("decomp", 0)) is None  # oldest dropped

    def test_enumeration_results_flow_through_the_accounted_memo(self):
        dom = cards_page(3)
        from repro.dom import raw_path
        from repro.synth.alternatives import decompositions
        from helpers import node_at

        target = node_at(dom, "//div[@class='card'][2]/h3[1]")
        index = index_for(dom)
        before = index.enum_memo.approx_bytes
        results = decompositions(raw_path(target), dom)
        assert results
        assert index.enum_memo.approx_bytes > before


class TestWarmStartSynthesis:
    def test_fresh_process_cache_warm_starts_from_the_store(self, tmp_path, monkeypatch):
        # process boundaries are simulated by dropping every in-process
        # cache between runs: only the SQLite store survives, exactly
        # what a restarted worker sees (the service bench does this with
        # real forked processes; the cross-process key stability is
        # pinned by test_engine_keys).  Tiering off: this test pins the
        # warm-start plumbing itself, so every entry must persist — the
        # tier policy's deliberate recompute-misses are covered by
        # test_codec_binary and the store-codec bench.
        monkeypatch.setenv("REPRO_STORE_TIERING", "0")
        from repro.service.backends import reset_backends

        store = str(tmp_path / "store.sqlite")
        def run_once():
            config = replace(
                parallel_validation_config(workers=0, shared=True),
                cache_backend="file",
            )
            actions, snapshots = scrape_cards_trace(cards_page(5), 4)
            synthesizer = Synthesizer(EMPTY_DATA, config)
            warm = misses = 0
            programs = []
            for cut in range(1, len(actions) + 1):
                result = synthesizer.synthesize(actions[:cut], snapshots[: cut + 1])
                warm += result.stats.cache_warm_hits
                misses += result.stats.cache_misses
                programs.append(
                    [canonical_program(p) for p in result.programs]
                )
            assert result.stats.cache_backend == "file"
            assert result.stats.persisted_bytes > 0
            from repro.service.backends import flush_backends

            flush_backends()
            synthesizer.close()
            return warm, misses, programs

        import os

        previous = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path)
        reset_process_cache()
        reset_backends()
        try:
            cold_warm, cold_misses, cold_programs = run_once()
            assert cold_warm == 0
            assert cold_misses > 0
            # "new process": all in-process state dropped, store kept
            reset_process_cache()
            reset_backends()
            warm_warm, warm_misses, warm_programs = run_once()
            assert warm_warm > 0
            assert warm_misses == 0
            assert warm_programs == cold_programs
        finally:
            reset_process_cache()
            reset_backends()
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous


class _StubBackend:
    """A persistent-looking backend with scriptable loads.

    ``payload`` is returned for *every* exact-entry load (None = empty
    store); ``gate`` runs inside ``load_entry`` — the two-phase tests
    use a barrier there to prove loads from different threads overlap.
    """

    name = "stub"
    persistent = True

    def __init__(self, payload=None, gate=None):
        self.payload = payload
        self.gate = gate
        self.loads = 0
        self.consistency: dict = {}

    def load_entry(self, kind, key):
        self.loads += 1
        if self.gate is not None:
            self.gate()
        return self.payload

    def store_entry(self, kind, key, actions, env, examined, exact_budget_ok):
        pass

    def load_consistency(self, key):
        self.loads += 1
        if self.gate is not None:
            self.gate()
        return self.consistency.get(key)

    def store_consistency(self, key, value):
        self.consistency[key] = value

    def flush(self):
        pass

    def close(self):
        pass

    @property
    def persisted_bytes(self):
        return 0

    @property
    def entries(self):
        return 0


class TestTwoPhaseBackendLookup:
    """ROADMAP follow-on (d): the store probe must not hold the shard lock."""

    def test_cold_lookups_on_one_shard_overlap_their_backend_io(self):
        # Both threads miss in memory and fall through to the backend.
        # The barrier inside load_entry only releases when *both*
        # threads are inside a backend read at the same time — which is
        # impossible if the read still happens under the (single) shard
        # lock, so a regression deadlocks the barrier and fails fast.
        barrier = threading.Barrier(2)
        stub = _StubBackend(payload=(("a",), None, None, False), gate=lambda: barrier.wait(timeout=10))
        shared = SharedExecutionCache(max_entries=64, shards=1, backend=stub)
        sessions = [shared.session(), shared.session()]
        failures = []

        def lookup(index):
            try:
                result = sessions[index].get((f"base{index}",), (1,), 1)
                assert result is not None
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append(exc)

        threads = [threading.Thread(target=lookup, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        merged = shared.counters()
        # each lookup settled exactly once: a warm hit, never a miss
        assert merged.hits == 2
        assert merged.warm_hits == 2
        assert merged.misses == 0

    def test_empty_store_misses_count_exactly_once_per_lookup(self):
        stub = _StubBackend(payload=None)
        shared = SharedExecutionCache(max_entries=256, shards=1, backend=stub)
        sessions = [shared.session() for _ in range(4)]
        lookups_per_session = 8

        def lookup(session, index):
            for position in range(lookups_per_session):
                session.get((f"k{index}-{position}",), (1,), 1)

        threads = [
            threading.Thread(target=lookup, args=(session, index))
            for index, session in enumerate(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = 4 * lookups_per_session
        assert sum(s.counters.misses for s in sessions) == total
        assert sum(s.counters.hits for s in sessions) == 0
        merged = shared.counters()
        assert (merged.hits, merged.misses) == (0, total)

    def test_racing_promotions_of_one_key_each_count_a_hit(self):
        barrier = threading.Barrier(2)
        stub = _StubBackend(payload=(("a",), None, None, False), gate=lambda: barrier.wait(timeout=10))
        shared = SharedExecutionCache(max_entries=64, shards=1, backend=stub)
        sessions = [shared.session(), shared.session()]
        failures = []

        def lookup(index):
            try:
                assert sessions[index].get(("same",), (1,), 1) is not None
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append(exc)

        threads = [threading.Thread(target=lookup, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        merged = shared.counters()
        # both probed before either promoted; the loser of the promote
        # race is served from memory by the re-check — still one hit
        # per lookup, one entry in the table
        assert (merged.hits, merged.misses) == (2, 0)
        assert 1 <= merged.warm_hits <= 2
        assert len(shared) == 1

    def test_warm_entry_is_promoted_once_then_served_from_memory(self):
        stub = _StubBackend(payload=(("a",), None, None, False))
        shared = SharedExecutionCache(max_entries=64, shards=2, backend=stub)
        session = shared.session()
        assert session.get(("base",), (1,), 1) is not None
        loads_after_first = stub.loads
        assert session.get(("base",), (1,), 1) is not None
        assert stub.loads == loads_after_first  # no second store read
        assert session.counters.warm_hits == 1
        assert session.counters.hits == 2

    def test_consistency_memo_rides_the_same_two_phase_path(self):
        stub = _StubBackend()
        stub.consistency = {}
        shared = SharedExecutionCache(max_entries=64, shards=1, backend=stub)
        writer, reader = shared.session(), shared.session()
        writer.put_consistency(("key",), 5)
        # key is in memory: served without a store read
        loads_before = stub.loads
        assert reader.get_consistency(("key",)) == 5
        assert stub.loads == loads_before
        # a cold key probes the store outside the lock and misses
        assert reader.get_consistency(("cold",)) is None
        assert reader.counters.misses == 1
