"""Unit tests for the trace semantics (Figure 7 rules)."""

import pytest

from repro.dom import E, page, parse_selector
from repro.lang import (
    EMPTY_DATA,
    DataSource,
    X,
    parse_program,
)
from repro.semantics import DOMTrace, execute


def run(text, snapshots, data=EMPTY_DATA, max_actions=None):
    program = parse_program(text)
    return execute(program, DOMTrace(snapshots), data, max_actions=max_actions)


def links_page(count):
    return page(*[E("a", text=f"link{i}") for i in range(1, count + 1)])


class TestStraightLine:
    def test_actions_emitted_in_order(self):
        doms = [links_page(2)] * 3
        result = run("Click(//a[1])\nScrapeText(//a[2])\nGoBack", doms)
        assert [a.kind for a in result.actions] == ["Click", "ScrapeText", "GoBack"]
        assert result.remaining.is_empty

    def test_each_action_consumes_one_snapshot(self):
        doms = [links_page(2)] * 4
        result = run("Click(//a[1])\nGoBack", doms)
        assert len(result.remaining) == 2

    def test_invalid_action_selector_halts_execution(self):
        # Following Example 3.1: an action whose selector does not denote a
        # node on the head snapshot halts execution with a shorter trace.
        doms = [links_page(1)] * 2
        result = run("Click(//button[7])\nGoBack", doms)
        assert result.actions == []
        assert len(result.remaining) == 2

    def test_invalid_enter_data_path_halts_execution(self):
        data = DataSource({"names": ["ada"]})
        doms = [links_page(1)] * 2
        result = run('EnterData(//a[1], x["names"][5])\nGoBack', doms, data)
        assert result.actions == []

    def test_term_rule_empty_trace(self):
        result = run("Click(//a[1])\nGoBack", [])
        assert result.actions == []

    def test_term_rule_mid_sequence(self):
        doms = [links_page(1)]
        result = run("Click(//a[1])\nGoBack\nExtractURL", doms)
        assert [a.kind for a in result.actions] == ["Click"]

    def test_send_keys_and_enter_data_arguments(self):
        data = DataSource({"names": ["ada", "bob"]})
        doms = [links_page(1)] * 2
        result = run(
            'SendKeys(//a[1], "hi")\nEnterData(//a[1], x["names"][2])', doms, data
        )
        assert result.actions[0].text == "hi"
        assert result.actions[1].path.accessors == ("names", 2)


class TestSelectorLoop:
    def test_example_3_1_two_iterations(self):
        # foreach r in Dscts(/, a) do Click(r)  over two snapshots
        doms = [links_page(2), links_page(2)]
        result = run("foreach r in Dscts(/, a) do\n  Click(r)", doms)
        assert [str(a.selector) for a in result.actions] == ["//a[1]", "//a[2]"]
        assert result.remaining.is_empty

    def test_s_term_stops_on_invalid_element(self):
        # Three snapshots but only two matching nodes: S-Term fires.
        doms = [links_page(2)] * 3
        result = run("foreach r in Dscts(/, a) do\n  Click(r)", doms)
        assert len(result.actions) == 2
        assert len(result.remaining) == 1

    def test_example_3_1_variant_invalid_child(self):
        # Click(r/b[1]) — //a[1]/b[1] does not exist, so zero iterations.
        doms = [links_page(2)] * 2
        result = run("foreach r in Dscts(/, a) do\n  Click(r/b[1])", doms)
        assert result.actions == []
        assert len(result.remaining) == 2

    def test_validity_checked_against_current_head(self):
        # The second snapshot has only one link: iteration 2's check fails
        # even though the first snapshot had two links (lazy S-Cont).
        doms = [links_page(2), links_page(1)]
        result = run("foreach r in Dscts(/, a) do\n  Click(r)", doms)
        assert len(result.actions) == 1

    def test_children_axis_loop(self):
        doms = [page(E("ul", E("li", text="a"), E("li", text="b")))] * 2
        result = run(
            "foreach r in Children(/html[1]/body[1]/ul[1], li) do\n  ScrapeText(r)",
            doms,
        )
        assert [str(a.selector) for a in result.actions] == [
            "/html[1]/body[1]/ul[1]/li[1]",
            "/html[1]/body[1]/ul[1]/li[2]",
        ]

    def test_multi_statement_body(self):
        snapshot = page(
            E("div", cls="card", *[E("h3", text="n1")], text=""),
            E("div", cls="card", *[E("h3", text="n2")]),
        )
        doms = [snapshot] * 4
        text = (
            "foreach r in Dscts(/, div[@class='card']) do\n"
            "  ScrapeText(r/h3[1])\n"
            "  ScrapeText(r)"
        )
        result = run(text, doms)
        assert [str(a.selector) for a in result.actions] == [
            "//div[@class='card'][1]/h3[1]",
            "//div[@class='card'][1]",
            "//div[@class='card'][2]/h3[1]",
            "//div[@class='card'][2]",
        ]

    def test_nested_selector_loops(self):
        snapshot = page(
            E("ul", E("li", text="a"), E("li", text="b")),
            E("ul", E("li", text="c")),
        )
        doms = [snapshot] * 5
        text = (
            "foreach u in Dscts(/, ul) do\n"
            "  foreach l in Children(u, li) do\n"
            "    ScrapeText(l)"
        )
        result = run(text, doms)
        assert [str(a.selector) for a in result.actions] == [
            "//ul[1]/li[1]",
            "//ul[1]/li[2]",
            "//ul[2]/li[1]",
        ]


class TestValueLoop:
    def test_eager_iteration_over_paths(self):
        data = DataSource({"zips": ["1", "2", "3"]})
        doms = [links_page(1)] * 3
        text = 'foreach d in ValuePaths(x["zips"]) do\n  EnterData(//a[1], d)'
        result = run(text, doms, data)
        assert [a.path.accessors for a in result.actions] == [
            ("zips", 1),
            ("zips", 2),
            ("zips", 3),
        ]

    def test_stuck_collection_yields_nothing(self):
        data = DataSource({"zips": "not-an-array"})
        doms = [links_page(1)]
        text = 'foreach d in ValuePaths(x["zips"]) do\n  EnterData(//a[1], d)'
        result = run(text, doms, data)
        assert result.actions == []

    def test_term_stops_value_loop(self):
        data = DataSource({"zips": ["1", "2", "3"]})
        doms = [links_page(1)] * 2  # fewer snapshots than paths
        text = 'foreach d in ValuePaths(x["zips"]) do\n  EnterData(//a[1], d)'
        result = run(text, doms, data)
        assert len(result.actions) == 2

    def test_nested_accessor_paths(self):
        data = DataSource({"rows": [{"q": "a"}, {"q": "b"}]})
        doms = [links_page(1)] * 2
        text = 'foreach d in ValuePaths(x["rows"]) do\n  EnterData(//a[1], d["q"])'
        result = run(text, doms, data)
        assert [a.path.accessors for a in result.actions] == [
            ("rows", 1, "q"),
            ("rows", 2, "q"),
        ]


class TestWhileLoop:
    def paginated(self, pages_with_next, last_page):
        doms = []
        for snapshot in pages_with_next:
            doms.extend([snapshot, snapshot])  # scrape + click consume two
        doms.append(last_page)
        doms.append(last_page)  # head for the final (failing) click check
        return doms

    def test_terminates_when_click_invalid(self):
        with_next = page(E("h3", text="page"), E("button", cls="next"))
        last = page(E("h3", text="last"))
        doms = self.paginated([with_next, with_next], last)
        text = (
            "while true do\n"
            "  ScrapeText(//h3[1])\n"
            "  Click(//button[@class='next'][1])"
        )
        result = run(text, doms)
        kinds = [a.kind for a in result.actions]
        assert kinds == ["ScrapeText", "Click", "ScrapeText", "Click", "ScrapeText"]
        # one unconsumed snapshot remains: the failing click check does not
        # consume the head
        assert len(result.remaining) == 1

    def test_term_rule_ends_while(self):
        with_next = page(E("h3", text="page"), E("button", cls="next"))
        doms = [with_next, with_next, with_next]
        text = (
            "while true do\n"
            "  ScrapeText(//h3[1])\n"
            "  Click(//button[@class='next'][1])"
        )
        result = run(text, doms)
        assert [a.kind for a in result.actions] == ["ScrapeText", "Click", "ScrapeText"]
        assert result.remaining.is_empty

    def test_while_with_inner_selector_loop(self):
        def results_page(names, has_next):
            cards = [E("div", {"class": "card"}, E("h3", text=n)) for n in names]
            extra = [E("button", cls="next")] if has_next else []
            return page(*cards, *extra)

        page1 = results_page(["a", "b"], True)
        page2 = results_page(["c"], False)
        doms = [page1, page1, page1, page2, page2]
        text = (
            "while true do\n"
            "  foreach r in Dscts(/, div[@class='card']) do\n"
            "    ScrapeText(r/h3[1])\n"
            "  Click(//button[@class='next'][1])"
        )
        result = run(text, doms)
        assert [a.kind for a in result.actions] == [
            "ScrapeText",
            "ScrapeText",
            "Click",
            "ScrapeText",
        ]


class TestBudget:
    def test_max_actions_caps_output(self):
        doms = [links_page(3)] * 10
        result = run("foreach r in Dscts(/, a) do\n  Click(r)", doms, max_actions=2)
        assert len(result.actions) == 2

    def test_budget_zero_emits_nothing(self):
        doms = [links_page(1)]
        result = run("Click(//a[1])", doms, max_actions=0)
        assert result.actions == []
