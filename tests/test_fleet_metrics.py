"""Fleet metrics plumbing (repro.fleet.metrics) and ``repro metrics
--fleet``.

The parse/merge helpers are pinned against hand-written exposition
dumps (label escaping, histogram suffix folding, HELP/TYPE
deduplication); the CLI test scrapes a real worker *and* a real cache
server and asserts the merged stream tags every sample with its
instance.  The loadtest percentile helper lives here too — it is pure
math shared by the harness and the bench.
"""

import threading

import pytest

from repro.fleet.cache_server import make_cache_server
from repro.fleet.loadtest import percentile
from repro.fleet.metrics import (
    merge_exposition,
    parse_samples,
    sample_value,
    scrape_text,
    split_host_port,
)


class TestSplitHostPort:
    def test_full_url(self):
        assert split_host_port("http://10.0.0.7:8799") == ("10.0.0.7", 8799)

    def test_bare_host_port(self):
        assert split_host_port("localhost:8080") == ("localhost", 8080)

    def test_port_defaults_to_80(self):
        assert split_host_port("http://example.test") == ("example.test", 80)

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            split_host_port("http://")


DUMP_A = """\
# HELP repro_sessions_live Sessions currently live on this worker.
# TYPE repro_sessions_live gauge
repro_sessions_live 3
# HELP repro_http_request_seconds HTTP request latency.
# TYPE repro_http_request_seconds histogram
repro_http_request_seconds_bucket{route="/healthz",le="0.1"} 4
repro_http_request_seconds_sum{route="/healthz"} 0.2
repro_http_request_seconds_count{route="/healthz"} 4
"""

DUMP_B = """\
# HELP repro_sessions_live Sessions currently live on this worker.
# TYPE repro_sessions_live gauge
repro_sessions_live 1
"""


class TestParseSamples:
    def test_names_labels_and_values(self):
        samples = parse_samples(DUMP_A)
        assert ("repro_sessions_live", {}, 3.0) in samples
        assert (
            "repro_http_request_seconds_bucket",
            {"route": "/healthz", "le": "0.1"},
            4.0,
        ) in samples

    def test_comments_and_blanks_are_skipped(self):
        assert parse_samples("# HELP x y\n\n# TYPE x counter\n") == []

    def test_escaped_label_values_survive(self):
        samples = parse_samples('m{path="a\\"b"} 1\n')
        assert samples == [("m", {"path": 'a\\"b'}, 1.0)]

    def test_sample_value_matches_label_subset(self):
        samples = parse_samples(DUMP_A)
        assert sample_value(samples, "repro_sessions_live") == 3.0
        assert (
            sample_value(
                samples,
                "repro_http_request_seconds_sum",
                {"route": "/healthz"},
            )
            == 0.2
        )
        assert sample_value(samples, "nope") is None
        assert (
            sample_value(samples, "repro_sessions_live", {"route": "/x"})
            is None
        )


class TestMergeExposition:
    def test_instance_label_lands_first(self):
        merged = merge_exposition([("w0:1", DUMP_B)])
        assert 'repro_sessions_live{instance="w0:1"} 1' in merged

    def test_existing_labels_keep_their_place(self):
        merged = merge_exposition([("w0:1", DUMP_A)])
        assert (
            'repro_http_request_seconds_sum{instance="w0:1",route="/healthz"} 0.2'
            in merged
        )

    def test_help_and_type_emitted_once_per_family(self):
        merged = merge_exposition([("a:1", DUMP_B), ("b:2", DUMP_B)])
        assert merged.count("# HELP repro_sessions_live") == 1
        assert merged.count("# TYPE repro_sessions_live") == 1
        assert 'repro_sessions_live{instance="a:1"} 1' in merged
        assert 'repro_sessions_live{instance="b:2"} 1' in merged

    def test_histogram_series_fold_under_their_family(self):
        merged = merge_exposition([("a:1", DUMP_A), ("b:2", DUMP_A)])
        # _bucket/_sum/_count stay grouped under the one histogram
        # header instead of forming families of their own
        assert merged.count("# TYPE repro_http_request_seconds histogram") == 1
        header_at = merged.index("# TYPE repro_http_request_seconds histogram")
        assert merged.index('_bucket{instance="b:2"', header_at) > header_at

    def test_empty_scrape_set_is_empty(self):
        assert merge_exposition([]) == ""


class TestPercentile:
    def test_rank_interpolation(self):
        assert percentile([10.0, 20.0, 30.0], 50) == 20.0
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0) == 10.0
        assert percentile(samples, 95) == 40.0
        assert percentile(samples, 99) == 40.0

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile(
            [1.0, 2.0, 3.0], 50
        )


@pytest.fixture
def cache(tmp_path):
    server = make_cache_server(port=0, path=str(tmp_path / "cache.sqlite"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.store.close()
        thread.join(timeout=5)


class TestFleetScrape:
    def test_scrape_text_reads_the_metrics_route(self, cache):
        host, port = cache.server_address[:2]
        text = scrape_text(f"http://{host}:{port}")
        # the store gauges exist from boot; request counters are lazy
        assert "repro_store_entries" in text

    def test_scrape_text_raises_on_http_error(self, cache):
        host, port = cache.server_address[:2]
        with pytest.raises(OSError):
            scrape_text(f"http://{host}:{port}", path="/nope")

    def test_cli_metrics_fleet_merges_instances(self, cache, capsys):
        from repro.cli import main

        host, port = cache.server_address[:2]
        url = f"{host}:{port}"
        assert main(["metrics", "--fleet", f"{url},{url}"]) == 0
        out = capsys.readouterr().out
        assert f'instance="{url}"' in out

    def test_cli_metrics_fleet_reports_dead_members(self, cache, capsys):
        from repro.cli import main

        host, port = cache.server_address[:2]
        assert (
            main(["metrics", "--fleet", f"{host}:{port},127.0.0.1:9"]) == 1
        )
        err = capsys.readouterr().err
        assert "127.0.0.1:9" in err
