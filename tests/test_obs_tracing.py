"""The span recorder and trace-context plumbing.

Pins the tracer's contract: disabled by default (the shared null span,
nothing recorded), Chrome trace-event export matching a committed
golden after normalization (the ``--trace-out`` compatibility
surface), ring-buffer bounding, parentage nesting inside a thread and
stitching across threads via an explicit :class:`TraceContext`, and
lazy ``REPRO_TRACE`` enablement.
"""

import json
import threading

import pytest

from repro.obs import context as obs_context
from repro.obs import tracing


@pytest.fixture(autouse=True)
def clean_tracer():
    """Each test starts and ends with a disabled, empty tracer."""
    tracing.disable()
    tracing.reset()
    yield
    tracing.disable()
    tracing.reset()


class TestContext:
    def test_wire_value_roundtrip(self):
        root = obs_context.new_root()
        assert len(root.trace_id) == 16
        assert len(root.span_id) == 8
        parsed = obs_context.parse(root.wire_value())
        assert parsed == root

    @pytest.mark.parametrize(
        "value",
        [None, "", "nonsense", "deadbeef-cafe", "g" * 16 + "-" + "a" * 8, 42],
    )
    def test_parse_drops_malformed_values(self, value):
        assert obs_context.parse(value) is None

    def test_use_scopes_and_restores(self):
        root = obs_context.new_root()
        assert obs_context.current() is None
        with obs_context.use(root):
            assert obs_context.current() == root
            inner = obs_context.new_root()
            with obs_context.use(inner):
                assert obs_context.current() == inner
            assert obs_context.current() == root
        assert obs_context.current() is None

    def test_take_received_clears(self):
        root = obs_context.new_root()
        obs_context.note_received(root)
        assert obs_context.take_received() == root
        assert obs_context.take_received() is None

    def test_executor_threads_do_not_inherit_the_context(self):
        """The property the schedulers compensate for with use(ctx)."""
        root = obs_context.new_root()
        seen = []
        with obs_context.use(root):
            worker = threading.Thread(
                target=lambda: seen.append(obs_context.current())
            )
            worker.start()
            worker.join()
        assert seen == [None]


class TestRecording:
    def test_disabled_span_is_the_shared_null(self):
        assert tracing.span("anything") is tracing.NULL_SPAN
        with tracing.span("anything") as recorded:
            recorded.note(key="value")
        assert tracing.events() == []

    def test_enabled_span_records_a_complete_event(self):
        tracing.enable()
        with tracing.span("work", items=3) as recorded:
            recorded.note(extra=1)
        (event,) = tracing.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"]["items"] == 3
        assert event["args"]["extra"] == 1
        assert event["args"]["span_id"] == recorded.span_id

    def test_nesting_sets_parent_ids(self):
        tracing.enable()
        root = obs_context.new_root()
        with obs_context.use(root):
            with tracing.span("outer") as outer:
                with tracing.span("inner"):
                    pass
        inner_event, outer_event = tracing.events()
        assert inner_event["name"] == "inner"
        assert inner_event["args"]["parent_id"] == outer.span_id
        assert outer_event["args"]["parent_id"] == root.span_id
        assert {e["args"]["trace_id"] for e in tracing.events()} == {root.trace_id}

    def test_explicit_ctx_stitches_across_threads(self):
        tracing.enable()
        root = obs_context.new_root()

        def worker():
            # executor threads see no ambient context; the schedulers
            # pass the captured ctx explicitly
            with obs_context.use(root):
                with tracing.span("remote", ctx=root):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        (event,) = tracing.events()
        assert event["args"]["trace_id"] == root.trace_id
        assert event["args"]["parent_id"] == root.span_id

    def test_exceptions_mark_the_span(self):
        tracing.enable()
        with pytest.raises(RuntimeError):
            with tracing.span("doomed"):
                raise RuntimeError("boom")
        (event,) = tracing.events()
        assert event["args"]["error"] == "RuntimeError"

    def test_ring_buffer_drops_oldest(self):
        tracing.enable(capacity=4)
        try:
            for index in range(6):
                with tracing.span(f"s{index}"):
                    pass
            names = [event["name"] for event in tracing.events()]
            assert names == ["s2", "s3", "s4", "s5"]
        finally:
            tracing.enable(capacity=tracing.DEFAULT_CAPACITY)


GOLDEN_TRACE = {
    "traceEvents": [
        {
            "name": "inner",
            "ph": "X",
            "ts": 0,
            "dur": 0,
            "pid": 1,
            "tid": 1,
            "args": {
                "step": 2,
                "span_id": "<s1>",
                "trace_id": "<t1>",
                "parent_id": "<s2>",
            },
        },
        {
            "name": "outer",
            "ph": "X",
            "ts": 0,
            "dur": 0,
            "pid": 1,
            "tid": 1,
            "args": {
                "step": 1,
                "span_id": "<s2>",
                "trace_id": "<t1>",
                "parent_id": "<root>",
            },
        },
    ],
    "displayTimeUnit": "ms",
}


def _normalized(export: dict, root: obs_context.TraceContext) -> dict:
    """Strip the nondeterminism (ids, clocks, pids) for golden compare."""
    span_names = {root.span_id: "<root>", root.trace_id: "<t1>"}
    document = json.loads(json.dumps(export))
    for event in document["traceEvents"]:
        event.update(ts=0, dur=0, pid=1, tid=1)
        for key in ("span_id", "parent_id", "trace_id"):
            value = event["args"].get(key)
            if value is not None and value not in span_names:
                span_names[value] = f"<s{sum(1 for v in span_names.values() if v.startswith('<s'))+1}>"
            if value is not None:
                event["args"][key] = span_names[value]
    return document


class TestExport:
    def test_chrome_trace_export_golden(self):
        tracing.enable()
        root = obs_context.new_root()
        with obs_context.use(root):
            with tracing.span("outer", step=1):
                with tracing.span("inner", step=2):
                    pass
        assert _normalized(tracing.export(), root) == GOLDEN_TRACE

    def test_write_emits_loadable_json(self, tmp_path):
        tracing.enable()
        with tracing.span("persisted"):
            pass
        out = tmp_path / "trace.json"
        count = tracing.write(str(out))
        assert count == 1
        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"][0]["name"] == "persisted"


class TestEnvInit:
    @pytest.fixture(autouse=True)
    def uninitialized(self, monkeypatch):
        monkeypatch.setattr(tracing, "_enabled", False)
        monkeypatch.setattr(tracing, "_initialized", False)
        monkeypatch.setattr(tracing, "_out_path", None)

    @pytest.mark.parametrize("value", ["1", "on", "true", "yes"])
    def test_truthy_enables_recording(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert tracing.enabled()
        assert tracing._out_path is None

    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no"])
    def test_falsy_stays_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert not tracing.enabled()

    def test_a_path_enables_and_registers_the_sink(self, monkeypatch, tmp_path):
        out = tmp_path / "trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(out))
        assert tracing.enabled()
        assert tracing._out_path == str(out)
