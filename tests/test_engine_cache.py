"""Unit tests for the memoizing execution engine (repro.engine)."""

import pytest

from repro.dom import E, page
from repro.engine import ExecutionCache, ExecutionEngine
from repro.lang import EMPTY_DATA, ForEachSelector, fresh_var
from repro.lang.ast import (
    SCRAPE_TEXT,
    SEL_VAR,
    ActionStmt,
    DescendantsOf,
    Selector,
    canonical_program,
)
from repro.dom.xpath import Predicate, parse_selector
from repro.semantics.trace import DOMTrace
from repro.synth.config import DEFAULT_CONFIG, no_execution_cache_config
from repro.synth.synthesizer import Synthesizer

from helpers import cards_page, scrape_cards_trace


def card_loop(count_var=None):
    """``foreach r in Dscts(/, div[@class='card']) do ScrapeText(r/h3[1])``."""
    var = count_var or fresh_var(SEL_VAR)
    body = ActionStmt(
        SCRAPE_TEXT, Selector(var, parse_selector("/h3[1]").steps)
    )
    return ForEachSelector(
        var, DescendantsOf(Selector(), Predicate("div", "class", "card")), (body,)
    )


def singleton_scrape(selector_text):
    return ActionStmt(SCRAPE_TEXT, Selector(None, parse_selector(selector_text).steps))


class TestExecuteMemo:
    def test_exact_hit_replays_result(self):
        dom = cards_page(3)
        snapshots = [dom] * 4
        engine = ExecutionEngine(EMPTY_DATA)
        window = DOMTrace(snapshots, 0, 4)
        loop = card_loop()
        first = engine.execute([loop], window, max_actions=len(window))
        second = engine.execute([loop], window, max_actions=len(window))
        assert engine.counters().exact_hits == 1
        assert [str(a) for a in second.actions] == [str(a) for a in first.actions]
        assert len(second.remaining) == len(first.remaining)

    def test_alpha_equivalent_statements_share_entries(self):
        dom = cards_page(3)
        snapshots = [dom] * 4
        engine = ExecutionEngine(EMPTY_DATA)
        window = DOMTrace(snapshots, 0, 4)
        engine.execute([card_loop()], window, max_actions=len(window))
        engine.execute([card_loop()], window, max_actions=len(window))
        counters = engine.counters()
        assert counters.hits == 1  # different Var objects, same canonical key

    def test_terminal_hit_on_extended_window(self):
        # the loop scrapes 3 cards then terminates with snapshots left —
        # its outcome is identical on any extension of the examined prefix
        dom = cards_page(3)
        snapshots = [dom] * 6
        engine = ExecutionEngine(EMPTY_DATA)
        short = DOMTrace(snapshots, 0, 5)
        long = DOMTrace(snapshots, 0, 6)
        first = engine.execute([card_loop()], short, max_actions=len(short))
        assert len(first.actions) == 3  # terminated early: terminal entry
        second = engine.execute([card_loop()], long, max_actions=len(long))
        assert engine.counters().prefix_hits == 1
        assert len(second.actions) == 3
        assert len(second.remaining) == 3  # remaining rebuilt on the long window

    def test_terminal_hit_when_budget_exactly_equals_action_count(self):
        # regression: the terminal table used to demand budget > count,
        # so a self-terminated execution missed when the budget equalled
        # its action count even though the replay is identical
        dom = cards_page(3)
        snapshots = [dom] * 6
        loop = card_loop()
        reference = ExecutionEngine(EMPTY_DATA, use_cache=False).execute(
            [loop], DOMTrace(snapshots, 0, 6), max_actions=3
        )
        engine = ExecutionEngine(EMPTY_DATA)
        first = engine.execute([loop], DOMTrace(snapshots, 0, 5), max_actions=5)
        assert len(first.actions) == 3  # terminated early: terminal entry
        replay = engine.execute([loop], DOMTrace(snapshots, 0, 6), max_actions=3)
        assert engine.counters().prefix_hits == 1
        # the replay pins the uncached outcome: actions, env, and the
        # consumed-window shape all match a budget-capped fresh run
        assert [str(a) for a in replay.actions] == [str(a) for a in reference.actions]
        assert replay.env.fingerprint() == reference.env.fingerprint()
        assert len(replay.remaining) == len(reference.remaining) == 3

    def test_exact_budget_hit_refused_when_env_moved_after_last_action(self):
        # a statement after the emitting loop can bind its loop variable
        # and only then go stuck — the recorded env then differs from a
        # genuinely budget-capped run's, so the exact-budget replay must
        # miss rather than serve the wrong environment
        dom = cards_page(3)
        snapshots = [dom] * 6
        var = fresh_var(SEL_VAR)
        stuck_loop = ForEachSelector(
            var,
            DescendantsOf(Selector(), Predicate("div", "class", "sidebar")),
            # the sidebar exists, so the loop binds its variable — but
            # the body selector is invalid there, so no action is emitted
            (ActionStmt(SCRAPE_TEXT, Selector(var, parse_selector("/table[1]").steps)),),
        )
        program = [card_loop(), stuck_loop]
        reference = ExecutionEngine(EMPTY_DATA, use_cache=False).execute(
            program, DOMTrace(snapshots, 0, 6), max_actions=3
        )
        engine = ExecutionEngine(EMPTY_DATA)
        seeded = engine.execute(program, DOMTrace(snapshots, 0, 5), max_actions=5)
        assert len(seeded.actions) == 3  # stuck after binding: terminal entry
        replay = engine.execute(program, DOMTrace(snapshots, 0, 6), max_actions=3)
        assert engine.counters().prefix_hits == 0  # unsound hit refused
        assert [str(a) for a in replay.actions] == [str(a) for a in reference.actions]
        assert replay.env.fingerprint() == reference.env.fingerprint()

    def test_budget_is_part_of_the_key(self):
        dom = cards_page(3)
        snapshots = [dom] * 4
        engine = ExecutionEngine(EMPTY_DATA)
        window = DOMTrace(snapshots, 0, 4)
        full = engine.execute([card_loop()], window, max_actions=3)
        capped = engine.execute([card_loop()], window, max_actions=2)
        assert len(full.actions) == 3
        assert len(capped.actions) == 2  # a budget-capped rerun must not hit

    def test_different_snapshots_miss(self):
        engine = ExecutionEngine(EMPTY_DATA)
        loop = card_loop()
        for count in (2, 3):
            dom = cards_page(count)
            window = DOMTrace([dom] * 4, 0, 4)
            engine.execute([loop], window, max_actions=len(window))
        assert engine.counters().hits == 0

    def test_disabled_engine_is_a_passthrough(self):
        dom = cards_page(3)
        window = DOMTrace([dom] * 4, 0, 4)
        engine = ExecutionEngine(EMPTY_DATA, use_cache=False)
        result = engine.execute([card_loop()], window, max_actions=len(window))
        assert len(result.actions) == 3
        assert engine.counters().hits == engine.counters().misses == 0


class TestCacheBounds:
    def test_lru_eviction(self):
        cache = ExecutionCache(max_entries=2)
        for index in range(3):
            # one action over a one-snapshot window: exact-table only
            cache.put(("base", index), (index,), 1, ("a",), None)
        assert cache.counters.evictions == 1
        assert cache.get(("base", 0), (0,), 1) is None  # oldest evicted
        assert cache.get(("base", 2), (2,), 1) is not None

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            ExecutionCache(max_entries=0)


class TestConsistencyMemo:
    def test_repeat_check_hits(self):
        dom = cards_page(3)
        snapshots = [dom] * 4
        engine = ExecutionEngine(EMPTY_DATA)
        window = DOMTrace(snapshots, 0, 4)
        produced = engine.execute([card_loop()], window, max_actions=3).actions
        reference = list(produced)
        first = engine.consistent_prefix_length(produced, reference, window)
        second = engine.consistent_prefix_length(produced, reference, window)
        assert first == second == 3
        assert engine.counters().hits >= 1


class TestSynthesizerEquivalence:
    def test_cached_and_uncached_sessions_agree(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 4)
        cached = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        uncached = Synthesizer(EMPTY_DATA, no_execution_cache_config())
        for cut in range(1, len(actions) + 1):
            r_cached = cached.synthesize(actions[:cut], snapshots[: cut + 1])
            r_uncached = uncached.synthesize(actions[:cut], snapshots[: cut + 1])
            assert [canonical_program(p) for p in r_cached.programs] == [
                canonical_program(p) for p in r_uncached.programs
            ]
            assert [str(a) for a in r_cached.predictions] == [
                str(a) for a in r_uncached.predictions
            ]

    def test_stats_report_cache_activity(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 4)
        synthesizer = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        hits = 0
        for cut in range(1, len(actions) + 1):
            result = synthesizer.synthesize(actions[:cut], snapshots[: cut + 1])
            hits += result.stats.cache_hits
            assert result.stats.cache_hits + result.stats.cache_misses >= 0
        assert hits > 0, "incremental session should reuse executions"
        assert 0.0 <= result.stats.cache_hit_rate <= 1.0

    def test_hit_breakdown_reconciles_with_the_aggregate(self):
        # exact + prefix + consistency == hits, both on the engine's own
        # counters and on every per-call stats delta the user sees
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 4)
        synthesizer = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        for cut in range(1, len(actions) + 1):
            stats = synthesizer.synthesize(actions[:cut], snapshots[: cut + 1]).stats
            assert (
                stats.cache_exact_hits
                + stats.cache_prefix_hits
                + stats.cache_consistency_hits
                == stats.cache_hits
            )
        counters = synthesizer.engine.counters()
        assert counters.hits > 0
        assert (
            counters.exact_hits + counters.prefix_hits + counters.consistency_hits
            == counters.hits
        )

    def test_consistency_hits_surface_in_engine_counters(self):
        dom = cards_page(3)
        snapshots = [dom] * 4
        engine = ExecutionEngine(EMPTY_DATA)
        window = DOMTrace(snapshots, 0, 4)
        produced = engine.execute([card_loop()], window, max_actions=3).actions
        reference = list(produced)
        engine.consistent_prefix_length(produced, reference, window)
        engine.consistent_prefix_length(produced, reference, window)
        counters = engine.counters()
        assert counters.consistency_hits == 1
        assert (
            counters.exact_hits + counters.prefix_hits + counters.consistency_hits
            == counters.hits
        )

    def test_uncached_config_reports_no_activity(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 4)
        synthesizer = Synthesizer(EMPTY_DATA, no_execution_cache_config())
        result = synthesizer.synthesize(actions, snapshots)
        assert result.stats.cache_hits == 0
        assert result.stats.cache_misses == 0
