"""Tests for the demo-auth-auto interactive session (§6)."""

import pytest

from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.browser import Browser, record_ground_truth
from repro.interact import InteractiveSession, NoisyUser, OracleUser, Phase
from repro.lang import DataSource, parse_program
from repro.synth import Synthesizer

ZIPS = DataSource({"zips": ["48104"]})

SCRAPE_NAMES = """
EnterData(//input[@name='search'][1], x["zips"][1])
Click(//button[@class='squareButton btnDoSearch'][1])
while true do
  foreach r in Dscts(/, div[@class='rightContainer']) do
    ScrapeText(r//h3[1])
    ScrapeText(r//div[@class='locatorPhone'][1])
  Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
"""


def make_task(pages=2, stores=3):
    site_for_recording = StoreLocatorSite(pages_per_zip=pages, stores_per_page=stores)
    recording = record_ground_truth(site_for_recording, parse_program(SCRAPE_NAMES), ZIPS)
    live_site = StoreLocatorSite(pages_per_zip=pages, stores_per_page=stores)
    return recording, live_site


class TestOracleUser:
    def test_follows_recording(self):
        recording, _ = make_task()
        user = OracleUser(recording)
        assert not user.done
        first = user.demonstrate()
        assert first.kind == "EnterData"
        assert user.observe(first)
        assert user.position == 1

    def test_rejects_wrong_action(self):
        recording, _ = make_task()
        user = OracleUser(recording)
        wrong = recording.actions[3]
        assert not user.approves(wrong)
        assert not user.observe(wrong)
        assert user.position == 0

    def test_judge_picks_matching_prediction(self):
        recording, _ = make_task()
        user = OracleUser(recording)
        intended = recording.actions[0]
        wrong = recording.actions[5]
        assert user.judge([wrong, intended]) == 1
        assert user.judge([wrong]) is None
        assert user.judge([]) is None

    def test_done_after_all_actions(self):
        recording, _ = make_task()
        user = OracleUser(recording)
        for action in recording.actions:
            assert user.observe(action)
        assert user.done
        assert user.intended_action() is None


class TestInteractiveSession:
    def run_session(self, user_cls=OracleUser, **user_kwargs):
        recording, live_site = make_task()
        browser = Browser(live_site, ZIPS)
        synthesizer = Synthesizer(ZIPS)
        user = user_cls(recording, **user_kwargs)
        session = InteractiveSession(browser, synthesizer, user)
        report = session.run()
        return recording, browser, report

    def test_completes_task(self):
        recording, browser, report = self.run_session()
        assert report.completed
        assert report.total_actions == recording.length

    def test_most_actions_automated(self):
        # A 3-page x 4-store task (28 actions): the paper's users
        # demonstrate ~6-10 actions and the robot does the rest.
        recording, live_site = make_task(pages=3, stores=4)
        browser = Browser(live_site, ZIPS)
        session = InteractiveSession(browser, Synthesizer(ZIPS), OracleUser(recording))
        report = session.run()
        assert report.completed
        assert report.demonstrated <= 12
        assert report.automated + report.authorized > report.demonstrated

    def test_outputs_match_ground_truth(self):
        recording, browser, report = self.run_session()
        assert browser.outputs == recording.outputs

    def test_phases_progress(self):
        _, _, report = self.run_session()
        assert "auth" in report.phase_log
        assert "auto" in report.phase_log

    def test_noisy_user_still_completes(self):
        recording, browser, report = self.run_session(
            user_cls=NoisyUser, mistake_rate=0.2, seed=7
        )
        assert report.completed
        assert browser.outputs == recording.outputs
        # rejecting correct predictions costs extra demonstrations
        oracle_report = self.run_session()[2]
        assert report.demonstrated >= oracle_report.demonstrated

    def test_max_steps_bounds_runtime(self):
        recording, live_site = make_task()
        browser = Browser(live_site, ZIPS)
        session = InteractiveSession(
            browser, Synthesizer(ZIPS), OracleUser(recording), max_steps=3
        )
        report = session.run()
        assert not report.completed
