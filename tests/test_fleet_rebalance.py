"""The auto-rebalancer (repro.fleet.rebalance) and its fleet surface.

``plan_moves`` is pure planning over observed counts, so the policy is
pinned with unit tests; the end-to-end tests boot two real workers,
skew their session counts, and assert the controller drains the hot one
through the migrate-push flow while skipping unreachable members.  Also
covers the supporting service surface this PR adds: ``GET
/v1/sessions`` (typed ``session_ids``), the ``repro_sessions_live``
gauge, and keep-alive connection reuse across short-lived clients.
"""

import threading
from dataclasses import replace

import pytest

from repro.engine.cache import reset_process_cache
from repro.fleet.pool import pool, reset_pool
from repro.fleet.rebalance import (
    Move,
    WorkerLoad,
    plan_moves,
    rebalance_once,
    run_rebalancer,
    scrape_load,
)
from repro.obs import metrics as obs_metrics
from repro.service.client import ServiceClient
from repro.service.server import make_server
from repro.synth.config import DEFAULT_CONFIG

from helpers import cards_page


def _load(url, count, ids=None):
    ids = tuple(f"{url}-s{i}" for i in range(count)) if ids is None else ids
    return WorkerLoad(url=url, sessions=count, session_ids=ids)


class TestPlanMoves:
    def test_balanced_fleets_plan_nothing(self):
        assert plan_moves([]) == []
        assert plan_moves([_load("a", 3)]) == []
        assert plan_moves([_load("a", 3), _load("b", 2)], skew=2) == []

    def test_half_the_gap_moves_hot_to_cold(self):
        moves = plan_moves([_load("a", 6), _load("b", 0)], skew=2)
        assert len(moves) == 1
        assert moves[0].source == "a" and moves[0].target == "b"
        assert len(moves[0].sessions) == 3  # half of the gap of 6

    def test_newest_sessions_drain_first(self):
        moves = plan_moves(
            [_load("a", 4, ids=("s1", "s2", "s3", "s4")), _load("b", 0)],
            skew=1,
        )
        assert moves[0].sessions == ("s4", "s3")  # newest first

    def test_skew_zero_converges_to_even(self):
        loads = [_load("a", 5), _load("b", 0)]
        moves = plan_moves(loads, skew=0)
        counts = {"a": 5, "b": 0}
        for move in moves:
            counts[move.source] -= len(move.sessions)
            counts[move.target] += len(move.sessions)
        assert abs(counts["a"] - counts["b"]) <= 1

    def test_three_workers_drain_toward_the_mean(self):
        loads = [_load("a", 9), _load("b", 0), _load("c", 0)]
        counts = {"a": 9, "b": 0, "c": 0}
        for move in plan_moves(loads, skew=1):
            counts[move.source] -= len(move.sessions)
            counts[move.target] += len(move.sessions)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_gauge_without_drainable_ids_stops(self):
        # the worker claims 5 sessions but exposes only one id: plan
        # what is drainable, never invent session ids
        moves = plan_moves(
            [_load("a", 5, ids=("only",)), _load("b", 0)], skew=1
        )
        assert [move.sessions for move in moves] == [("only",)]


def _boot():
    server = make_server(
        port=0,
        config=replace(DEFAULT_CONFIG, cache_backend="memory"),
        timeout=5.0,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


@pytest.fixture
def two_workers():
    reset_process_cache()
    reset_pool()
    server_a, url_a = _boot()
    server_b, url_b = _boot()
    try:
        yield (server_a, url_a), (server_b, url_b)
    finally:
        for server in (server_a, server_b):
            server.shutdown()
            server.manager.close_all()
            server.server_close()
        reset_process_cache()
        reset_pool()


class TestEndToEnd:
    def test_hot_worker_drains_to_the_cold_one(self, two_workers):
        (server_a, url_a), (server_b, url_b) = two_workers
        with ServiceClient(url_a) as client:
            for _ in range(4):
                client.create_session(cards_page(3))
        outcome = rebalance_once([url_a, url_b], skew=0, timeout=5.0)
        assert outcome.moved == 2
        assert outcome.failed == 0
        assert len(server_a.manager.session_ids()) == 2
        assert len(server_b.manager.session_ids()) == 2

    def test_dry_run_plans_without_moving(self, two_workers):
        (server_a, url_a), (_, url_b) = two_workers
        with ServiceClient(url_a) as client:
            for _ in range(4):
                client.create_session(cards_page(3))
        outcome = rebalance_once([url_a, url_b], skew=0, dry_run=True)
        assert outcome.moves and outcome.moved == 0
        assert len(server_a.manager.session_ids()) == 4

    def test_unreachable_workers_are_skipped(self, two_workers):
        (server_a, url_a), (_, url_b) = two_workers
        with ServiceClient(url_a) as client:
            client.create_session(cards_page(3))
        outcome = rebalance_once(
            [url_a, url_b, "http://127.0.0.1:9"], skew=0, timeout=0.5
        )
        assert outcome.unreachable == ["http://127.0.0.1:9"]
        assert outcome.failed == 0

    def test_run_rebalancer_one_shot_exit_code(self, two_workers, capsys):
        (_, url_a), (_, url_b) = two_workers
        assert run_rebalancer([url_a, url_b], timeout=5.0) == 0
        printed = capsys.readouterr().out
        assert printed.startswith("rebalance: skew=0")

    def test_scrape_load_reads_count_ids_and_latency(self, two_workers):
        (_, url_a), _ = two_workers
        obs_metrics.reset_registry()
        with ServiceClient(url_a) as client:
            sid = client.create_session(cards_page(3))
        load = scrape_load(url_a, timeout=5.0)
        assert load.sessions == 1
        assert load.session_ids == (sid,)


class TestFleetServiceSurface:
    def test_session_ids_over_http(self, two_workers):
        (_, url_a), _ = two_workers
        with ServiceClient(url_a) as client:
            assert client.session_ids() == []
            sid = client.create_session(cards_page(3))
            assert client.session_ids() == [sid]
            client.close_session(sid)
            assert client.session_ids() == []

    def test_sessions_live_gauge_tracks_mutations(self, two_workers):
        (_, url_a), _ = two_workers
        obs_metrics.reset_registry()
        with ServiceClient(url_a) as client:
            sid = client.create_session(cards_page(3))
            assert 'repro_sessions_live 1' in obs_metrics.registry().render()
            client.close_session(sid)
            assert 'repro_sessions_live 0' in obs_metrics.registry().render()

    def test_short_lived_clients_share_keepalive_connections(self, two_workers):
        (_, url_a), _ = two_workers
        before = pool().stats()
        for _ in range(5):
            with ServiceClient(url_a) as client:
                assert client.health()
        after = pool().stats()
        # five sequential clients ride (mostly) one parked connection
        assert after["reused"] - before["reused"] >= 3
        assert after["created"] - before["created"] <= 2
