"""Unit tests for action/trace consistency (Definition 4.1 auxiliaries)."""

from repro.dom import E, page, parse_selector
from repro.lang import X, click, enter_data, go_back, scrape_text, send_keys
from repro.semantics import (
    DOMTrace,
    actions_consistent,
    consistent_prefix_length,
    traces_consistent,
)


def sample_page():
    return page(
        E("div", {"class": "card"}, E("h3", text="one")),
        E("div", {"class": "card"}, E("h3", text="two")),
    )


class TestActionConsistency:
    def setup_method(self):
        self.dom = sample_page()

    def test_same_node_different_selectors(self):
        raw = parse_selector("/html[1]/body[1]/div[1]/h3[1]")
        alt = parse_selector("//div[@class='card'][1]/h3[1]")
        assert actions_consistent(scrape_text(raw), scrape_text(alt), self.dom)

    def test_different_nodes_inconsistent(self):
        first = parse_selector("//h3[1]")
        second = parse_selector("//h3[2]")
        assert not actions_consistent(scrape_text(first), scrape_text(second), self.dom)

    def test_kind_mismatch(self):
        sel = parse_selector("//h3[1]")
        assert not actions_consistent(click(sel), scrape_text(sel), self.dom)

    def test_unresolvable_selector_inconsistent(self):
        ok = parse_selector("//h3[1]")
        missing = parse_selector("//h3[9]")
        assert not actions_consistent(scrape_text(missing), scrape_text(ok), self.dom)
        assert not actions_consistent(scrape_text(ok), scrape_text(missing), self.dom)

    def test_parameterless_actions(self):
        assert actions_consistent(go_back(), go_back(), self.dom)

    def test_send_keys_text_compared(self):
        sel = parse_selector("//h3[1]")
        assert actions_consistent(send_keys(sel, "a"), send_keys(sel, "a"), self.dom)
        assert not actions_consistent(send_keys(sel, "a"), send_keys(sel, "b"), self.dom)

    def test_enter_data_paths_compared_structurally(self):
        sel = parse_selector("//h3[1]")
        path_a = X.extend("zips").extend(1)
        path_b = X.extend("zips").extend(2)
        assert actions_consistent(enter_data(sel, path_a), enter_data(sel, path_a), self.dom)
        assert not actions_consistent(enter_data(sel, path_a), enter_data(sel, path_b), self.dom)


class TestTraceConsistency:
    def setup_method(self):
        self.dom = sample_page()
        self.doms = DOMTrace([self.dom] * 3)
        self.raw = [
            scrape_text(parse_selector("/html[1]/body[1]/div[1]/h3[1]")),
            scrape_text(parse_selector("/html[1]/body[1]/div[2]/h3[1]")),
        ]
        self.alt = [
            scrape_text(parse_selector("//div[@class='card'][1]/h3[1]")),
            scrape_text(parse_selector("//div[@class='card'][2]/h3[1]")),
        ]

    def test_pointwise_consistency(self):
        assert traces_consistent(self.raw, self.alt, self.doms)

    def test_length_mismatch(self):
        assert not traces_consistent(self.raw, self.alt[:1], self.doms)

    def test_prefix_length(self):
        mixed = [self.alt[0], scrape_text(parse_selector("//h3[1]"))]
        assert consistent_prefix_length(mixed, self.raw, self.doms) == 1

    def test_prefix_capped_by_doms(self):
        doms = DOMTrace([self.dom])
        assert consistent_prefix_length(self.raw, self.alt, doms) == 1

    def test_insufficient_doms_fails_full_consistency(self):
        doms = DOMTrace([self.dom])
        assert not traces_consistent(self.raw, self.alt, doms)
