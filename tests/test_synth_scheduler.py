"""Validation schedulers (repro.synth.scheduler).

The scheduler seam must be invisible in the output: ``PoolScheduler``
has to synthesize byte-identical programs, predictions, and counts to
``SerialScheduler`` on any demonstration — the pool changes the
*schedule* of Algorithm 1's validation loop, never its result.  Pinned
three ways: an exhaustive sweep over a representative benchmark,
property-based over randomized traces, and the merge-based stats
invariant under worker threads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks.suite import benchmark_by_id
from repro.dom import E, page, raw_path
from repro.lang import EMPTY_DATA, click, scrape_text
from repro.lang.ast import canonical_program
from repro.synth.config import (
    DEFAULT_CONFIG,
    parallel_validation_config,
    resolved_validation_workers,
    serial_validation_config,
)
from repro.synth.scheduler import PoolScheduler, SerialScheduler, scheduler_for
from repro.synth.synthesizer import Synthesizer

from helpers import cards_page, scrape_cards_trace

#: Generous per-call deadline: scheduler parity is only guaranteed for
#: calls that finish within their budget (the two schedules clip
#: differently when the deadline fires mid-list).
TIMEOUT = 30.0


def _session_outputs(synthesizer, actions, snapshots):
    """Ranked programs + predictions for every prefix of a trace."""
    outputs = []
    for cut in range(1, len(actions) + 1):
        result = synthesizer.synthesize(
            actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT
        )
        outputs.append(
            (
                tuple(canonical_program(p) for p in result.programs),
                tuple(str(a) for a in result.predictions),
                result.stats.pops,
                result.stats.speculated,
                result.stats.validated,
            )
        )
    return outputs


class TestSchedulerFactory:
    def test_serial_below_two_workers(self):
        assert isinstance(scheduler_for(0), SerialScheduler)
        assert isinstance(scheduler_for(1), SerialScheduler)

    def test_pool_from_two_workers(self):
        pool = scheduler_for(3)
        assert isinstance(pool, PoolScheduler)
        assert pool.workers == 3
        pool.close()

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATION_WORKERS", "4")
        assert resolved_validation_workers(DEFAULT_CONFIG) == 4
        # an explicit config value beats the environment
        assert resolved_validation_workers(serial_validation_config()) == 0
        monkeypatch.delenv("REPRO_VALIDATION_WORKERS")
        assert resolved_validation_workers(DEFAULT_CONFIG) == 0

    def test_synthesizer_wires_the_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATION_WORKERS", "2")
        synthesizer = Synthesizer(EMPTY_DATA)
        try:
            assert isinstance(synthesizer.scheduler, PoolScheduler)
            assert synthesizer.scheduler.workers == 2
        finally:
            synthesizer.close()


class TestPoolSerialParity:
    def test_benchmark_sweep(self):
        """Every prefix of a real benchmark: identical ranked output."""
        recording = benchmark_by_id("b12").record()
        length = min(recording.length - 1, 16)
        actions, snapshots = recording.prefix(length)
        serial = Synthesizer(benchmark_by_id("b12").data, serial_validation_config())
        pool = Synthesizer(
            benchmark_by_id("b12").data, parallel_validation_config(4, shared=False)
        )
        # force the pool to dispatch even tiny candidate lists, so the
        # wave machinery (not the inline fallback) is what's compared
        pool._scheduler = PoolScheduler(4, min_batch=2)
        try:
            assert _session_outputs(serial, actions, snapshots) == _session_outputs(
                pool, actions, snapshots
            )
        finally:
            pool.close()

    def test_merge_based_stats_stay_exact_under_the_pool(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 5)
        pool = Synthesizer(EMPTY_DATA, parallel_validation_config(4, shared=False))
        pool._scheduler = PoolScheduler(4, min_batch=2)
        try:
            for cut in range(1, len(actions) + 1):
                stats = pool.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=TIMEOUT
                ).stats
                # the exact/prefix/consistency breakdown must reconcile
                # even though workers recorded concurrently
                assert stats.cache_hits == (
                    stats.cache_exact_hits
                    + stats.cache_prefix_hits
                    + stats.cache_consistency_hits
                )
                assert stats.validation_workers == 4
            # the last call certainly executed loops through the engine
            assert stats.cache_hits + stats.cache_misses > 0
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Property-based parity over randomized demonstrations
# ----------------------------------------------------------------------
CLASSES = ("card", "row", "item")


@st.composite
def random_traces(draw):
    """A randomized list-scrape demonstration (actions + snapshots).

    Pages vary in item count, per-item fields, sidebar noise, and CSS
    class; traces scrape a random number of fields of a random number
    of leading items — the span/pivot structure speculation feeds on.
    """
    cls = draw(st.sampled_from(CLASSES))
    items = draw(st.integers(3, 6))
    fields = draw(st.integers(1, 2))
    sidebar = draw(st.booleans())
    cards = [
        E(
            "div",
            {"class": cls},
            E("h3", text=f"Item {index}"),
            *( [E("span", {"class": "meta"}, text=f"meta {index}")] if fields > 1 else [] ),
        )
        for index in range(1, items + 1)
    ]
    extra = [E("div", {"class": "sidebar"}, text="ads")] if sidebar else []
    dom = page(*extra, *cards)
    scraped_items = draw(st.integers(2, items))
    actions = []
    targets = []
    for card in dom.iter_subtree():
        if card.attrs.get("class") == cls:
            targets.append(card)
    for item in targets[:scraped_items]:
        for child in item.children[:fields]:
            actions.append(scrape_text(raw_path(child)))
    snapshots = [dom] * (len(actions) + 1)
    return actions, snapshots


class TestRandomTraceParity:
    @given(random_traces())
    @settings(max_examples=15, deadline=None)
    def test_pool_equals_serial_on_randomized_traces(self, trace):
        actions, snapshots = trace
        serial = Synthesizer(EMPTY_DATA, serial_validation_config())
        pool = Synthesizer(EMPTY_DATA, parallel_validation_config(4, shared=False))
        pool._scheduler = PoolScheduler(4, min_batch=2)
        try:
            assert _session_outputs(serial, actions, snapshots) == _session_outputs(
                pool, actions, snapshots
            )
        finally:
            pool.close()


class TestPoolMechanics:
    def test_rejects_degenerate_pools(self):
        with pytest.raises(ValueError):
            PoolScheduler(1)

    def test_close_is_idempotent(self):
        pool = PoolScheduler(2)
        pool.close()
        pool.close()

    def test_index_builds_attributed_from_workers(self):
        # recording resolves selectors against the page, which would
        # pre-build its index — synthesize over fresh clones instead, so
        # the builds happen inside the synthesize call (pool workers
        # included) and must land in the call's stats
        actions, _ = scrape_cards_trace(cards_page(5), 4)
        dom = cards_page(5).clone().freeze()
        snapshots = [dom] * (len(actions) + 1)
        pool = Synthesizer(EMPTY_DATA, parallel_validation_config(4, shared=False))
        pool._scheduler = PoolScheduler(4, min_batch=2)
        try:
            stats = pool.synthesize(actions, snapshots, timeout=TIMEOUT).stats
            assert stats.index_builds == 1
        finally:
            pool.close()
