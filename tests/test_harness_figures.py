"""Tests for the text chart renderers (repro.harness.figures)."""

from repro.harness.figures import (
    FULL,
    _bar,
    figure12_chart,
    horizontal_bars,
    interval_bars,
)


class TestBar:
    def test_empty_and_full(self):
        assert _bar(0.0, 10).strip() == ""
        assert _bar(1.0, 10) == FULL * 10

    def test_half(self):
        assert _bar(0.5, 10).rstrip() == FULL * 5

    def test_clamps_out_of_range(self):
        assert _bar(2.0, 4) == FULL * 4
        assert _bar(-1.0, 4).strip() == ""

    def test_partial_cells(self):
        # 1/16 of width 2 = one eighth of the first cell
        assert _bar(1 / 16, 2)[0] in "▏▎▍▌▋▊▉█"


class TestHorizontalBars:
    def test_labels_aligned(self):
        chart = horizontal_bars([("b9", 0.5), ("b101", 1.0)], width=8)
        lines = chart.splitlines()
        assert lines[0].startswith("  b9 |")
        assert lines[1].startswith("b101 |")

    def test_scaling_to_max(self):
        chart = horizontal_bars([("a", 2.0), ("b", 4.0)], width=4)
        top, bottom = chart.splitlines()
        assert bottom.count(FULL) == 4
        assert top.count(FULL) == 2

    def test_explicit_max(self):
        chart = horizontal_bars([("a", 0.5)], width=4, max_value=1.0)
        assert chart.count(FULL) == 2

    def test_all_zero_safe(self):
        assert "0.00" in horizontal_bars([("a", 0.0)])

    def test_empty(self):
        assert horizontal_bars([]) == "(no data)"


class TestIntervalBars:
    def test_median_marked(self):
        chart = interval_bars([("a", (0.0, 0.2, 0.5, 0.8, 1.0))], width=20)
        assert "#" in chart
        assert "med 0.500" in chart

    def test_whiskers_cover_range(self):
        chart = interval_bars([("a", (0.0, 0.4, 0.5, 0.6, 1.0))], width=20)
        body = chart.split("|")[1]
        assert body[0] == "·"
        assert body[-1] == "·"
        assert "═" in body

    def test_degenerate_point(self):
        chart = interval_bars([("a", (0.5, 0.5, 0.5, 0.5, 0.5))], width=10)
        assert chart.count("#") == 1

    def test_empty(self):
        assert interval_bars([]) == "(no data)"


class TestFigure12Chart:
    def test_combines_both_series(self):
        rows = [
            ("b1", 0.8, (0.01, 0.02, 0.03, 0.04, 0.05)),
            ("b2", 1.0, (0.001, 0.002, 0.003, 0.004, 0.005)),
        ]
        chart = figure12_chart(rows)
        assert "accuracy per benchmark" in chart
        assert "synthesis time per benchmark" in chart
        assert chart.count("b1") == 2  # appears in both charts

    def test_q1_report_renders_chart(self):
        from repro.harness.q1 import BenchmarkResult, Q1Report

        result = BenchmarkResult(bid="b1", family="f", tests=10, correct=8)
        result.prediction_times.extend([0.01, 0.02, 0.03])
        report = Q1Report([result], trace_cap=10, timeout=1.0)
        chart = report.render_figure12_chart()
        assert "b1" in chart and "#" in chart
