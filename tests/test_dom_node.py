"""Unit tests for the DOM node model."""

import pytest

from repro.dom import DOMNode, E, page


def make_sample():
    return page(
        E("div", {"class": "a"}, E("h3", text="one"), E("p", text="hello")),
        E("div", {"class": "b"}, E("h3", text="two")),
        E("span", text="tail"),
    )


class TestConstruction:
    def test_page_builds_html_body(self):
        root = make_sample()
        assert root.tag == "html"
        assert root.children[0].tag == "body"

    def test_freeze_sets_parents(self):
        root = make_sample()
        body = root.children[0]
        assert body.parent is root
        assert body.children[0].parent is body

    def test_frozen_rejects_append(self):
        root = make_sample()
        with pytest.raises(ValueError):
            root.append(DOMNode("div"))

    def test_builder_attr_dict_and_kwargs(self):
        node = E("div", {"id": "x"}, cls="y", name="z")
        assert node.attrs == {"id": "x", "class": "y", "name": "z"}

    def test_builder_rejects_bad_child(self):
        with pytest.raises(TypeError):
            E("div", 42)


class TestQueries:
    def test_iter_subtree_document_order(self):
        root = make_sample()
        tags = [node.tag for node in root.iter_subtree()]
        assert tags == ["html", "body", "div", "h3", "p", "div", "h3", "span"]

    def test_iter_descendants_excludes_self(self):
        root = make_sample()
        assert all(node is not root for node in root.iter_descendants())

    def test_text_content_concatenates(self):
        root = make_sample()
        assert root.text_content() == "one hello two tail"

    def test_root_and_ancestors(self):
        root = make_sample()
        h3 = root.children[0].children[0].children[0]
        assert h3.tag == "h3"
        assert h3.root() is root
        assert [a.tag for a in h3.ancestors()] == ["div", "body", "html"]

    def test_is_ancestor_of(self):
        root = make_sample()
        body = root.children[0]
        h3 = body.children[0].children[0]
        assert body.is_ancestor_of(h3)
        assert not h3.is_ancestor_of(body)

    def test_child_index_by_tag_counts_same_tag_only(self):
        root = make_sample()
        body = root.children[0]
        second_div = body.children[1]
        span = body.children[2]
        assert second_div.child_index_by_tag() == 2
        assert span.child_index_by_tag() == 1

    def test_root_child_index_is_one(self):
        root = make_sample()
        assert root.child_index_by_tag() == 1

    def test_get_attribute_default(self):
        node = E("div", {"class": "x"})
        assert node.get("class") == "x"
        assert node.get("id", "none") == "none"


class TestCloneAndIdentity:
    def test_clone_is_deep_and_unfrozen(self):
        root = make_sample()
        copy = root.clone()
        assert not copy.frozen
        assert copy is not root
        assert copy.structural_key() == root.structural_key()
        copy.children[0].children[0].attrs["class"] = "mutated"
        assert root.children[0].children[0].attrs["class"] == "a"

    def test_structural_key_distinguishes_text(self):
        a = E("div", text="x")
        b = E("div", text="y")
        assert a.structural_key() != b.structural_key()

    def test_structural_key_ignores_attr_order(self):
        a = DOMNode("div", {"a": "1", "b": "2"})
        b = DOMNode("div", {"b": "2", "a": "1"})
        assert a.structural_key() == b.structural_key()
