"""Suite self-analysis goldens: every expected program analyzes clean.

The benchmark suite's ground-truth programs are the programs the
synthesizer is supposed to produce — so the analysis layer must bless
every one of them: a terminating (or progress-making) verdict, no
error findings against the program's own recording, and a recorded
action count inside the statically computed cost interval.  A
regression in any abstract domain that starts flagging known-good
programs shows up here before it ever reaches ``repro analyze`` users.

The tail also pins the synthesis hot path: on a validation-pressure
subject, pruning on vs off must synthesize byte-identical per-call
programs while executing strictly fewer engine validations.
"""

from dataclasses import replace

import pytest

from repro.analysis import UNKNOWN, analyze_program
from repro.benchmarks.suite import all_benchmarks, benchmark_by_id
from repro.lang.ast import Program
from repro.lang.pretty import format_program
from repro.synth.config import serial_validation_config
from repro.synth.synthesizer import Synthesizer


def _program_benchmarks():
    return [b for b in all_benchmarks() if isinstance(b.ground_truth, Program)]


@pytest.mark.parametrize(
    "bench", _program_benchmarks(), ids=lambda b: b.bid
)
class TestSuiteSelfAnalysis:
    def test_ground_truth_analyzes_clean(self, bench):
        recording = bench.record()
        analysis = analyze_program(
            bench.ground_truth, bench.data, recording.snapshots
        )
        assert analysis.termination != UNKNOWN, (
            f"{bench.bid}: expected program got an unknown-termination verdict"
        )
        errors = [f for f in analysis.findings if f.severity == "error"]
        assert not errors, f"{bench.bid}: {[str(f) for f in errors]}"

    def test_recorded_length_inside_cost_interval(self, bench):
        recording = bench.record()
        cost = analyze_program(bench.ground_truth, bench.data).cost
        assert cost.contains(recording.length), (
            f"{bench.bid}: {recording.length} recorded actions outside {cost}"
        )


class TestPruneParity:
    def test_pruning_preserves_programs_and_saves_validations(self):
        bench = benchmark_by_id("b16")
        recording = bench.record()
        length = recording.length - 1
        actions, snapshots = recording.prefix(length)
        outcomes = {}
        for flag in (False, True):
            config = replace(serial_validation_config(), static_prune=flag)
            synthesizer = Synthesizer(bench.data, config)
            programs, validations, pruned = [], 0, 0
            for cut in range(1, length + 1):
                result = synthesizer.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=10.0
                )
                validations += result.stats.validations
                pruned += result.stats.pruned
                programs.append(
                    tuple(format_program(p) for p in result.programs)
                )
            synthesizer.close()
            outcomes[flag] = (programs, validations, pruned)
        off_programs, off_validations, off_pruned = outcomes[False]
        on_programs, on_validations, on_pruned = outcomes[True]
        assert off_programs == on_programs
        assert off_pruned == 0
        assert on_pruned > 0
        assert on_validations < off_validations
