"""The metrics registry: exactness under concurrency, exposition golden.

The registry sits on synthesis hot paths, so its contract is pinned
from three sides: counters/histograms stay *exact* under a thread-pool
hammer (no lost updates), the Prometheus text rendering matches a
committed golden byte for byte (the ``GET /v1/metrics`` compatibility
surface), and the disabled path hands out the shared null child so
instrumented modules never branch themselves.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    exponential_buckets,
)


@pytest.fixture
def registry():
    """A private, enabled registry (the process singleton is left alone)."""
    return MetricsRegistry(enabled=True)


class TestFamilies:
    def test_counter_names_must_end_in_total(self, registry):
        with pytest.raises(ValueError, match="_total"):
            registry.counter("repro_test_ops", "Ops.")

    def test_counters_only_go_up(self, registry):
        counter = registry.counter("repro_test_ops_total", "Ops.")
        counter.inc(2)
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_get_or_create_returns_the_same_family(self, registry):
        first = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        again = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        assert first is again

    def test_shape_mismatch_is_rejected(self, registry):
        registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        with pytest.raises(ValueError, match="different shape"):
            registry.counter("repro_test_ops_total", "Ops.", ("other",))
        with pytest.raises(ValueError, match="different shape"):
            registry.gauge("repro_test_ops_total", "Ops.", ("kind",))

    def test_unknown_labels_are_rejected(self, registry):
        counter = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.labels(other="x")

    def test_invalid_metric_names_are_rejected(self, registry):
        for bad in ("", "1abc", "with-dash", "with space"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.gauge(bad, "Bad.")

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_test_depth", "Depth.")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.labels().value == 4.0

    def test_histogram_bucket_boundaries_are_le(self, registry):
        histogram = registry.histogram(
            "repro_test_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        # an observation exactly on a bound lands in that bucket (le)
        histogram.observe(0.1)
        histogram.observe(1.0)
        histogram.observe(2.0)
        counts, total = histogram.labels().snapshot()
        assert counts == [1, 1, 1]
        assert total == pytest.approx(3.1)

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 3)
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(0.0005)

    def test_disabled_registry_hands_out_the_null_child(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        child = counter.labels(kind="a")
        assert child is counter.labels(kind="b")
        child.inc()
        child.observe(1.0)
        child.set(2.0)
        child.dec()
        assert registry.render() == (
            "# HELP repro_test_ops_total Ops.\n# TYPE repro_test_ops_total counter\n"
        )

    def test_reset_preserves_family_identity(self, registry):
        counter = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        counter.labels(kind="a").inc(3)
        registry.reset()
        assert counter is registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        assert "repro_test_ops_total{" not in registry.render()
        counter.labels(kind="a").inc()
        assert counter.labels(kind="a").value == 1.0


class TestConcurrency:
    def test_counter_totals_are_exact_under_a_thread_hammer(self, registry):
        counter = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        histogram = registry.histogram(
            "repro_test_seconds", "Latency.", buckets=(0.5,)
        )
        gauge = registry.gauge("repro_test_depth", "Depth.")
        threads, per_thread = 8, 2500

        def hammer(index: int) -> None:
            kind = "even" if index % 2 == 0 else "odd"
            for _ in range(per_thread):
                counter.labels(kind=kind).inc()
                histogram.observe(0.25)
                gauge.inc()

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))

        expected = threads // 2 * per_thread
        assert counter.labels(kind="even").value == expected
        assert counter.labels(kind="odd").value == expected
        counts, total = histogram.labels().snapshot()
        assert counts == [threads * per_thread, 0]
        assert total == pytest.approx(0.25 * threads * per_thread)
        assert gauge.labels().value == threads * per_thread


GOLDEN_TEXT = """\
# HELP repro_test_depth Current depth.
# TYPE repro_test_depth gauge
repro_test_depth 3.5
# HELP repro_test_ops_total Operations, by kind.
# TYPE repro_test_ops_total counter
repro_test_ops_total{kind="a"} 1
repro_test_ops_total{kind="b"} 2
# HELP repro_test_seconds Observed latency.
# TYPE repro_test_seconds histogram
repro_test_seconds_bucket{le="0.1"} 1
repro_test_seconds_bucket{le="1"} 2
repro_test_seconds_bucket{le="+Inf"} 3
repro_test_seconds_sum 5.55
repro_test_seconds_count 3
"""


class TestExposition:
    def test_prometheus_text_golden(self, registry):
        counter = registry.counter(
            "repro_test_ops_total", "Operations, by kind.", ("kind",)
        )
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc(2)
        gauge = registry.gauge("repro_test_depth", "Current depth.")
        gauge.set(3.5)
        histogram = registry.histogram(
            "repro_test_seconds", "Observed latency.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert registry.render() == GOLDEN_TEXT

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
        counter.labels(kind='we"ird\\va\nlue').inc()
        rendered = registry.render()
        assert 'kind="we\\"ird\\\\va\\nlue"' in rendered

    def test_help_text_is_escaped(self, registry):
        registry.counter("repro_test_ops_total", "line one\nline two", ())
        assert "# HELP repro_test_ops_total line one\\nline two" in registry.render()

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""

    def test_content_type_is_the_text_format(self):
        assert obs_metrics.CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestProcessSingleton:
    def test_reset_registry_reads_the_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        obs_metrics.reset_registry()
        try:
            assert not obs_metrics.registry().enabled
            counter = obs_metrics.registry().counter(
                "repro_test_singleton_total", "Test.", ("kind",)
            )
            assert counter.labels(kind="x") is counter.labels(kind="y")
        finally:
            monkeypatch.delenv("REPRO_OBS")
            obs_metrics.reset_registry()
        assert obs_metrics.registry().enabled
