"""Per-family tests for the synthetic site substrate.

Each site is a deterministic state machine; these tests pin rendering
structure (what the selector search relies on), transition behaviour,
and determinism across instances.
"""

import pytest

from repro.benchmarks.sites.calculator import CalculatorSite
from repro.benchmarks.sites.forum import ForumSite
from repro.benchmarks.sites.job_board import JobBoardSite
from repro.benchmarks.sites.match_list import MatchListSite
from repro.benchmarks.sites.news_list import NewsListSite
from repro.benchmarks.sites.plain_lists import (
    NestedListSite,
    PlainListSite,
    TripleListSite,
)
from repro.benchmarks.sites.product_catalog import ProductCatalogSite
from repro.benchmarks.sites.search_directory import SearchDirectorySite
from repro.benchmarks.sites.sectioned_catalog import SectionedCatalogSite
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.benchmarks.sites.unicorn_namer import UnicornNamerSite
from repro.benchmarks.sites.wiki_table import WikiTableSite
from repro.browser import Browser
from repro.dom import parse_selector, resolve
from repro.lang import DataSource, X, click, enter_data, scrape_text
from repro.util import ReplayError


def count(dom, selector_text):
    total = 0
    index = 1
    while resolve(parse_selector(f"{selector_text}[{index}]"), dom) is not None:
        total += 1
        index += 1
    return total


class TestStoreLocator:
    def test_render_is_memoised_and_deterministic(self):
        site = StoreLocatorSite(2, 3)
        state = ("results", "48104", 1, "48104")
        assert site.page(state) is site.page(state)
        other = StoreLocatorSite(2, 3)
        assert other.page(state).structural_key() == site.page(state).structural_key()

    def test_card_count_matches_config(self):
        site = StoreLocatorSite(2, 7)
        dom = site.page(("results", "48104", 1, "48104"))
        assert count(dom, "//div[@class='rightContainer']") == 7

    def test_store_records_stable_across_instances(self):
        first = StoreLocatorSite().store("48104", 2, 3)
        second = StoreLocatorSite().store("48104", 2, 3)
        assert first == second

    def test_prev_button_only_after_page_one(self):
        site = StoreLocatorSite(3, 2)
        page1 = site.page(("results", "48104", 1, "48104"))
        page2 = site.page(("results", "48104", 2, "48104"))
        assert count(page1, "//button[@class='sprite-prev-page-arrow']") == 0
        assert count(page2, "//button[@class='sprite-prev-page-arrow']") == 1

    def test_prev_click_goes_back_a_page(self):
        site = StoreLocatorSite(3, 2)
        browser = Browser(site)
        browser._state = ("results", "48104", 2, "48104")
        browser.perform(click(parse_selector(
            "//button[@class='sprite-prev-page-arrow'][1]/span[1]")))
        assert browser.state[2] == 1

    def test_fixed_zip_starts_on_results(self):
        site = StoreLocatorSite(2, 2, fixed_zip="48220")
        assert site.initial_state() == ("results", "48220", 1, "48220")


class TestNewsList:
    def test_noisy_inserts_sponsored_rows(self):
        clean = NewsListSite(9, seed="t")
        noisy = NewsListSite(9, seed="t", noisy=True)
        clean_dom = clean.page("front")
        noisy_dom = noisy.page("front")
        assert count(clean_dom, "//div[@class='sponsored']") == 0
        assert count(noisy_dom, "//div[@class='sponsored']") == 3

    def test_click_through_and_article_url(self):
        site = NewsListSite(4, seed="t")
        browser = Browser(site)
        browser.perform(click(parse_selector("//div[@class='story'][2]//a[1]")))
        assert browser.state == ("article", 2)
        assert "story/2" in browser.current_url()

    def test_article_body_deterministic(self):
        assert NewsListSite(4, seed="t").body_text(3) == NewsListSite(4, seed="t").body_text(3)


class TestJobBoard:
    def test_next_mode_last_page_has_no_link(self):
        site = JobBoardSite(2, 3, mode="next")
        last = site.page(("page", 2))
        assert count(last, "//a[@class='nextLink']") == 0

    def test_numbered_mode_blocks(self):
        site = JobBoardSite(5, 2, mode="numbered")
        page2 = site.page(("page", 2))
        # block 1 shows pages 1..3 plus the next-block button
        assert count(page2, "//button[@class='pageNo']") == 2  # non-current
        assert count(page2, "//button[@class='nextBlock']") == 1
        page4 = site.page(("page", 4))
        assert count(page4, "//button[@class='nextBlock']") == 0

    def test_clicking_current_page_is_inert(self):
        site = JobBoardSite(5, 2, mode="numbered")
        browser = Browser(site)
        before = browser.state
        browser.perform(click(parse_selector("//button[@data-page='1'][1]")))
        assert browser.state == before

    def test_next_block_jumps(self):
        site = JobBoardSite(5, 2, mode="numbered")
        browser = Browser(site)
        browser._state = ("page", 3)
        browser.perform(click(parse_selector("//button[@class='nextBlock'][1]")))
        assert browser.state == ("page", 4)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            JobBoardSite(mode="infinite")

    def test_promoted_shifts_raw_indices(self):
        plain = JobBoardSite(2, 2, seed="t")
        promoted = JobBoardSite(2, 2, seed="t", promoted=True)
        plain_first = resolve(parse_selector("//ul[@class='new-joblist'][1]/li[1]"),
                              plain.page(("page", 1)))
        promoted_first = resolve(parse_selector("//ul[@class='new-joblist'][1]/li[1]"),
                                 promoted.page(("page", 1)))
        assert "job-bx" in plain_first.get("class")
        assert "promo" in promoted_first.get("class")


class TestProductCatalog:
    def test_click_opens_detail_and_back_returns(self):
        site = ProductCatalogSite(3, seed="t")
        browser = Browser(site)
        browser.perform(click(parse_selector("//li[@class='product'][2]/a[1]")))
        assert browser.state == ("detail", 2)
        browser.perform(scrape_text(parse_selector("//span[@class='price'][1]")))
        assert browser.outputs == [site.product(2)["price"]]
        from repro.lang import go_back

        browser.perform(go_back())
        assert browser.state == ("list",)

    def test_featured_banner_inside_list(self):
        site = ProductCatalogSite(2, seed="t", featured=True)
        first = resolve(parse_selector("//ul[@class='productList'][1]/li[1]"),
                        site.page(("list",)))
        assert first.get("class") == "banner"


class TestUnicornAndCalculator:
    def test_generate_requires_input(self):
        browser = Browser(UnicornNamerSite())
        before = browser.state
        browser.perform(click(parse_selector("//button[@class='generate'][1]")))
        assert browser.state == before  # no name typed: click is inert

    def test_generate_flow(self):
        site = UnicornNamerSite(seed="t")
        data = DataSource({"customers": ["ada"]})
        browser = Browser(site, data)
        browser.perform(enter_data(parse_selector("//input[@name='customer'][1]"),
                                   X.extend("customers").extend(1)))
        browser.perform(click(parse_selector("//button[@class='generate'][1]")))
        browser.perform(scrape_text(parse_selector("//div[@class='unicornName'][1]")))
        assert browser.outputs == [site.unicorn_name("ada")]
        assert "result" in browser.current_url()

    def test_calculator_is_single_url(self):
        site = CalculatorSite()
        browser = Browser(site, DataSource({"miles": ["3"]}))
        url_before = browser.current_url()
        browser.perform(enter_data(parse_selector("//input[@name='miles'][1]"),
                                   X.extend("miles").extend(1)))
        browser.perform(click(parse_selector("//button[@class='convert'][1]")))
        assert browser.current_url() == url_before
        browser.perform(scrape_text(parse_selector("//div[@class='converted'][1]")))
        assert browser.outputs == [site.convert("3")]

    def test_calculator_bad_input(self):
        assert CalculatorSite().convert("not a number") == "?"


class TestSearchDirectory:
    def test_search_keeps_form_on_results(self):
        site = SearchDirectorySite(3, seed="t")
        data = DataSource({"keywords": ["coffee"]})
        browser = Browser(site, data)
        browser.perform(enter_data(parse_selector("//input[@name='q'][1]"),
                                   X.extend("keywords").extend(1)))
        browser.perform(click(parse_selector("//button[@class='doSearch'][1]")))
        dom = browser.dom
        assert count(dom, "//div[@class='hit']") == 3
        assert resolve(parse_selector("//input[@name='q'][1]"), dom) is not None

    def test_retyping_on_results_page(self):
        site = SearchDirectorySite(2, seed="t")
        data = DataSource({"keywords": ["a", "b"]})
        browser = Browser(site, data)
        for index in (1, 2):
            browser.perform(enter_data(parse_selector("//input[@name='q'][1]"),
                                       X.extend("keywords").extend(index)))
            browser.perform(click(parse_selector("//button[@class='doSearch'][1]")))
        assert browser.state == ("results", "b", "b")


class TestSectionedAndForum:
    def test_sectioned_inline_ads_between_venues(self):
        site = SectionedCatalogSite(2, 3, 2, seed="t", inline_ads=True)
        dom = site.page(("page", 1))
        assert count(dom, "//div[@class='promo']") == 2  # between 3 venues

    def test_sectioned_more_link_absent_on_last_page(self):
        site = SectionedCatalogSite(2, 2, 2, seed="t")
        assert count(site.page(("page", 2)), "//a[@class='moreLink']") == 0

    def test_forum_pinned_row_first(self):
        site = ForumSite(2, 3, seed="t", pinned=True)
        first = resolve(parse_selector("//ul[@class='topiclist'][1]/li[1]"),
                        site.page(("index", 1)))
        assert first.get("class") == "announce"

    def test_forum_pagination(self):
        site = ForumSite(2, 2, seed="t")
        browser = Browser(site)
        browser.perform(click(parse_selector("//a[@class='olderLink'][1]")))
        assert browser.state == ("index", 2)


class TestPlainAndWikiAndMatch:
    def test_plain_list_fields(self):
        one = PlainListSite(3, fields=1)
        two = PlainListSite(3, fields=2)
        assert count(one.page("list"), "//li[1]/b") == 0
        assert resolve(parse_selector("//li[1]/b[1]"), two.page("list")) is not None

    def test_nested_structure(self):
        site = NestedListSite(3, 2)
        dom = site.page("groups")
        assert count(dom, "/html[1]/body[1]/div") == 3
        assert count(dom, "//li") == 6

    def test_triple_structure(self):
        site = TripleListSite(2, 3, 2)
        dom = site.page("blocks")
        assert count(dom, "/html[1]/body[1]/div") == 2
        assert count(dom, "//ul") == 6
        assert count(dom, "//li") == 12

    def test_wiki_header_row_uses_th(self):
        site = WikiTableSite(3, header=True)
        dom = site.page("table")
        assert count(dom, "//tr") == 4
        assert count(dom, "//th") == 3
        headerless = WikiTableSite(3, header=False)
        assert count(headerless.page("table"), "//tr") == 3

    def test_match_rows_and_ads_interleaved(self):
        site = MatchListSite(4, seed="t")
        dom = site.page(("list",))
        assert count(dom, "//div[@class='ad']") == 2
        # highlight rows every third match
        third = resolve(parse_selector("//div[@data-pos='3'][1]"), dom)
        assert third.get("class") == "match highlight"

    def test_match_click_via_child_span(self):
        site = MatchListSite(4, seed="t")
        browser = Browser(site)
        browser.perform(click(parse_selector("//div[@data-pos='2'][1]/span[1]")))
        assert browser.state == ("match", 2)
