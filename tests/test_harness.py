"""Tests for the experiment harnesses (report plumbing + small runs)."""

import pytest

from repro.benchmarks import benchmark_by_id
from repro.harness.q1 import (
    BenchmarkResult,
    evaluate_benchmark,
    nesting_depth,
    run_q1,
    statement_count,
)
from repro.harness.q2 import VariantResult
from repro.harness.q3 import run_session
from repro.harness.q4 import EngineMeasurement, measure_webrobot
from repro.harness.report import fmt_ms, fmt_pct, quartiles, render_table
from repro.harness.stats import suite_statistics
from repro.lang import parse_program


class TestReportHelpers:
    def test_render_table_aligns(self):
        table = render_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_quartiles_on_known_data(self):
        lo, q1, med, q3, hi = quartiles([1.0, 2.0, 3.0, 4.0, 5.0])
        assert (lo, q1, med, q3, hi) == (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_quartiles_empty(self):
        assert quartiles([]) == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_fmt_helpers(self):
        assert fmt_ms(0.1234) == "123ms"
        assert fmt_ms(0.0234).endswith("ms")
        assert fmt_pct(0.875) == "88%"


class TestProgramShapeHelpers:
    def test_nesting_depth(self):
        program = parse_program(
            "foreach a in Dscts(/, div) do\n"
            "  foreach b in Children(a, li) do\n"
            "    ScrapeText(b)"
        )
        assert nesting_depth(program) == 2

    def test_nesting_depth_with_while(self):
        program = parse_program(
            "while true do\n"
            "  foreach a in Dscts(/, div) do\n"
            "    ScrapeText(a)\n"
            "  Click(//a[1])"
        )
        assert nesting_depth(program) == 2

    def test_statement_count_counts_while_click(self):
        program = parse_program(
            "while true do\n  ScrapeText(//h3[1])\n  Click(//a[1])"
        )
        assert statement_count(program) == 3  # while + scrape + click


class TestQ1Harness:
    def test_evaluate_simple_benchmark(self):
        result = evaluate_benchmark(benchmark_by_id("b74"), trace_cap=40)
        assert result.intended
        assert result.accuracy >= 0.8
        assert result.tests == min(40, benchmark_by_id("b74").record().length - 1)

    def test_unsupported_benchmark_not_intended(self):
        result = evaluate_benchmark(benchmark_by_id("b9"), trace_cap=40)
        assert not result.intended

    def test_report_rendering(self):
        report = run_q1(subset=["b74"], trace_cap=20)
        figure = report.render_figure12()
        aggregates = report.render_aggregates()
        assert "b74" in figure
        assert "intended" in figure
        assert "95% accuracy" in aggregates


class TestQ2Plumbing:
    def _result(self, accuracy, intended):
        result = BenchmarkResult(bid="x", family="f")
        result.tests = 10
        result.correct = int(accuracy * 10)
        result.intended = intended
        result.prediction_times = [0.01] * result.correct
        return result

    def test_variant_aggregates(self):
        variant = VariantResult(
            "v", [self._result(1.0, True), self._result(0.5, False)]
        )
        assert variant.solved == 1
        assert variant.average_accuracy == pytest.approx(0.75)
        assert variant.median_accuracy == pytest.approx(0.75)
        assert variant.average_time == pytest.approx(0.01)

    def test_median_odd_count(self):
        variant = VariantResult(
            "v",
            [self._result(0.2, False), self._result(0.6, True), self._result(1.0, True)],
        )
        assert variant.median_accuracy == pytest.approx(0.6)


class TestQ4Cells:
    def test_cells(self):
        empty = EngineMeasurement()
        assert empty.cell_shortest() == "–/–"
        assert empty.cell_full() == "–"
        found = EngineMeasurement(shortest_length=6, shortest_time=0.012, full_time=1.5)
        assert found.cell_shortest().endswith("/6")
        timed = EngineMeasurement(full_timed_out=True)
        assert timed.cell_full() == "timeout"

    def test_measure_webrobot_on_flat_list(self):
        measurement = measure_webrobot(benchmark_by_id("b74"), target_length=4)
        assert measurement.shortest_length == 4
        assert measurement.shortest_time is not None


class TestQ3Session:
    def test_session_on_quick_benchmark(self):
        report = run_session(benchmark_by_id("b74"), cap=12)
        assert report.completed
        assert report.total_actions == 12  # capped recording length

    def test_statistics_dict(self):
        stats = suite_statistics()
        assert stats["total"] == 76
        assert stats["unsupported"] == ["b6", "b9", "b10"]
