"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import dump
from repro.lang import parse_program


class TestStats:
    def test_stats_prints_table(self, capsys):
        assert main(["stats"]) == 0
        output = capsys.readouterr().out
        assert "76" in output and "pagination" in output


class TestRecord:
    def test_record_writes_json(self, tmp_path, capsys):
        destination = tmp_path / "b74.json"
        assert main(["record", "b74", "-o", str(destination)]) == 0
        payload = json.loads(destination.read_text())
        assert payload["version"] == 1
        assert payload["actions"]
        assert "recorded" in capsys.readouterr().out

    def test_record_unknown_benchmark(self, capsys):
        assert main(["record", "b999"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_record_respects_cap(self, tmp_path):
        destination = tmp_path / "b21.json"
        assert main(["record", "b21", "-o", str(destination), "--max-actions", "20"]) == 0
        payload = json.loads(destination.read_text())
        assert len(payload["actions"]) == 20


class TestSynthesize:
    def test_synthesize_from_recording(self, tmp_path, capsys):
        recording_path = tmp_path / "rec.json"
        assert main(["record", "b74", "-o", str(recording_path)]) == 0
        assert main(["synthesize", str(recording_path), "--cut", "4"]) == 0
        output = capsys.readouterr().out
        assert "foreach" in output
        assert "predicted next action" in output

    def test_synthesize_too_short_prefix(self, tmp_path, capsys):
        recording_path = tmp_path / "rec.json"
        main(["record", "b74", "-o", str(recording_path)])
        assert main(["synthesize", str(recording_path), "--cut", "1"]) == 1
        assert "no generalizing program" in capsys.readouterr().out

    def test_synthesize_with_data_source(self, tmp_path, capsys):
        recording_path = tmp_path / "rec.json"
        main(["record", "b57", "-o", str(recording_path), "--max-actions", "12"])
        data_path = tmp_path / "data.json"
        from repro.benchmarks import benchmark_by_id

        data_path.write_text(json.dumps(benchmark_by_id("b57").data.value))
        assert main([
            "synthesize", str(recording_path), "--cut", "7", "--data", str(data_path)
        ]) == 0
        assert "ValuePaths" in capsys.readouterr().out


class TestReplay:
    def test_replay_program_against_benchmark(self, tmp_path, capsys):
        program = parse_program(
            "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
            "  ScrapeText(i/span[1])"
        )
        program_path = tmp_path / "program.json"
        with open(program_path, "w") as handle:
            dump(program, handle)
        assert main(["replay", str(program_path), "--benchmark", "b74"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 12  # b74 has 12 items

    def test_replay_failure_reported(self, tmp_path, capsys):
        program = parse_program("Click(//button[@class='missing'][1])")
        program_path = tmp_path / "program.json"
        with open(program_path, "w") as handle:
            dump(program, handle)
        assert main(["replay", str(program_path), "--benchmark", "b74"]) == 1
        assert "replay failed" in capsys.readouterr().err


def write_program(tmp_path, text, name="program.json"):
    program_path = tmp_path / name
    with open(program_path, "w") as handle:
        dump(parse_program(text), handle)
    return program_path


class TestCheck:
    def test_clean_program_ok(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "Click(//a[1])\nGoBack")
        assert main(["check", str(program_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_warning_still_passes(self, tmp_path, capsys):
        program_path = write_program(
            tmp_path, "foreach r in Dscts(/, li) do\n  ScrapeText(//h3[1])"
        )
        assert main(["check", str(program_path)]) == 0
        output = capsys.readouterr().out
        assert "never used" in output
        assert "1 warning(s)" in output

    def test_data_typing_error_fails(self, tmp_path, capsys):
        program_path = write_program(tmp_path, 'EnterData(//input[1], x["nope"][1])')
        data_path = tmp_path / "data.json"
        data_path.write_text(json.dumps({"zips": ["48104"]}))
        assert main(["check", str(program_path), "--data", str(data_path)]) == 1
        assert "does not resolve" in capsys.readouterr().out

    def test_recording_file_rejected(self, tmp_path, capsys):
        recording_path = tmp_path / "rec.json"
        main(["record", "b74", "-o", str(recording_path)])
        assert main(["check", str(recording_path)]) == 2
        assert "serialized program" in capsys.readouterr().err


class TestLint:
    def test_clean_program_ok(self, tmp_path, capsys):
        program_path = write_program(
            tmp_path, "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])"
        )
        assert main(["lint", str(program_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_warning_fails(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "Click(//a[1])")
        assert main(["lint", str(program_path)]) == 1
        assert "no-extraction" in capsys.readouterr().out

    def test_disable_suppresses(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "Click(//a[1])")
        assert main(["lint", str(program_path), "--disable", "no-extraction"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_unknown_rule_rejected(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "Click(//a[1])")
        assert main(["lint", str(program_path), "--disable", "bogus"]) == 2
        assert "unknown lint rules" in capsys.readouterr().err


class TestExport:
    def test_export_to_stdout(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "ScrapeText(//h3[1])")
        assert main(["export", str(program_path)]) == 0
        output = capsys.readouterr().out
        assert "from selenium import webdriver" in output

    def test_export_imacros(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "ScrapeText(//h3[1])")
        assert main(["export", str(program_path), "--target", "imacros"]) == 0
        assert "iimPlay" in capsys.readouterr().out

    def test_export_playwright_to_file(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "ScrapeText(//h3[1])")
        destination = tmp_path / "robot.py"
        assert main([
            "export", str(program_path), "--target", "playwright",
            "-o", str(destination),
        ]) == 0
        assert "sync_playwright" in destination.read_text()
        assert "wrote playwright script" in capsys.readouterr().out

    def test_export_bakes_start_url(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "ScrapeText(//h3[1])")
        assert main([
            "export", str(program_path), "--start-url", "http://example.com",
        ]) == 0
        assert "START_URL = 'http://example.com'" in capsys.readouterr().out


class TestExplain:
    def test_explain_per_action(self, tmp_path, capsys):
        recording_path = tmp_path / "rec.json"
        main(["record", "b74", "-o", str(recording_path)])
        program_path = write_program(
            tmp_path,
            "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
            "  ScrapeText(i/span[1])",
        )
        assert main([
            "explain", str(program_path), "--recording", str(recording_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "stmt 0.0" in output
        assert "[iter 1]" in output

    def test_explain_summary(self, tmp_path, capsys):
        recording_path = tmp_path / "rec.json"
        main(["record", "b74", "-o", str(recording_path)])
        program_path = write_program(
            tmp_path,
            "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
            "  ScrapeText(i/span[1])",
        )
        assert main([
            "explain", str(program_path), "--recording", str(recording_path),
            "--summary",
        ]) == 0
        assert "actions per statement" in capsys.readouterr().out


class TestProtocolSchema:
    def test_prints_the_committed_schema(self, capsys):
        from repro.cli import main
        from repro.protocol.schema import SCHEMA_PATH

        assert main(["protocol-schema"]) == 0
        printed = capsys.readouterr().out
        assert printed == SCHEMA_PATH.read_text(), (
            "`repro protocol-schema` output drifted from the committed schema"
        )

    def test_schema_document_shape(self, capsys):
        import json

        from repro.cli import main
        from repro.protocol import PROTOCOL_VERSION

        main(["protocol-schema"])
        document = json.loads(capsys.readouterr().out)
        assert document["protocol_version"] == PROTOCOL_VERSION
        assert "session_snapshot" in document["messages"]


class TestAnalyze:
    def test_clean_program_reports_domains(self, tmp_path, capsys):
        program_path = write_program(
            tmp_path,
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])",
        )
        assert main(["analyze", str(program_path)]) == 0
        output = capsys.readouterr().out
        assert "effect:      read-only (safe to auto-replay)" in output
        assert "termination: terminating" in output
        assert "cost:" in output and "fragility:" in output
        assert "ok" in output

    def test_unresolved_selector_fails_with_recording(self, tmp_path, capsys):
        recording_path = tmp_path / "rec.json"
        main(["record", "b74", "-o", str(recording_path)])
        program_path = write_program(
            tmp_path, "ScrapeText(//div[@class='missing'][1])"
        )
        assert main([
            "analyze", str(program_path), "--recording", str(recording_path)
        ]) == 1
        assert "unresolved-selector" in capsys.readouterr().out

    def test_warnings_do_not_fail(self, tmp_path, capsys):
        program_path = write_program(
            tmp_path,
            "while true do\n"
            "  ScrapeText(/html[1]/body[1]/div[2]/h3[1])\n"
            "  Click(/html[1]/body[1]/button[1])",
        )
        assert main(["analyze", str(program_path)]) == 0
        assert "possibly-nonterminating" in capsys.readouterr().out

    def test_json_payload(self, tmp_path, capsys):
        program_path = write_program(
            tmp_path,
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])",
        )
        assert main(["analyze", str(program_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "analyze"
        assert payload["errors"] == 0
        analysis = payload["analysis"]
        assert analysis["effect"] == "read-only"
        assert analysis["termination"] == "terminating"
        assert analysis["loops"] and analysis["selectors"]

    def test_load_failure_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestDiagnosticsJson:
    def test_check_json_shares_payload_shape(self, tmp_path, capsys):
        program_path = write_program(
            tmp_path, "foreach r in Dscts(/, li) do\n  ScrapeText(//h3[1])"
        )
        assert main(["check", str(program_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "check"
        assert payload["warnings"] == 1
        assert payload["findings"][0]["rule"]

    def test_lint_json_shares_payload_shape(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "Click(//a[1])")
        assert main(["lint", str(program_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "lint"
        assert any(f["rule"] == "no-extraction" for f in payload["findings"])

    def test_payloads_share_version_and_keys(self, tmp_path, capsys):
        program_path = write_program(tmp_path, "Click(//a[1])\nScrapeText(//h3[1])")
        shapes = []
        for argv in (
            ["check", str(program_path), "--json"],
            ["lint", str(program_path), "--json"],
            ["analyze", str(program_path), "--json"],
        ):
            main(argv)
            payload = json.loads(capsys.readouterr().out)
            shapes.append((payload["version"], set(payload) >= {
                "version", "tool", "findings", "errors", "warnings"
            }))
        assert shapes == [(1, True)] * 3
