"""Tests for selector repair (`repro.browser.repair`).

The scenarios model real drift: a banner pushed every sibling index down,
a promo card appeared ahead of the first result, a button moved inside a
footer.  Reference pages are the site as demonstrated; live pages are the
drifted redesign.
"""

from __future__ import annotations

import pytest

from repro.browser import (
    Browser,
    RepairingReplayer,
    Replayer,
    best_match,
    fingerprint_node,
    repair_selector,
    similarity,
)
from repro.browser.virtual import State, VirtualWebsite
from repro.dom import E, page, parse_selector, raw_path, resolve
from repro.lang import parse_program
from repro.util import ReplayError

from helpers import node_at


# ----------------------------------------------------------------------
# Pages
# ----------------------------------------------------------------------
def store_page(banner: bool = False, promo: bool = False) -> "DOMNode":
    """Two store cards; drift flags prepend a banner and/or a promo card."""
    cards = [
        E("div", {"class": "card"},
          E("h3", text="Ann Arbor"),
          E("div", {"class": "phone"}, text="555-0100")),
        E("div", {"class": "card"},
          E("h3", text="Detroit"),
          E("div", {"class": "phone"}, text="555-0200")),
    ]
    inner = []
    if promo:
        inner.append(E("div", {"class": "promo"}, E("h3", text="Sponsored")))
    inner.extend(cards)
    parts = []
    if banner:
        parts.append(E("div", {"class": "banner"}, text="SALE"))
    parts.append(E("div", {"class": "results"}, *inner))
    return page(*parts)


class StaticSite(VirtualWebsite):
    """A single inert page."""

    def __init__(self, dom) -> None:
        super().__init__()
        self._dom = dom

    def initial_state(self) -> State:
        return "page"

    def render(self, state: State) -> "DOMNode":
        return self._dom


class TwoPageSite(VirtualWebsite):
    """Results page with a next button leading to a second page.

    The drifted variant adds a banner and moves the button into a footer
    div, breaking absolute paths recorded on the original layout.
    """

    def __init__(self, drifted: bool = False) -> None:
        super().__init__()
        self.drifted = drifted

    def initial_state(self) -> State:
        return 1

    def render(self, state: State) -> "DOMNode":
        label = "Ann Arbor" if state == 1 else "Ypsilanti"
        card = E("div", {"class": "card"}, E("h3", text=label))
        parts = []
        if self.drifted:
            parts.append(E("div", {"class": "banner"}, text="SALE"))
        parts.append(E("div", {"class": "results"}, card))
        if state == 1:
            button = E("button", {"class": "next"}, text="more")
            parts.append(E("div", {"class": "footer"}, button) if self.drifted else button)
        return page(*parts)

    def on_click(self, state: State, node, dom):
        if node.tag == "button" and state == 1:
            return 2
        return None


# ----------------------------------------------------------------------
# Fingerprints and similarity
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_captures_local_coordinates(self):
        dom = store_page()
        node = node_at(dom, "//div[@class='card'][2]/h3[1]")
        fp = fingerprint_node(node)
        assert fp.tag == "h3"
        assert fp.text == "Detroit"
        assert fp.parent_tag == "div"
        assert fp.sibling_index == 1
        assert fp.ancestor_tags[0] == "div"

    def test_self_similarity_is_one(self):
        dom = store_page()
        node = node_at(dom, "//div[@class='card'][1]")
        assert similarity(fingerprint_node(node), node) == pytest.approx(1.0)

    def test_different_tag_scores_zero(self):
        dom = store_page()
        h3 = node_at(dom, "//h3[1]")
        phone = node_at(dom, "//div[@class='phone'][1]")
        assert similarity(fingerprint_node(h3), phone) == 0.0

    def test_true_counterpart_outscores_sibling(self):
        old = store_page()
        new = store_page(banner=True)
        fp = fingerprint_node(node_at(old, "//h3[1]"))
        counterpart = node_at(new, "//h3[1]")  # same text
        sibling = node_at(new, "//h3[2]")  # other card's h3
        assert similarity(fp, counterpart) > similarity(fp, sibling)


class TestBestMatch:
    def test_finds_moved_node(self):
        old = store_page()
        new = store_page(banner=True, promo=True)
        fp = fingerprint_node(node_at(old, "//div[@class='phone'][2]"))
        match = best_match(fp, new)
        assert match is not None
        node, score = match
        assert node.text == "555-0200"
        assert score > 0.9

    def test_returns_none_below_threshold(self):
        fp = fingerprint_node(node_at(store_page(), "//h3[1]"))
        unrelated = page(E("table", E("tr", E("td", text="totally different"))))
        assert best_match(fp, unrelated) is None

    def test_ties_break_toward_document_order(self):
        twins = page(E("span", text="x"), E("span", text="x"))
        fp = fingerprint_node(node_at(twins, "//span[1]"))
        # Both spans have sibling indices 1 and 2; make the fingerprint
        # equidistant by fingerprinting a fresh identical page's span.
        node, _score = best_match(fp, twins)
        assert node is node_at(twins, "//span[1]")


# ----------------------------------------------------------------------
# One-shot repair
# ----------------------------------------------------------------------
class TestRepairSelector:
    def test_reanchors_after_index_shift(self):
        old = store_page()
        new = store_page(banner=True)
        # Absolute path of the first phone number on the old layout; the
        # banner makes body/div[1] the banner on the new one.
        brittle = raw_path(node_at(old, "//div[@class='phone'][1]"))
        assert resolve(brittle, new) is None
        repair = repair_selector(brittle, old, new)
        assert repair is not None
        assert resolve(repair.replacement, new).text == "555-0100"
        assert repair.score > 0.9

    def test_none_when_reference_lacks_node(self):
        old = store_page()
        ghost = parse_selector("//table[1]")
        assert repair_selector(ghost, old, store_page(banner=True)) is None

    def test_none_when_live_page_has_no_counterpart(self):
        old = store_page()
        brittle = raw_path(node_at(old, "//h3[1]"))
        unrelated = page(E("p", text="gone"))
        assert repair_selector(brittle, old, unrelated) is None


# ----------------------------------------------------------------------
# Shadow replay
# ----------------------------------------------------------------------
def brittle_scrape_program(reference_dom):
    """Scrape both cards via absolute raw paths from the reference page."""
    lines = []
    for index in (1, 2):
        for inner in ("h3[1]", "div[@class='phone'][1]"):
            node = node_at(reference_dom, f"//div[@class='card'][{index}]/{inner}")
            lines.append(f"ScrapeText({raw_path(node)})")
    return parse_program("\n".join(lines))


class TestRepairingReplayer:
    def test_plain_replay_fails_on_drift(self):
        reference = store_page()
        program = brittle_scrape_program(reference)
        live = Browser(StaticSite(store_page(banner=True)))
        with pytest.raises(ReplayError):
            Replayer(live).run(program)

    def test_repairs_missing_selectors(self):
        reference_dom = store_page()
        program = brittle_scrape_program(reference_dom)
        live = Browser(StaticSite(store_page(banner=True, promo=True)))
        replayer = RepairingReplayer(live, Browser(StaticSite(reference_dom)))
        result = replayer.run(program)
        assert result.outputs == ["Ann Arbor", "555-0100", "Detroit", "555-0200"]
        assert replayer.events
        assert all(event.reason == "missing" for event in replayer.events)
        assert replayer.synced

    def test_silent_wrong_node_without_verify(self):
        # The promo card's h3 hijacks the absolute path: replay succeeds
        # but scrapes the wrong value.  This is the hazard verify fixes.
        reference_dom = store_page()
        first_h3 = raw_path(node_at(reference_dom, "//div[@class='card'][1]/h3[1]"))
        program = parse_program(f"ScrapeText({first_h3})")
        live = Browser(StaticSite(store_page(promo=True)))
        result = Replayer(live).run(program)
        assert result.outputs == ["Sponsored"]

    def test_verify_retargets_wrong_node(self):
        reference_dom = store_page()
        first_h3 = raw_path(node_at(reference_dom, "//div[@class='card'][1]/h3[1]"))
        program = parse_program(f"ScrapeText({first_h3})")
        live = Browser(StaticSite(store_page(promo=True)))
        replayer = RepairingReplayer(
            live, Browser(StaticSite(reference_dom)), verify=True
        )
        result = replayer.run(program)
        assert result.outputs == ["Ann Arbor"]
        assert [event.reason for event in replayer.events] == ["verified"]

    def test_repaired_click_still_navigates(self):
        reference_site = TwoPageSite(drifted=False)
        reference_dom = reference_site.page(1)
        button = raw_path(node_at(reference_dom, "//button[1]"))
        page2_h3 = raw_path(
            node_at(reference_site.page(2), "//div[@class='card'][1]/h3[1]")
        )
        program = parse_program(f"Click({button})\nScrapeText({page2_h3})")
        live = Browser(TwoPageSite(drifted=True))
        replayer = RepairingReplayer(live, Browser(TwoPageSite(drifted=False)))
        result = replayer.run(program)
        assert result.outputs == ["Ypsilanti"]
        # both the click (button moved into the footer) and the page-2
        # scrape (banner shifted indices) needed repair
        assert len(replayer.events) == 2
        assert replayer.synced

    def test_desyncs_when_live_outgrows_reference(self):
        # The live page has three cards, the reference two: the loop's
        # third iteration goes beyond what the reference can mirror.
        def n_card_page(count):
            cards = [
                E("div", {"class": "card"}, E("h3", text=f"Store {i}"))
                for i in range(1, count + 1)
            ]
            return page(E("div", {"class": "results"}, *cards))

        program = parse_program(
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])"
        )
        live = Browser(StaticSite(n_card_page(3)))
        replayer = RepairingReplayer(live, Browser(StaticSite(n_card_page(2))))
        result = replayer.run(program)
        assert result.outputs == ["Store 1", "Store 2", "Store 3"]
        assert not replayer.synced

    def test_unrepairable_failure_raises(self):
        reference_dom = store_page()
        brittle = raw_path(node_at(reference_dom, "//div[@class='phone'][1]"))
        program = parse_program(f"ScrapeText({brittle})")
        # live page shares nothing with the reference
        live = Browser(StaticSite(page(E("p", text="404"))))
        replayer = RepairingReplayer(live, Browser(StaticSite(reference_dom)))
        with pytest.raises(ReplayError):
            replayer.run(program)
        assert replayer.events == []

    def test_dataless_reference_degrades_instead_of_crashing(self):
        # A reference browser built without the data source cannot
        # mirror EnterData; the repairer must desync, not raise.
        from repro.lang import DataSource, X, enter_data

        class FormSite(VirtualWebsite):
            def initial_state(self):
                return ""

            def render(self, state):
                form = E("input", {"name": "q", "value": state})
                return page(form, E("h3", text="ready"))

            def on_input(self, state, node, dom, text):
                return text if node.tag == "input" else None

        data = DataSource({"zips": ["48104"]})
        live = Browser(FormSite(), data)
        reference = Browser(FormSite())  # forgot the data source
        replayer = RepairingReplayer(live, reference)
        program = parse_program('EnterData(//input[1], x["zips"][1])\nScrapeText(//h3[1])')
        result = replayer.run(program)
        assert result.outputs == ["ready"]
        assert not replayer.synced

    def test_failed_action_leaves_no_trace_entry(self):
        # Browser.perform records only after the action applies, so a
        # repaired retry produces exactly one trace entry.
        reference_dom = store_page()
        brittle = raw_path(node_at(reference_dom, "//h3[1]"))
        program = parse_program(f"ScrapeText({brittle})")
        live = Browser(StaticSite(store_page(banner=True)))
        replayer = RepairingReplayer(live, Browser(StaticSite(reference_dom)))
        result = replayer.run(program)
        assert len(result.actions) == 1
        assert result.outputs == ["Ann Arbor"]
