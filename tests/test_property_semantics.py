"""Property-based tests for the trace semantics and the synthesis problem.

The central soundness facts:

* executing the lifted singleton program P₀ of any recorded trace
  reproduces that trace exactly (Algorithm 1's starting invariant);
* the trace semantics never emits more actions than there are snapshots;
* satisfaction (Definition 4.1) holds for the ground truth on every
  prefix of its own recording.
"""

from hypothesis import given, settings, strategies as st

from repro.benchmarks.sites.plain_lists import NestedListSite, PlainListSite
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.browser import record_ground_truth
from repro.lang import DataSource, EMPTY_DATA, Program, action_to_statement, parse_program
from repro.semantics import DOMTrace, execute, traces_consistent
from repro.synth import SynthesisProblem, satisfies

FLAT_GT = parse_program(
    "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
    "  ScrapeText(i/span[1])\n  ScrapeText(i/b[1])"
)
NESTED_GT = parse_program(
    "foreach g in Children(/html[1]/body[1], div) do\n"
    "  foreach i in Children(g/ul[1], li) do\n    ScrapeText(i)"
)
STORE_GT = parse_program("""
while true do
  foreach r in Dscts(/, div[@class='rightContainer']) do
    ScrapeText(r//h3[1])
  Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
""")


@st.composite
def recordings(draw):
    """A recording from a randomly parameterized known family."""
    family = draw(st.sampled_from(["flat", "nested", "store"]))
    if family == "flat":
        site = PlainListSite(draw(st.integers(2, 7)), fields=2,
                             seed=f"ps{draw(st.integers(0, 5))}")
        return record_ground_truth(site, FLAT_GT), EMPTY_DATA
    if family == "nested":
        site = NestedListSite(draw(st.integers(2, 4)), draw(st.integers(2, 4)),
                              seed=f"pn{draw(st.integers(0, 5))}")
        return record_ground_truth(site, NESTED_GT), EMPTY_DATA
    site = StoreLocatorSite(draw(st.integers(2, 3)), draw(st.integers(2, 4)),
                            fixed_zip=f"48{draw(st.integers(100, 120))}")
    return record_ground_truth(site, STORE_GT), EMPTY_DATA


class TestTraceSemanticsProperties:
    @given(recordings())
    @settings(max_examples=25, deadline=None)
    def test_singleton_program_reproduces_trace(self, payload):
        recording, data = payload
        program = Program(
            tuple(action_to_statement(action) for action in recording.actions)
        )
        doms = DOMTrace(recording.snapshots)
        result = execute(program, doms, data)
        assert traces_consistent(result.actions, recording.actions, doms)

    @given(recordings(), st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_production_bounded_by_snapshots(self, payload, cut):
        recording, data = payload
        cut = min(cut, recording.length)
        program = Program(
            tuple(action_to_statement(action) for action in recording.actions)
        )
        doms = DOMTrace(recording.snapshots, 0, cut)
        result = execute(program, doms, data)
        assert len(result.actions) <= cut

    @given(recordings(), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_ground_truth_satisfies_every_prefix(self, payload, cut):
        recording, data = payload
        cut = min(cut, recording.length - 1)
        if cut < 1:
            return
        actions, snapshots = recording.prefix(cut)
        problem = SynthesisProblem(tuple(actions), DOMTrace(snapshots), data)
        # P0 (the singleton lift) always satisfies its own prefix
        program = Program(tuple(action_to_statement(action) for action in actions))
        assert satisfies(program, problem)

    @given(recordings())
    @settings(max_examples=15, deadline=None)
    def test_execution_is_deterministic(self, payload):
        recording, data = payload
        program = Program(
            tuple(action_to_statement(action) for action in recording.actions)
        )
        doms = DOMTrace(recording.snapshots)
        first = execute(program, doms, data)
        second = execute(program, doms, data)
        assert [str(a) for a in first.actions] == [str(a) for a in second.actions]
