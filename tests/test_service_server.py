"""The HTTP service (repro.service.server) and its typed client.

Boots a real ThreadingHTTPServer on an ephemeral port (in a thread) and
drives it through :class:`repro.service.client.ServiceClient` — the
``/v1`` protocol wire path ``repro serve`` exposes, minus the process
boundary (the service and migration benches cover that).  Also pins
the :class:`ErrorEnvelope` status mapping, the server-to-server
migrate flow, and the observability surface: the Prometheus
``/v1/metrics`` route, per-route metric labels, and ``X-Repro-Trace``
adoption/echo — including that one trace id survives a migration push
through a second worker.
"""

import threading
from dataclasses import replace
from http.client import HTTPConnection

import pytest

from repro.engine.cache import reset_process_cache
from repro.lang.pretty import format_program
from repro.lang import EMPTY_DATA
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.protocol import PROTOCOL_VERSION
from repro.protocol.messages import SessionSnapshot
from repro.synth.config import DEFAULT_CONFIG, serial_validation_config
from repro.synth.synthesizer import Synthesizer
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import make_server

from helpers import cards_page, scrape_cards_trace


def _boot():
    server = make_server(
        port=0,
        config=replace(DEFAULT_CONFIG, cache_backend="memory"),
        timeout=5.0,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    return server, client


def _teardown(server, client):
    client.close()
    server.shutdown()
    server.manager.close_all()
    server.server_close()


@pytest.fixture
def service():
    """A served worker on an ephemeral port, torn down afterwards."""
    reset_process_cache()
    server, client = _boot()
    try:
        yield client
    finally:
        _teardown(server, client)
        reset_process_cache()


@pytest.fixture
def two_workers():
    """Two independent workers (the migration topology)."""
    reset_process_cache()
    server_a, client_a = _boot()
    server_b, client_b = _boot()
    try:
        yield client_a, client_b
    finally:
        _teardown(server_a, client_a)
        _teardown(server_b, client_b)
        reset_process_cache()


class TestRoundTrip:
    def test_health_and_stats(self, service):
        assert service.health()
        assert service.protocol_version() == PROTOCOL_VERSION
        stats = service.stats()
        assert stats["sessions"] == 0
        assert stats["backend"] == "memory"
        assert stats["protocol"] == PROTOCOL_VERSION

    def test_full_session_over_http_matches_local_synthesis(self, service):
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 4)
        sid = service.create_session(snapshots[0])
        proposed = None
        for position, action in enumerate(actions):
            proposed = service.record_action(sid, action, snapshots[position + 1])
        assert proposed.programs > 0
        assert proposed.predictions
        served = [item.program for item in service.candidates(sid).candidates]
        # the session is incremental: compare against an incrementally
        # driven synthesizer, not a one-shot call
        direct = Synthesizer(EMPTY_DATA, serial_validation_config())
        for cut in range(1, len(actions) + 1):
            expected = direct.synthesize(actions[:cut], snapshots[: cut + 1])
        direct.close()
        assert served == [format_program(p) for p in expected.programs]
        accepted = service.accept(sid, 0)
        assert accepted.program == served[0]
        closed = service.close_session(sid)
        assert closed.stats.calls == len(actions)
        # the wire-level prediction matches the local best prediction
        assert proposed.predictions[0] == str(expected.best_prediction)

    def test_reject_round_trip(self, service):
        sid = service.create_session(cards_page(3))
        assert service.reject(sid).rejections == 1
        assert service.reject(sid).rejections == 2
        assert service.close_session(sid).stats.rejections == 2

    def test_drive_recording_helper(self, service):
        from repro.browser.recorder import Recording

        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 3)
        recording = Recording(
            actions=actions, snapshots=snapshots, outputs=[], truncated=False
        )
        sid, proposals = service.drive_recording(recording)
        assert len(proposals) == len(actions)
        assert proposals[-1].programs > 0
        service.close_session(sid)

def _raw_get(client, path, headers=None):
    """One GET outside the typed client (non-protocol bodies)."""
    connection = HTTPConnection(client.host, client.port, timeout=10.0)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return response, response.read()
    finally:
        connection.close()


class TestObservability:
    def test_metrics_route_serves_prometheus_text(self, service):
        obs_metrics.reset_registry()
        sid = service.create_session(cards_page(3))
        service.candidates(sid)
        service.stats()
        response, body = _raw_get(service, "/v1/metrics")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith(
            "text/plain; version=0.0.4"
        )
        text = body.decode("utf-8")
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_requests_total{route="/v1/stats",code="200"} 1' in text
        # session ids collapse to :sid — no per-session label cardinality
        assert (
            'repro_http_requests_total{route="/v1/sessions/:sid/candidates",code="200"} 1'
            in text
        )
        assert sid not in text
        # synthesis instrumentation published through the same registry
        assert "repro_synth_calls_total" in text

    def test_unknown_routes_do_not_mint_labels(self, service):
        obs_metrics.reset_registry()
        response, _ = _raw_get(service, "/v1/definitely/not/a/route")
        assert response.status == 404
        _, body = _raw_get(service, "/v1/metrics")
        text = body.decode("utf-8")
        assert 'route="other",code="404"' in text
        assert "definitely" not in text

    def test_trace_header_is_adopted_and_echoed(self, service):
        root = obs_context.new_root()
        response, _ = _raw_get(
            service, "/v1/stats", headers={obs_context.HEADER: root.wire_value()}
        )
        assert response.getheader(obs_context.HEADER) == root.wire_value()
        # without a header the server mints (and echoes) a fresh root
        response, _ = _raw_get(service, "/v1/stats")
        minted = obs_context.parse(response.getheader(obs_context.HEADER))
        assert minted is not None
        assert minted.trace_id != root.trace_id

    def test_migration_spans_stitch_under_one_trace(self, two_workers):
        source, target = two_workers
        obs_tracing.enable()
        obs_tracing.reset()
        root = obs_context.new_root()
        try:
            dom = cards_page(4)
            actions, snapshots = scrape_cards_trace(dom, 3)
            with obs_context.use(root):
                sid = source.create_session(snapshots[0])
                source.record_action(sid, actions[0], snapshots[1])
                migrated = source.migrate_session(sid, target)
            spans = [
                e for e in obs_tracing.events() if e["name"] == "http_request"
            ]
            routes = {e["args"]["route"] for e in spans}
            # the client's push and the server-to-server import both ran
            assert "/v1/sessions/:sid/migrate" in routes
            assert "/v1/sessions/import" in routes
            # one demonstration, one trace id — across both workers
            assert {e["args"]["trace_id"] for e in spans} == {root.trace_id}
            # synthesis spans recorded on the serving side stitch too
            synth = [e for e in obs_tracing.events() if e["name"] == "synthesize"]
            assert synth
            assert {e["args"]["trace_id"] for e in synth} == {root.trace_id}
            # the migrated session still serves on the target
            assert target.candidates(migrated.target_session) is not None
        finally:
            obs_tracing.disable()
            obs_tracing.reset()


class TestMigration:
    def test_export_then_import_between_workers(self, two_workers):
        source, target = two_workers
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 4)
        cut = len(actions) // 2
        sid = source.create_session(snapshots[0])
        for position in range(cut):
            source.record_action(sid, actions[position], snapshots[position + 1])
        reference = [item.program for item in source.candidates(sid).candidates]

        snapshot = source.export_session(sid)
        assert isinstance(snapshot, SessionSnapshot)
        # the exported session no longer serves on the source (409)
        with pytest.raises(ServiceClientError, match="migrated") as excinfo:
            source.candidates(sid)
        assert excinfo.value.status == 409

        new_sid = target.import_session(snapshot)
        resumed = [item.program for item in target.candidates(new_sid).candidates]
        assert resumed == reference
        # the remainder of the demonstration continues seamlessly
        for position in range(cut, len(actions)):
            target.record_action(new_sid, actions[position], snapshots[position + 1])
        assert target.candidates(new_sid).candidates
        assert target.stats()["sessions_imported"] == 1
        target.close_session(new_sid)

    def test_server_to_server_migrate(self, two_workers):
        source, target = two_workers
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 3)
        sid = source.create_session(snapshots[0])
        for position, action in enumerate(actions):
            source.record_action(sid, action, snapshots[position + 1])
        reference = [item.program for item in source.candidates(sid).candidates]

        migrated = source.migrate_session(sid, target)
        assert migrated.session == sid
        assert migrated.target_session
        moved = [
            item.program
            for item in target.candidates(migrated.target_session).candidates
        ]
        assert moved == reference
        assert source.stats()["sessions"] == 0
        assert target.stats()["sessions"] == 1

    def test_migrate_to_unreachable_target_leaves_session_serving(self, service):
        sid = service.create_session(cards_page(3))
        with pytest.raises(ServiceClientError, match="migration_failed") as excinfo:
            service.migrate_session(sid, "http://127.0.0.1:1")
        assert excinfo.value.status == 502
        # the failed push must not have evicted the session
        assert service.candidates(sid).candidates == ()
        service.close_session(sid)


class TestErrors:
    def test_unknown_session_is_a_404_envelope(self, service):
        with pytest.raises(ServiceClientError, match="unknown") as excinfo:
            service.candidates("s999")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_session"
        with pytest.raises(ServiceClientError):
            service.close_session("s999")

    def test_closed_session_is_a_409(self, service):
        dom = cards_page(3)
        actions, snapshots = scrape_cards_trace(dom, 2)
        sid = service.create_session(snapshots[0])
        service.close_session(sid)
        with pytest.raises(ServiceClientError, match="closed") as excinfo:
            service.record_action(sid, actions[0], snapshots[1])
        assert excinfo.value.status == 409
        assert excinfo.value.code == "session_closed"

    def test_malformed_creation_is_a_400(self, service):
        with pytest.raises(ServiceClientError, match="snapshot") as excinfo:
            service._request("POST", "/v1/sessions", raw={"data": {}})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_version_mismatch_is_a_400(self, service):
        with pytest.raises(ServiceClientError, match="version") as excinfo:
            service._request(
                "POST", "/v1/sessions", raw={"v": 999, "type": "create_session"}
            )
        assert excinfo.value.status == 400

    def test_unroutable_path_is_a_404(self, service):
        with pytest.raises(ServiceClientError) as excinfo:
            service._request("GET", "/v1/nothing")
        assert excinfo.value.code == "no_route"

    def test_accept_without_candidates_is_a_409(self, service):
        sid = service.create_session(cards_page(2))
        with pytest.raises(ServiceClientError, match="no candidate") as excinfo:
            service.accept(sid)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "session_state"
        service.close_session(sid)


class TestCodecNegotiation:
    """Binary wire negotiation: Accept/Content-Type, mixed clients."""

    def _raw(self, service, method, path, body=None, headers=None):
        from http.client import HTTPConnection

        conn = HTTPConnection(service.host, service.port, timeout=5.0)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response, response.read()
        finally:
            conn.close()

    def test_binary_client_drives_a_full_session(self, service):
        binary = ServiceClient(
            f"http://{service.host}:{service.port}", codec="binary"
        )
        try:
            dom = cards_page(4)
            actions, snapshots = scrape_cards_trace(dom, 3)
            sid = binary.create_session(snapshots[0])
            proposed = None
            for position, action in enumerate(actions):
                proposed = binary.record_action(sid, action, snapshots[position + 1])
            assert proposed.programs > 0
            accepted = binary.accept(sid, 0)
            assert accepted.program
            binary.close_session(sid)
        finally:
            binary.close()

    def test_accept_header_selects_the_response_codec(self, service):
        from repro.protocol.codec import BinaryCodec, sniff_codec

        response, payload = self._raw(
            service,
            "GET",
            "/healthz",
            headers={"Accept": BinaryCodec.content_type},
        )
        assert response.status == 200
        assert response.getheader("Content-Type") == BinaryCodec.content_type
        document = sniff_codec(payload).decode_payload(payload)
        assert document["ok"] is True
        assert "binary" in document["codecs"] and "json" in document["codecs"]

    def test_unlabelled_binary_body_is_sniffed(self, service):
        from repro.protocol.codec import BinaryCodec, sniff_codec
        from repro.protocol.messages import CreateSession

        body = BinaryCodec().encode(CreateSession(snapshot=cards_page(2)))
        # no Content-Type at all: the server sniffs the 0xC3 magic and,
        # with no Accept either, replies in the request body's codec
        response, payload = self._raw(service, "POST", "/v1/sessions", body=body)
        assert response.status == 200
        assert response.getheader("Content-Type") == BinaryCodec.content_type
        wire = sniff_codec(payload).decode_payload(payload)
        assert wire["type"] == "session_created"
        service.close_session(wire["session"])

    def test_json_and_binary_clients_share_one_session(self, service):
        binary = ServiceClient(
            f"http://{service.host}:{service.port}", codec="binary"
        )
        try:
            dom = cards_page(3)
            actions, snapshots = scrape_cards_trace(dom, 2)
            sid = service.create_session(snapshots[0])  # json client
            for position, action in enumerate(actions):
                binary.record_action(sid, action, snapshots[position + 1])
            served = service.candidates(sid)  # json again
            assert served.candidates
            binary.close_session(sid)
        finally:
            binary.close()
