"""The HTTP service (repro.service.server) and its thin client.

Boots a real ThreadingHTTPServer on an ephemeral port (in a thread) and
drives it through :class:`repro.service.client.ServiceClient` — the
same wire path ``repro serve`` exposes, minus the process boundary
(the service bench covers that).
"""

import threading
from dataclasses import replace

import pytest

from repro.engine.cache import reset_process_cache
from repro.lang.pretty import format_program
from repro.lang import EMPTY_DATA
from repro.synth.config import DEFAULT_CONFIG, serial_validation_config
from repro.synth.synthesizer import Synthesizer
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import make_server

from helpers import cards_page, scrape_cards_trace


@pytest.fixture
def service():
    """A served worker on an ephemeral port, torn down afterwards."""
    reset_process_cache()
    server = make_server(
        port=0,
        config=replace(DEFAULT_CONFIG, cache_backend="memory"),
        timeout=5.0,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client
    finally:
        client.close()
        server.shutdown()
        server.manager.close_all()
        server.server_close()
        reset_process_cache()


class TestRoundTrip:
    def test_health_and_stats(self, service):
        assert service.health()
        stats = service.stats()
        assert stats["sessions"] == 0
        assert stats["backend"] == "memory"

    def test_full_session_over_http_matches_local_synthesis(self, service):
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 4)
        sid = service.create_session(snapshots[0])
        summary = None
        for position, action in enumerate(actions):
            summary = service.record_action(sid, action, snapshots[position + 1])
        assert summary["programs"] > 0
        assert summary["predictions"]
        served = [item["program"] for item in service.candidates(sid)]
        # the session is incremental: compare against an incrementally
        # driven synthesizer, not a one-shot call
        direct = Synthesizer(EMPTY_DATA, serial_validation_config())
        for cut in range(1, len(actions) + 1):
            expected = direct.synthesize(actions[:cut], snapshots[: cut + 1])
        direct.close()
        assert served == [format_program(p) for p in expected.programs]
        accepted = service.accept(sid, 0)
        assert accepted == served[0]
        closed = service.close_session(sid)
        assert closed["stats"]["calls"] == len(actions)
        # the wire-level prediction matches the local best prediction
        assert summary["predictions"][0] == str(expected.best_prediction)

    def test_drive_recording_helper(self, service):
        from repro.browser.recorder import Recording

        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 3)
        recording = Recording(
            actions=actions, snapshots=snapshots, outputs=[], truncated=False
        )
        sid, summaries = service.drive_recording(recording)
        assert len(summaries) == len(actions)
        assert summaries[-1]["programs"] > 0
        service.close_session(sid)


class TestErrors:
    def test_unknown_session_is_a_404(self, service):
        with pytest.raises(ServiceClientError, match="404|unknown"):
            service.candidates("s999")
        with pytest.raises(ServiceClientError):
            service.close_session("s999")

    def test_malformed_creation_is_a_400(self, service):
        with pytest.raises(ServiceClientError, match="400|snapshot"):
            service._request("POST", "/api/sessions", {"data": {}})

    def test_unroutable_path_is_a_404(self, service):
        with pytest.raises(ServiceClientError):
            service._request("GET", "/api/nothing")

    def test_accept_without_candidates_is_a_404(self, service):
        sid = service.create_session(cards_page(2))
        with pytest.raises(ServiceClientError, match="no candidate"):
            service.accept(sid)
        service.close_session(sid)
