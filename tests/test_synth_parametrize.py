"""Unit tests for parametrization (Figure 11 rules)."""

from repro.dom import EPSILON, Predicate, parse_selector, raw_path
from repro.lang import (
    SEL_VAR,
    VAL_VAR,
    X,
    ActionStmt,
    ChildrenOf,
    DescendantsOf,
    ForEachSelector,
    ForEachValue,
    Selector,
    ValuePath,
    ValuePathsOf,
    fresh_var,
    selector_of,
)
from repro.synth import DEFAULT_CONFIG, no_selector_config, parametrize_statement

from helpers import cards_page, node_at


def first_card_binding(dom):
    """The binding ϱ ↦ //div[@class='card'][1] (FirstSelector of Dscts)."""
    return EPSILON.desc(Predicate("div", "class", "card"), 1)


class TestSelectorParametrize:
    def test_phone_scrape_under_card(self):
        dom = cards_page(2)
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt(
            "ScrapeText",
            selector_of(raw_path(node_at(dom, "//div[@class='card'][1]/div[@class='phone'][1]"))),
        )
        variants = parametrize_statement(
            stmt, var, first_card_binding(dom), dom, DEFAULT_CONFIG
        )
        # The unchanged statement is always last (rule (1)).
        assert variants[-1] == stmt
        rendered = {str(v.target) for v in variants[:-1]}
        assert f"{var}//div[@class='phone'][1]" in rendered
        assert all(v.target.base == var for v in variants[:-1])

    def test_unrelated_target_keeps_original_only(self):
        dom = cards_page(2)
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt(
            "ScrapeText",
            selector_of(raw_path(node_at(dom, "//div[@class='sidebar'][1]"))),
        )
        variants = parametrize_statement(
            stmt, var, first_card_binding(dom), dom, DEFAULT_CONFIG
        )
        assert variants == [stmt]

    def test_binding_node_itself(self):
        dom = cards_page(2)
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt(
            "ScrapeText", selector_of(raw_path(node_at(dom, "//div[@class='card'][1]")))
        )
        variants = parametrize_statement(
            stmt, var, first_card_binding(dom), dom, DEFAULT_CONFIG
        )
        assert any(v.target == Selector(var, ()) for v in variants)

    def test_unresolvable_binding_keeps_original(self):
        dom = cards_page(1)
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt("ScrapeText", selector_of(raw_path(node_at(dom, "//h3[1]"))))
        missing = parse_selector("//nav[7]")
        assert parametrize_statement(stmt, var, missing, dom, DEFAULT_CONFIG) == [stmt]

    def test_nested_loop_base_parametrized(self):
        dom = cards_page(2)
        outer_var = fresh_var(SEL_VAR)
        inner_var = fresh_var(SEL_VAR)
        loop = ForEachSelector(
            inner_var,
            ChildrenOf(
                selector_of(raw_path(node_at(dom, "//div[@class='card'][1]"))),
                Predicate("div", "class", "phone"),
            ),
            (ActionStmt("ScrapeText", Selector(inner_var, ())),),
        )
        variants = parametrize_statement(
            loop, outer_var, first_card_binding(dom), dom, DEFAULT_CONFIG
        )
        parametrized = [v for v in variants if v != loop]
        assert parametrized
        assert any(
            v.collection.base == Selector(outer_var, ()) for v in parametrized
        )
        # body is untouched (rule (4))
        assert all(v.body == loop.body for v in variants)

    def test_go_back_unchanged(self):
        dom = cards_page(1)
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt("GoBack")
        assert parametrize_statement(
            stmt, var, first_card_binding(dom), dom, DEFAULT_CONFIG
        ) == [stmt]

    def test_raw_only_uses_raw_suffix(self):
        dom = cards_page(2)
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt(
            "ScrapeText",
            selector_of(raw_path(node_at(dom, "//div[@class='card'][1]/div[@class='phone'][1]"))),
        )
        binding = raw_path(node_at(dom, "//div[@class='card'][1]"))
        variants = parametrize_statement(
            stmt, var, binding, dom, no_selector_config()
        )
        assert len(variants) == 2  # one raw suffix variant + original
        assert str(variants[0].target) == f"{var}/div[1]"


class TestValueParametrize:
    def test_enter_data_prefix_rewritten(self):
        dom = cards_page(1)
        var = fresh_var(VAL_VAR)
        sel = selector_of(raw_path(node_at(dom, "//h3[1]")))
        stmt = ActionStmt("EnterData", sel, value=X.extend("rows").extend(1).extend("q"))
        binding = ValuePath(None, ("rows", 1))
        variants = parametrize_statement(stmt, var, binding, dom, DEFAULT_CONFIG)
        assert variants[0].value == ValuePath(var, ("q",))
        assert variants[-1] == stmt

    def test_non_matching_prefix_unchanged(self):
        dom = cards_page(1)
        var = fresh_var(VAL_VAR)
        sel = selector_of(raw_path(node_at(dom, "//h3[1]")))
        stmt = ActionStmt("EnterData", sel, value=X.extend("other").extend(1))
        binding = ValuePath(None, ("rows", 1))
        assert parametrize_statement(stmt, var, binding, dom, DEFAULT_CONFIG) == [stmt]

    def test_click_unchanged_under_value_binding(self):
        dom = cards_page(1)
        var = fresh_var(VAL_VAR)
        stmt = ActionStmt("Click", selector_of(raw_path(node_at(dom, "//h3[1]"))))
        binding = ValuePath(None, ("rows", 1))
        assert parametrize_statement(stmt, var, binding, dom, DEFAULT_CONFIG) == [stmt]

    def test_nested_value_loop_rewritten(self):
        dom = cards_page(1)
        outer = fresh_var(VAL_VAR)
        inner = fresh_var(VAL_VAR)
        sel = selector_of(raw_path(node_at(dom, "//h3[1]")))
        loop = ForEachValue(
            inner,
            ValuePathsOf(ValuePath(None, ("rows", 1, "cells"))),
            (ActionStmt("EnterData", sel, value=ValuePath(inner, ())),),
        )
        binding = ValuePath(None, ("rows", 1))
        variants = parametrize_statement(loop, outer, binding, dom, DEFAULT_CONFIG)
        assert variants[0].collection.path == ValuePath(outer, ("cells",))
        assert variants[-1] == loop
