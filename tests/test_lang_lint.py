"""Tests for the program linter (`repro.lang.lint`)."""

from __future__ import annotations

import pytest

from repro.lang import parse_program
from repro.lang.lint import LintFinding, RULES, lint_program, warnings_only


def rules_of(program_text: str, disable=None) -> list[str]:
    return [f.rule for f in lint_program(parse_program(program_text), disable=disable)]


CLEAN = """
foreach d in ValuePaths(x["zips"]) do
  EnterData(//input[@name='q'][1], d)
  Click(//button[@class='go'][1])
  foreach r in Dscts(/, div[@class='card']) do
    ScrapeText(r//h3[1])
"""


class TestCleanPrograms:
    def test_idiomatic_program_is_clean(self):
        assert rules_of(CLEAN) == []

    def test_attribute_anchored_selector_not_brittle(self):
        assert rules_of("ScrapeText(/html[1]/body[1]/div[@class='x'][1]/h3[1]/span[1])") == []

    def test_short_raw_path_not_brittle(self):
        assert rules_of("ScrapeText(/html[1]/body[1]/h3[1])") == []


class TestBrittleSelector:
    def test_long_raw_path_flagged(self):
        rules = rules_of("ScrapeText(/html[1]/body[1]/div[2]/div[1]/h3[1])")
        assert "brittle-selector" in rules

    def test_finding_is_info_severity(self):
        findings = lint_program(
            parse_program("ScrapeText(/html[1]/body[1]/div[2]/div[1]/h3[1])")
        )
        brittle = [f for f in findings if f.rule == "brittle-selector"]
        assert brittle and all(f.severity == "info" for f in brittle)

    def test_loop_relative_selector_not_flagged(self):
        text = (
            "foreach r in Dscts(/, div[@class='card']) do\n"
            "  ScrapeText(r/div[1]/div[1]/div[1]/h3[1])"
        )
        assert "brittle-selector" not in rules_of(text)


class TestEntryRules:
    def test_sendkeys_in_value_loop_flagged(self):
        text = (
            'foreach d in ValuePaths(x["zips"]) do\n'
            '  SendKeys(//input[1], "48104")\n'
            "  EnterData(//input[1], d)"
        )
        assert "constant-entry-in-loop" in rules_of(text)

    def test_sendkeys_outside_loop_unflagged(self):
        assert "constant-entry-in-loop" not in rules_of(
            'SendKeys(//input[1], "x")\nScrapeText(//h3[1])'
        )

    def test_loop_invariant_enterdata_flagged(self):
        text = (
            'foreach d in ValuePaths(x["zips"]) do\n'
            '  EnterData(//input[1], x["zips"][1])'
        )
        rules = rules_of(text)
        assert "loop-invariant-entry" in rules

    def test_enterdata_with_loop_var_unflagged(self):
        assert "loop-invariant-entry" not in rules_of(CLEAN)

    def test_sendkeys_in_selector_loop_only_unflagged(self):
        # constant keystrokes inside a *selector* loop are a normal
        # pattern (e.g. clearing a field per row); only value loops flag
        text = (
            "foreach r in Dscts(/, div[@class='row']) do\n"
            '  SendKeys(r//input[1], "reset")\n'
            "  ScrapeText(r//h3[1])"
        )
        assert "constant-entry-in-loop" not in rules_of(text)


class TestDuplicateExtraction:
    def test_same_scrape_twice_flagged(self):
        assert "duplicate-extraction" in rules_of(
            "ScrapeText(//h3[1])\nClick(//a[1])\nScrapeText(//h3[1])"
        )

    def test_different_scrapes_unflagged(self):
        assert "duplicate-extraction" not in rules_of(
            "ScrapeText(//h3[1])\nScrapeText(//h3[2])"
        )

    def test_duplicate_across_bodies_unflagged(self):
        # the same scrape in two *different* loops addresses different
        # pages/iterations; only duplicates within one body repeat output
        text = (
            "foreach r in Dscts(/, div) do\n  ScrapeText(r//h3[1])\n"
            "foreach r in Dscts(/, span) do\n  ScrapeText(r//h3[1])"
        )
        assert "duplicate-extraction" not in rules_of(text)


class TestMergeableLoops:
    def test_consecutive_same_collection_flagged(self):
        text = (
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])\n"
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//b[1])"
        )
        assert "mergeable-loops" in rules_of(text)

    def test_different_collections_unflagged(self):
        text = (
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])\n"
            "foreach r in Dscts(/, div[@class='row']) do\n  ScrapeText(r//b[1])"
        )
        assert "mergeable-loops" not in rules_of(text)

    def test_value_loops_over_same_array_flagged(self):
        text = (
            'foreach d in ValuePaths(x["zips"]) do\n  EnterData(//input[1], d)\n'
            'foreach d in ValuePaths(x["zips"]) do\n  EnterData(//input[2], d)'
        )
        assert "mergeable-loops" in rules_of(text)


class TestUnrolledRepetition:
    def test_three_in_a_row_flagged(self):
        text = "\n".join(f"ScrapeText(//li[{i}]/span[1])" for i in (1, 2, 3))
        findings = lint_program(parse_program(text))
        unrolled = [f for f in findings if f.rule == "unrolled-repetition"]
        assert len(unrolled) == 1
        assert unrolled[0].path == (0,)

    def test_two_in_a_row_unflagged(self):
        text = "\n".join(f"ScrapeText(//li[{i}]/span[1])" for i in (1, 2))
        assert "unrolled-repetition" not in rules_of(text)

    def test_gap_breaks_the_run(self):
        assert "unrolled-repetition" not in rules_of(
            "ScrapeText(//li[1])\nScrapeText(//li[2])\nScrapeText(//li[4])"
        )

    def test_mixed_kinds_break_the_run(self):
        assert "unrolled-repetition" not in rules_of(
            "ScrapeText(//li[1])\nScrapeLink(//li[2])\nScrapeText(//li[3])"
        )

    def test_interleaved_pattern_not_matched(self):
        # h3/phone interleavings are the synthesizer's job (period 2);
        # the lint rule only handles stride-1 runs and must not misfire
        text = (
            "ScrapeText(//li[1]/h3[1])\nScrapeText(//li[1]/b[1])\n"
            "ScrapeText(//li[2]/h3[1])\nScrapeText(//li[2]/b[1])"
        )
        assert "unrolled-repetition" not in rules_of(text)


class TestStructuralRules:
    def test_deep_nesting_flagged(self):
        text = (
            'foreach a in ValuePaths(x["a"]) do\n'
            '  foreach b in ValuePaths(x["b"]) do\n'
            '    foreach c in ValuePaths(x["c"]) do\n'
            '      foreach d in ValuePaths(x["d"]) do\n'
            "        EnterData(//input[1], d)\n"
            "        ScrapeText(//h3[1])"
        )
        assert "deep-nesting" in rules_of(text)

    def test_triple_nesting_unflagged(self):
        assert "deep-nesting" not in rules_of(
            'foreach a in ValuePaths(x["a"]) do\n'
            "  while true do\n"
            "    foreach r in Dscts(/, div) do\n"
            "      ScrapeText(r//h3[1])\n"
            "    Click(//button[1])"
        )

    def test_no_extraction_flagged(self):
        assert "no-extraction" in rules_of("Click(//a[1])\nGoBack")

    def test_extract_url_counts_as_output(self):
        assert "no-extraction" not in rules_of("Click(//a[1])\nExtractURL")


class TestAPI:
    def test_disable_suppresses_rule(self):
        text = "Click(//a[1])"
        assert rules_of(text) == ["no-extraction"]
        assert rules_of(text, disable={"no-extraction"}) == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            lint_program(parse_program("GoBack"), disable={"bogus"})

    def test_findings_sorted_by_path(self):
        text = (
            "ScrapeText(/html[1]/body[1]/div[2]/div[1]/h3[1])\n"
            "ScrapeText(/html[1]/body[1]/div[2]/div[1]/h3[1])"
        )
        findings = lint_program(parse_program(text))
        assert [f.path for f in findings] == sorted(f.path for f in findings)

    def test_warnings_only_filters_info(self):
        findings = [
            LintFinding("brittle-selector", "info", (0,), "m"),
            LintFinding("no-extraction", "warning", (), "m"),
        ]
        assert [f.rule for f in warnings_only(findings)] == ["no-extraction"]

    def test_str_rendering(self):
        finding = LintFinding("no-extraction", "warning", (), "nothing scraped")
        assert str(finding) == "warning[no-extraction] at <top>: nothing scraped"

    def test_every_registered_rule_has_docs(self):
        module_doc = __import__("repro.lang.lint", fromlist=["__doc__"]).__doc__
        for rule in RULES:
            assert f"``{rule}``" in module_doc
