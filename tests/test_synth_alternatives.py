"""Unit tests for the alternative-selector search."""

from repro.dom import (
    CHILD,
    DESC,
    EPSILON,
    Predicate,
    parse_selector,
    raw_path,
    resolve,
)
from repro.synth import (
    alternative_selectors,
    common_alternatives,
    decompositions,
    node_predicates,
    relative_step_candidates,
)

from helpers import cards_page, node_at


class TestNodePredicates:
    def test_attribute_predicates_first(self):
        dom = cards_page(2)
        card = node_at(dom, "//div[@class='card'][1]")
        preds = node_predicates(card)
        assert preds[0] == Predicate("div", "class", "card")
        assert preds[-1] == Predicate("div")

    def test_raw_only_mode(self):
        dom = cards_page(2)
        card = node_at(dom, "//div[@class='card'][1]")
        assert node_predicates(card, use_alternatives=False) == [Predicate("div")]

    def test_empty_attribute_ignored(self):
        from repro.dom import E

        node = E("div", {"class": ""})
        assert node_predicates(node) == [Predicate("div")]


class TestRelativeStepCandidates:
    def test_self_is_empty_sequence(self):
        dom = cards_page(1)
        card = node_at(dom, "//div[@class='card'][1]")
        assert relative_step_candidates(card, card) == [()]

    def test_includes_raw_chain(self):
        dom = cards_page(1)
        card = node_at(dom, "//div[@class='card'][1]")
        h3 = node_at(dom, "//div[@class='card'][1]/h3[1]")
        raw_chain = parse_selector("/h3[1]").steps
        candidates = relative_step_candidates(card, h3)
        assert tuple(raw_chain) in [tuple(c) for c in candidates]

    def test_includes_descendant_anchor(self):
        dom = cards_page(1)
        body = node_at(dom, "/html[1]/body[1]")
        phone = node_at(dom, "//div[@class='phone'][1]")
        candidates = relative_step_candidates(body, phone)
        assert parse_selector("//div[@class='phone'][1]").steps in candidates

    def test_non_ancestor_yields_nothing(self):
        dom = cards_page(2)
        card1 = node_at(dom, "//div[@class='card'][1]")
        card2 = node_at(dom, "//div[@class='card'][2]")
        assert relative_step_candidates(card1, card2) == []

    def test_raw_only_single_candidate(self):
        dom = cards_page(1)
        body = node_at(dom, "/html[1]/body[1]")
        phone = node_at(dom, "//div[@class='phone'][1]")
        candidates = relative_step_candidates(body, phone, use_alternatives=False)
        assert candidates == [parse_selector("/div[2]/div[1]").steps]

    def test_all_candidates_resolve_to_target(self):
        from repro.dom import resolve_relative

        dom = cards_page(3)
        body = node_at(dom, "/html[1]/body[1]")
        phone = node_at(dom, "//div[@class='card'][2]/div[@class='phone'][1]")
        for steps in relative_step_candidates(body, phone):
            assert resolve_relative(steps, body) is phone


class TestDecompositions:
    def test_card_h3_has_document_dscts_reading(self):
        dom = cards_page(3)
        h3 = node_at(dom, "//div[@class='card'][1]/h3[1]")
        decomps = decompositions(raw_path(h3), dom)
        keys = {
            (d.prefix, d.axis, d.pred, d.index, d.suffix)
            for d in decomps
        }
        wanted = (
            EPSILON,
            DESC,
            Predicate("div", "class", "card"),
            1,
            parse_selector("//h3[1]").steps,
        )
        assert wanted in keys

    def test_second_card_has_index_two(self):
        dom = cards_page(3)
        h3 = node_at(dom, "//div[@class='card'][2]/h3[1]")
        decomps = decompositions(raw_path(h3), dom)
        assert any(
            d.pred == Predicate("div", "class", "card") and d.index == 2
            for d in decomps
        )

    def test_assemble_resolves_to_same_node(self):
        dom = cards_page(3)
        phone = node_at(dom, "//div[@class='card'][2]/div[@class='phone'][1]")
        target_path = raw_path(phone)
        for decomposition in decompositions(target_path, dom):
            assert resolve(decomposition.assemble(), dom) is phone

    def test_unresolvable_selector_gives_nothing(self):
        dom = cards_page(1)
        assert decompositions(parse_selector("//nav[9]"), dom) == []

    def test_raw_only_mode_child_axis_only(self):
        dom = cards_page(2)
        h3 = node_at(dom, "//div[@class='card'][1]/h3[1]")
        decomps = decompositions(raw_path(h3), dom, use_alternatives=False)
        assert decomps
        assert all(d.axis == CHILD for d in decomps)
        assert all(d.pred.attr is None for d in decomps)

    def test_max_results_respected(self):
        dom = cards_page(4)
        h3 = node_at(dom, "//div[@class='card'][2]/h3[1]")
        assert len(decompositions(raw_path(h3), dom, max_results=5)) <= 5


class TestAlternativeSelectors:
    def test_all_alternatives_denote_same_node(self):
        dom = cards_page(3, with_next=True)
        button = node_at(dom, "//button[@class='next'][1]")
        for alternative in alternative_selectors(raw_path(button), dom):
            assert resolve(alternative, dom) is button

    def test_raw_path_included(self):
        dom = cards_page(2)
        h3 = node_at(dom, "//div[@class='card'][1]/h3[1]")
        alternatives = alternative_selectors(raw_path(h3), dom)
        assert raw_path(h3) in alternatives

    def test_raw_only_mode_returns_raw_only(self):
        dom = cards_page(2)
        h3 = node_at(dom, "//div[@class='card'][1]/h3[1]")
        assert alternative_selectors(raw_path(h3), dom, use_alternatives=False) == [
            raw_path(h3)
        ]


class TestCommonAlternatives:
    def test_next_button_shifting_position(self):
        # Page 2 has an extra "prev" button before the cards: the raw path
        # of "next" differs, but the attribute-anchored form is shared.
        from repro.dom import E, page

        page1 = cards_page(2, with_next=True)
        page2 = page(
            E("button", {"class": "prev"}, text="prev"),
            E("div", {"class": "sidebar"}, text="ads"),
            E("div", {"class": "card"}, E("h3", text="x"),
              E("div", {"class": "phone"}, text="y")),
            E("button", {"class": "next"}, text="next"),
        )
        next1 = node_at(page1, "//button[@class='next'][1]")
        next2 = node_at(page2, "//button[@class='next'][1]")
        shared = common_alternatives(raw_path(next1), page1, raw_path(next2), page2)
        assert parse_selector("//button[@class='next'][1]") in shared

    def test_identical_raw_paths_share_raw(self):
        page1 = cards_page(2, with_next=True)
        next1 = node_at(page1, "//button[@class='next'][1]")
        shared = common_alternatives(raw_path(next1), page1, raw_path(next1), page1)
        assert raw_path(next1) in shared

    def test_raw_only_mode_requires_equal_raw(self):
        from repro.dom import E, page

        page1 = cards_page(2, with_next=True)
        page2 = page(
            E("button", {"class": "prev"}),
            E("button", {"class": "next"}),
        )
        next1 = node_at(page1, "//button[@class='next'][1]")
        next2 = node_at(page2, "//button[@class='next'][1]")
        shared = common_alternatives(
            raw_path(next1), page1, raw_path(next2), page2, use_alternatives=False
        )
        assert shared == []
