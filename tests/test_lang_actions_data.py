"""Unit tests for concrete actions and data sources."""

import pytest

from repro.dom import parse_selector
from repro.lang import (
    X,
    Action,
    ActionStmt,
    DataSource,
    ValuePath,
    action_to_statement,
    as_text,
    click,
    enter_data,
    extract_url,
    fresh_var,
    go_back,
    scrape_text,
    send_keys,
    statement_to_action,
)
from repro.lang.ast import SEL_VAR, VAL_VAR, Selector
from repro.util import DataPathError


class TestAction:
    def test_constructors(self):
        sel = parse_selector("//a[1]")
        assert click(sel).kind == "Click"
        assert scrape_text(sel).kind == "ScrapeText"
        assert go_back().selector is None
        assert extract_url().kind == "ExtractURL"
        assert send_keys(sel, "hi").text == "hi"
        assert enter_data(sel, X.extend("k").extend(1)).path.accessors == ("k", 1)

    def test_enter_data_requires_concrete_path(self):
        sel = parse_selector("//input[1]")
        symbolic = ValuePath(fresh_var(VAL_VAR), ())
        with pytest.raises(ValueError):
            Action("EnterData", sel, path=symbolic)

    def test_selector_shape_enforced(self):
        with pytest.raises(ValueError):
            Action("Click")
        with pytest.raises(ValueError):
            Action("GoBack", parse_selector("//a[1]"))

    def test_str(self):
        sel = parse_selector("//a[1]")
        assert str(click(sel)) == "Click(//a[1])"
        assert str(go_back()) == "GoBack"


class TestActionStatementBridge:
    def test_round_trip(self):
        sel = parse_selector("//div[2]/h3[1]")
        for action in (click(sel), scrape_text(sel), send_keys(sel, "q"), go_back()):
            assert statement_to_action(action_to_statement(action)) == action

    def test_enter_data_round_trip(self):
        action = enter_data(parse_selector("//input[1]"), X.extend("zips").extend(2))
        assert statement_to_action(action_to_statement(action)) == action

    def test_symbolic_statement_rejected(self):
        var = fresh_var(SEL_VAR)
        stmt = ActionStmt("Click", Selector(var, ()))
        with pytest.raises(ValueError):
            statement_to_action(stmt)


class TestDataSource:
    def setup_method(self):
        self.data = DataSource(
            {"zips": ["48104", "48105", "48109"], "people": [{"name": "Ada"}, {"name": "Bob"}]}
        )

    def test_resolve_key_and_index(self):
        path = X.extend("zips").extend(2)
        assert self.data.resolve(path) == "48105"

    def test_resolve_nested(self):
        path = X.extend("people").extend(2).extend("name")
        assert self.data.resolve(path) == "Bob"

    def test_missing_key_raises(self):
        with pytest.raises(DataPathError):
            self.data.resolve(X.extend("missing"))

    def test_out_of_range_raises(self):
        with pytest.raises(DataPathError):
            self.data.resolve(X.extend("zips").extend(4))

    def test_zero_index_raises(self):
        with pytest.raises(DataPathError):
            self.data.resolve(X.extend("zips").extend(0))

    def test_index_on_object_raises(self):
        with pytest.raises(DataPathError):
            self.data.resolve(X.extend(1))

    def test_key_on_array_raises(self):
        with pytest.raises(DataPathError):
            self.data.resolve(X.extend("zips").extend("k"))

    def test_symbolic_path_rejected(self):
        with pytest.raises(DataPathError):
            self.data.resolve(ValuePath(fresh_var(VAL_VAR), ()))

    def test_get_array(self):
        assert self.data.get_array(X.extend("zips")) == ["48104", "48105", "48109"]

    def test_get_array_on_scalar_raises(self):
        with pytest.raises(DataPathError):
            self.data.get_array(X.extend("zips").extend(1))

    def test_value_paths_enumerates_one_based(self):
        paths = self.data.value_paths(X.extend("zips"))
        assert [p.accessors[-1] for p in paths] == [1, 2, 3]
        assert all(p.accessors[0] == "zips" for p in paths)

    def test_contains(self):
        assert self.data.contains(X.extend("zips").extend(1))
        assert not self.data.contains(X.extend("zips").extend(9))

    def test_as_text(self):
        assert as_text("abc") == "abc"
        assert as_text(42) == "42"
        with pytest.raises(DataPathError):
            as_text(["a"])
