"""Unit + property tests for the mini e-graph library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline import EGraph, ENode, PatternVar


class TestHashcons:
    def test_same_term_same_class(self):
        egraph = EGraph()
        a1 = egraph.add_term(("f", ("a",), ("b",)))
        a2 = egraph.add_term(("f", ("a",), ("b",)))
        assert egraph.equal(a1, a2)

    def test_different_terms_different_classes(self):
        egraph = EGraph()
        a = egraph.add_term(("f", ("a",)))
        b = egraph.add_term(("f", ("b",)))
        assert not egraph.equal(a, b)

    def test_counts(self):
        egraph = EGraph()
        egraph.add_term(("f", ("a",), ("b",)))
        assert egraph.class_count() == 3  # a, b, f(a,b)
        assert egraph.node_count() == 3


class TestMergeAndCongruence:
    def test_merge_makes_equal(self):
        egraph = EGraph()
        a = egraph.add("a")
        b = egraph.add("b")
        egraph.merge(a, b)
        egraph.rebuild()
        assert egraph.equal(a, b)

    def test_congruence_propagates_up(self):
        egraph = EGraph()
        a, b = egraph.add("a"), egraph.add("b")
        fa = egraph.add("f", (a,))
        fb = egraph.add("f", (b,))
        assert not egraph.equal(fa, fb)
        egraph.merge(a, b)
        egraph.rebuild()
        assert egraph.equal(fa, fb)

    def test_congruence_two_levels(self):
        egraph = EGraph()
        a, b = egraph.add("a"), egraph.add("b")
        fa = egraph.add("f", (a,))
        fb = egraph.add("f", (b,))
        gfa = egraph.add("g", (fa,))
        gfb = egraph.add("g", (fb,))
        egraph.merge(a, b)
        egraph.rebuild()
        assert egraph.equal(gfa, gfb)

    def test_adding_after_merge_canonicalizes(self):
        egraph = EGraph()
        a, b = egraph.add("a"), egraph.add("b")
        egraph.merge(a, b)
        egraph.rebuild()
        fa = egraph.add("f", (a,))
        fb = egraph.add("f", (b,))
        assert egraph.equal(fa, fb)

    def test_merge_idempotent(self):
        egraph = EGraph()
        a, b = egraph.add("a"), egraph.add("b")
        first = egraph.merge(a, b)
        second = egraph.merge(a, b)
        assert egraph.find(first) == egraph.find(second)


class TestEMatch:
    def test_leaf_pattern(self):
        egraph = EGraph()
        a = egraph.add("a")
        egraph.add("b")
        matches = egraph.ematch(("a",))
        assert [(cid, sub) for cid, sub in matches] == [(egraph.find(a), {})]

    def test_variable_binds_children(self):
        egraph = EGraph()
        fa = egraph.add_term(("f", ("a",)))
        matches = egraph.ematch(("f", PatternVar("x")))
        assert len(matches) == 1
        class_id, subst = matches[0]
        assert class_id == egraph.find(fa)
        assert egraph.find(subst["x"]) == egraph.find(egraph.add("a"))

    def test_nonlinear_variable(self):
        egraph = EGraph()
        egraph.add_term(("f", ("a",), ("a",)))
        egraph.add_term(("f", ("a",), ("b",)))
        matches = egraph.ematch(("f", PatternVar("x"), PatternVar("x")))
        assert len(matches) == 1

    def test_match_across_merged_classes(self):
        egraph = EGraph()
        a, b = egraph.add("a"), egraph.add("b")
        egraph.add("f", (a,))
        egraph.merge(a, b)
        egraph.rebuild()
        matches = egraph.ematch(("f", ("b",)))
        assert len(matches) == 1


@st.composite
def merge_scripts(draw):
    """A batch of leaf names, unary applications, and merge pairs."""
    leaves = draw(st.lists(st.sampled_from("abcdef"), min_size=2, max_size=6, unique=True))
    apps = draw(st.lists(st.sampled_from("fg"), min_size=0, max_size=4))
    merges = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(leaves) - 1), st.integers(0, len(leaves) - 1)
            ),
            max_size=5,
        )
    )
    return leaves, apps, merges


class TestProperties:
    @given(merge_scripts())
    @settings(max_examples=60, deadline=None)
    def test_congruence_invariant(self, script):
        """After rebuild: equal-children same-op nodes share a class."""
        leaves, apps, merges = script
        egraph = EGraph()
        leaf_ids = [egraph.add(name) for name in leaves]
        app_ids = []
        for index, op in enumerate(apps):
            child = leaf_ids[index % len(leaf_ids)]
            app_ids.append((op, child, egraph.add(op, (child,))))
        for first, second in merges:
            egraph.merge(leaf_ids[first], leaf_ids[second])
        egraph.rebuild()
        # rebuild restores congruence: re-adding any application must land
        # in the same class as the original
        for op, child, app_id in app_ids:
            assert egraph.equal(egraph.add(op, (child,)), app_id)

    @given(merge_scripts())
    @settings(max_examples=60, deadline=None)
    def test_find_is_idempotent_and_closed(self, script):
        leaves, apps, merges = script
        egraph = EGraph()
        leaf_ids = [egraph.add(name) for name in leaves]
        for first, second in merges:
            egraph.merge(leaf_ids[first], leaf_ids[second])
        egraph.rebuild()
        for class_id in leaf_ids:
            root = egraph.find(class_id)
            assert egraph.find(root) == root

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_merge_transitivity(self, pairs):
        egraph = EGraph()
        ids = [egraph.add(f"leaf{i}") for i in range(5)]
        for first, second in pairs:
            egraph.merge(ids[first], ids[second])
        egraph.rebuild()
        # union-find transitivity: build expected partition naively
        parent = list(range(5))

        def find(i):
            while parent[i] != i:
                i = parent[i]
            return i

        for first, second in pairs:
            ra, rb = find(first), find(second)
            if ra != rb:
                parent[rb] = ra
        for i in range(5):
            for j in range(5):
                assert egraph.equal(ids[i], ids[j]) == (find(i) == find(j))
