"""Tests for the pluggable ranking strategies (repro.synth.ranking)."""

import pytest

from repro.lang import parse_program
from repro.lang.actions import scrape_text
from repro.lang.ast import program_depth, program_size
from repro.dom.xpath import parse_selector
from repro.synth.config import DEFAULT_CONFIG, ranking_config
from repro.synth.ranking import (
    Candidate,
    DEFAULT_STRATEGY,
    STRATEGIES,
    rank,
    strategy_by_name,
)
from repro.util.errors import SynthesisError

FLAT = parse_program("ScrapeText(//h3[1])\nScrapeText(//h3[2])\nScrapeText(//h3[3])")
ONE_LOOP = parse_program("foreach r in Dscts(/, h3) do\n  ScrapeText(r)")
NESTED = parse_program(
    "foreach g in Children(/, div) do\n"
    "  foreach r in Dscts(g, h3) do\n    ScrapeText(r)"
)

PREDICTION = scrape_text(parse_selector("//h3[4]"))


def candidate(program, statements):
    return Candidate.of(program, PREDICTION, statements)


CANDIDATES = [
    candidate(FLAT, 3),
    candidate(ONE_LOOP, 1),
    candidate(NESTED, 1),
]


class TestStrategies:
    def test_registry_names(self):
        assert set(STRATEGIES) == {
            "size", "fewest-statements", "deepest", "shallowest", "cost",
        }
        assert DEFAULT_STRATEGY in STRATEGIES

    def test_size_prefers_smallest_ast(self):
        best = rank(CANDIDATES, "size")[0]
        assert program_size(best.program) == min(
            program_size(c.program) for c in CANDIDATES
        )

    def test_deepest_prefers_most_nested(self):
        assert rank(CANDIDATES, "deepest")[0].program is NESTED

    def test_shallowest_prefers_flat(self):
        assert program_depth(rank(CANDIDATES, "shallowest")[0].program) == 0

    def test_fewest_statements_prefers_compression(self):
        best = rank(CANDIDATES, "fewest-statements")[0]
        assert best.statements == 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SynthesisError, match="unknown ranking strategy"):
            strategy_by_name("best-effort")

    def test_ranking_is_deterministic_total_order(self):
        import random

        for name in STRATEGIES:
            shuffled = list(CANDIDATES)
            random.Random(7).shuffle(shuffled)
            assert [c.text for c in rank(shuffled, name)] == [
                c.text for c in rank(CANDIDATES, name)
            ]

    def test_text_tie_break(self):
        # same size and statement count: order falls back to program text
        a = candidate(parse_program("ScrapeText(//a[1])"), 1)
        b = candidate(parse_program("ScrapeText(//b[1])"), 1)
        ordered = rank([b, a], "size")
        assert [c.text for c in ordered] == sorted([a.text, b.text])


class TestSynthesizerIntegration:
    def test_config_knob_exists(self):
        assert DEFAULT_CONFIG.ranking == "size"
        assert ranking_config("deepest").ranking == "deepest"

    def test_ranking_changes_top_program(self):
        """On an ambiguous prefix, strategies pick different winners."""
        from tests.helpers import cards_page, scrape_cards_trace
        from repro.lang import EMPTY_DATA
        from repro.synth.synthesizer import Synthesizer

        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 3)
        default = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG).synthesize(actions, snapshots)
        deepest = Synthesizer(EMPTY_DATA, ranking_config("deepest")).synthesize(
            actions, snapshots
        )
        assert default.programs and deepest.programs
        # both must still generalize the same demonstration
        assert default.best_prediction is not None
        assert deepest.best_prediction is not None
        # the deepest-first strategy never picks a shallower program
        assert program_depth(deepest.best_program) >= program_depth(default.best_program)
