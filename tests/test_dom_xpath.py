"""Unit tests for concrete selector resolution, raw paths, and parsing."""

import pytest

from repro.dom import (
    CHILD,
    DESC,
    EPSILON,
    ConcreteSelector,
    E,
    Predicate,
    Step,
    index_among_children,
    index_among_descendants,
    page,
    parse_selector,
    raw_path,
    resolve,
    resolve_relative,
    valid,
)
from repro.util import ParseError


def make_store_page():
    """Two result cards plus an unrelated sidebar div."""
    return page(
        E("div", {"class": "sidebar"}, E("h3", text="ads")),
        E("div", {"class": "results"},
          E("div", {"class": "card"},
            E("h3", text="Store One"),
            E("div", {"class": "phone"}, text="555-0100")),
          E("div", {"class": "card"},
            E("h3", text="Store Two"),
            E("div", {"class": "phone"}, text="555-0200"))),
    )


class TestPredicate:
    def test_tag_only(self):
        assert Predicate("div").matches(E("div"))
        assert not Predicate("div").matches(E("span"))

    def test_attr_equality(self):
        pred = Predicate("div", "class", "card")
        assert pred.matches(E("div", cls="card"))
        assert not pred.matches(E("div", cls="other"))
        assert not pred.matches(E("div"))

    def test_str_forms(self):
        assert str(Predicate("div")) == "div"
        assert str(Predicate("div", "class", "a")) == "div[@class='a']"


class TestStepValidation:
    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            Step("sideways", Predicate("div"), 1)

    def test_rejects_zero_index(self):
        with pytest.raises(ValueError):
            Step(CHILD, Predicate("div"), 0)


class TestResolve:
    def test_empty_selector_is_root(self):
        root = make_store_page()
        assert resolve(EPSILON, root) is root

    def test_absolute_child_path(self):
        root = make_store_page()
        sel = parse_selector("/html[1]/body[1]/div[2]/div[1]/h3[1]")
        node = resolve(sel, root)
        assert node is not None and node.text == "Store One"

    def test_child_index_counts_matches_only(self):
        root = make_store_page()
        sel = parse_selector("/html[1]/body[1]/div[@class='results'][1]")
        node = resolve(sel, root)
        assert node is not None and node.attrs["class"] == "results"

    def test_descendant_axis_document_order(self):
        root = make_store_page()
        first = resolve(parse_selector("//h3[1]"), root)
        second = resolve(parse_selector("//h3[2]"), root)
        third = resolve(parse_selector("//h3[3]"), root)
        assert first.text == "ads"
        assert second.text == "Store One"
        assert third.text == "Store Two"

    def test_descendant_with_attribute(self):
        root = make_store_page()
        sel = parse_selector("//div[@class='card'][2]/h3[1]")
        assert resolve(sel, root).text == "Store Two"

    def test_missing_index_returns_none(self):
        root = make_store_page()
        assert resolve(parse_selector("//h3[9]"), root) is None
        assert not valid(parse_selector("//h3[9]"), root)

    def test_missing_intermediate_returns_none(self):
        root = make_store_page()
        assert resolve(parse_selector("/html[1]/nav[1]/h3[1]"), root) is None

    def test_resolve_relative(self):
        root = make_store_page()
        results = resolve(parse_selector("//div[@class='results'][1]"), root)
        steps = parse_selector("//div[@class='phone'][2]").steps
        node = resolve_relative(steps, results)
        assert node.text == "555-0200"

    def test_relative_descendants_exclude_base(self):
        root = make_store_page()
        card = resolve(parse_selector("//div[@class='card'][1]"), root)
        steps = parse_selector("//div[1]").steps
        node = resolve_relative(steps, card)
        assert node.attrs.get("class") == "phone"


class TestRawPath:
    def test_raw_path_round_trips(self):
        root = make_store_page()
        phone = resolve(parse_selector("//div[@class='phone'][2]"), root)
        path = raw_path(phone)
        assert resolve(path, root) is phone

    def test_raw_path_string(self):
        root = make_store_page()
        card2 = root.children[0].children[1].children[1]
        assert str(raw_path(card2)) == "/html[1]/body[1]/div[2]/div[2]"

    def test_raw_path_of_root(self):
        root = make_store_page()
        assert str(raw_path(root)) == "/html[1]"


class TestMatchIndices:
    def test_index_among_children(self):
        root = make_store_page()
        results = root.children[0].children[1]
        card2 = results.children[1]
        assert index_among_children(card2, Predicate("div")) == 2
        assert index_among_children(card2, Predicate("div", "class", "card")) == 2
        assert index_among_children(card2, Predicate("span")) is None

    def test_index_among_children_of_root(self):
        root = make_store_page()
        assert index_among_children(root, Predicate("html")) == 1

    def test_index_among_descendants(self):
        root = make_store_page()
        results = root.children[0].children[1]
        h3_two = results.children[1].children[0]
        assert index_among_descendants(None, h3_two, Predicate("h3"), root) == 3
        assert index_among_descendants(results, h3_two, Predicate("h3"), root) == 2

    def test_index_among_descendants_not_contained(self):
        root = make_store_page()
        sidebar_h3 = root.children[0].children[0].children[0]
        results = root.children[0].children[1]
        assert index_among_descendants(results, sidebar_h3, Predicate("h3"), root) is None


class TestParser:
    def test_parse_and_str_round_trip(self):
        text = "/html[1]/body[1]//div[@class='card'][2]/h3[1]"
        sel = parse_selector(text)
        assert str(sel) == text

    def test_default_index_is_one(self):
        sel = parse_selector("//h3")
        assert sel.steps[0].index == 1

    def test_parse_empty_is_epsilon(self):
        assert parse_selector("/") == EPSILON
        assert parse_selector("") == EPSILON

    def test_parse_rejects_missing_slash(self):
        with pytest.raises(ParseError):
            parse_selector("div[1]")

    def test_parse_rejects_unclosed_bracket(self):
        with pytest.raises(ParseError):
            parse_selector("/div[1")

    def test_parse_rejects_bad_index(self):
        with pytest.raises(ParseError):
            parse_selector("/div[xyz=1]")

    def test_parse_rejects_missing_tag(self):
        with pytest.raises(ParseError):
            parse_selector("//[1]")

    def test_double_quotes_accepted(self):
        sel = parse_selector('//div[@class="a"][1]')
        assert sel.steps[0].pred.value == "a"

    def test_selector_str_epsilon(self):
        assert str(EPSILON) == "/"

    def test_concat_and_extend(self):
        sel = EPSILON.desc(Predicate("div"), 1).child(Predicate("h3"), 2)
        assert str(sel) == "//div[1]/h3[2]"
        extended = sel.concat(parse_selector("/p[1]").steps)
        assert str(extended) == "//div[1]/h3[2]/p[1]"
