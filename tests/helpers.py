"""Shared test fixtures: hand-built pages and recorded traces.

These helpers mimic what the front-end recorder produces: actions carry
absolute raw XPaths (as §7.1 prescribes) and every action is paired with
the snapshot it executed on, plus one trailing snapshot.
"""

from __future__ import annotations

from repro.dom import DOMNode, E, page, raw_path, resolve, parse_selector
from repro.lang import Action, X, click, enter_data, scrape_text


def cards_page(count: int, with_next: bool = False, next_cls: str = "next") -> DOMNode:
    """A result page: ``count`` cards (h3 + phone div) and a sidebar.

    The sidebar div comes first so card raw paths start at ``div[2]`` —
    generalizing to a loop *requires* attribute-based alternative
    selectors, exactly like the paper's motivating example.
    """
    cards = [
        E("div", {"class": "card"},
          E("h3", text=f"Store {index}"),
          E("div", {"class": "phone"}, text=f"555-01{index:02d}"))
        for index in range(1, count + 1)
    ]
    extra = [E("button", {"class": next_cls}, text="next")] if with_next else []
    return page(E("div", {"class": "sidebar"}, text="ads"), *cards, *extra)


def plain_list_page(count: int) -> DOMNode:
    """A page whose items are the first children: raw paths alone suffice."""
    items = [
        E("li", E("span", text=f"item {index}"), E("b", text=f"meta {index}"))
        for index in range(1, count + 1)
    ]
    return page(E("ul", *items))


def node_at(dom: DOMNode, selector_text: str) -> DOMNode:
    """Resolve a selector string; assert it denotes a node."""
    node = resolve(parse_selector(selector_text), dom)
    assert node is not None, f"no node at {selector_text}"
    return node


def raw_action(kind_fn, dom: DOMNode, selector_text: str, **kwargs) -> Action:
    """Build an action addressing a node by its *raw* absolute path."""
    node = node_at(dom, selector_text)
    return kind_fn(raw_path(node), **kwargs)


def scrape_cards_trace(dom: DOMNode, count: int):
    """Record scraping h3+phone for the first ``count`` cards of ``dom``.

    Returns ``(actions, snapshots)`` with ``len(snapshots) ==
    len(actions) + 1`` — scrapes do not mutate the page, so all snapshots
    are the same object.
    """
    actions = []
    for index in range(1, count + 1):
        actions.append(
            raw_action(scrape_text, dom, f"//div[@class='card'][{index}]/h3[1]")
        )
        actions.append(
            raw_action(
                scrape_text, dom, f"//div[@class='card'][{index}]/div[@class='phone'][1]"
            )
        )
    snapshots = [dom] * (len(actions) + 1)
    return actions, snapshots
