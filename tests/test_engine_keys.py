"""Value-addressed keys (repro.engine.keys, DOMNode.content_key).

The cache-key scheme's load-bearing property is *stability*: the same
content must produce the same key in any process, under any hash seed,
before or after pickling — and different content must produce different
keys.  These tests pin both directions, including across a
``multiprocessing`` child and across interpreter invocations with
different ``PYTHONHASHSEED`` values.
"""

import multiprocessing
import os
import pickle
import subprocess
import sys

from repro import io as repro_io
from repro.dom import E, page
from repro.dom.xpath import Predicate, Step, TokenPredicate, parse_selector
from repro.engine.keys import action_digest, data_key, digest_int, stable_digest
from repro.lang import click, scrape_text
from repro.lang.ast import SEL_VAR, Var, canonical_statement
from repro.lang.data import DataSource
from repro.semantics.env import Env
from repro.semantics.trace import DOMTrace

from helpers import cards_page, scrape_cards_trace


class TestContentKey:
    def test_same_structure_same_key(self):
        first = cards_page(3)
        second = cards_page(3).clone().freeze()
        assert first is not second
        assert first.content_key() == second.content_key()

    def test_memoized_on_frozen_roots(self):
        dom = cards_page(2)
        assert dom._content_key is None
        key = dom.content_key()
        assert dom._content_key == key
        assert dom.content_key() == key

    def test_near_identical_snapshots_are_distinguished(self):
        base = cards_page(3)
        variants = [
            cards_page(4),                       # one more card
            page(E("div", {"class": "sidebar"}, text="ads")),  # subtree only
        ]
        # one attribute character changed, deep in the tree
        tweaked = cards_page(3).clone()
        tweaked.children[0].children[1].attrs["class"] = "cardx"
        variants.append(tweaked.freeze())
        # text changed
        retexted = cards_page(3).clone()
        retexted.children[0].children[1].children[0].text = "Store X"
        variants.append(retexted.freeze())
        keys = {base.content_key()}
        for variant in variants:
            assert variant.content_key() not in keys, variant
            keys.add(variant.content_key())

    def test_attribute_order_is_irrelevant_but_values_are_not(self):
        one = E("div", {"a": "1", "b": "2"}).freeze()
        two = E("div", {"b": "2", "a": "1"}).freeze()
        three = E("div", {"a": "2", "b": "1"}).freeze()
        assert one.content_key() == two.content_key()
        assert one.content_key() != three.content_key()

    def test_unfrozen_nodes_rehash_after_mutation(self):
        node = E("div")
        before = node.content_key()
        node.append(E("span"))
        assert node.content_key() != before

    def test_pickle_round_trip_preserves_key_and_drops_caches(self):
        dom = cards_page(3)
        original = dom.content_key()
        from repro.engine.index import index_for

        index_for(dom)  # populate the per-process caches
        restored = pickle.loads(pickle.dumps(dom))
        assert restored.frozen
        assert restored._snapshot_index is None
        assert restored._resolve_cache is None
        assert restored.content_key() == original
        # parent links re-derived
        child = restored.children[0]
        assert child.parent is restored

    def test_trace_value_key_slices_and_matches_ids_in_shape(self):
        dom_a, dom_b = cards_page(2), cards_page(3)
        trace = DOMTrace([dom_a, dom_b, dom_a], 0, 3)
        keys = trace.value_key()
        assert keys == (dom_a.content_key(), dom_b.content_key(), dom_a.content_key())
        assert trace.window(1, 2).value_key() == (dom_b.content_key(),)


class TestStableDigest:
    def test_distinguishes_types_and_structures(self):
        values = [
            None, True, False, 0, 1, "", "0", b"0", 0.0, (), ("",), ((),)
        ]
        digests = [stable_digest(value) for value in values]
        assert len(set(digests)) == len(values)

    def test_dataclass_subclasses_do_not_collide(self):
        plain = Predicate("div", "class", "card")
        token = TokenPredicate("div", "class", "card")
        assert stable_digest(plain) != stable_digest(token)

    def test_canonical_statements_digest_consistently(self):
        actions, _ = scrape_cards_trace(cards_page(3), 2)
        from repro.lang.actions import action_to_statement

        stmts = [action_to_statement(action) for action in actions]
        keys = [canonical_statement(stmt) for stmt in stmts]
        assert stable_digest(keys[0]) == stable_digest(canonical_statement(stmts[0]))
        assert stable_digest(keys[0]) != stable_digest(keys[1])

    def test_env_fingerprints_digest(self):
        env = Env().bind(Var(SEL_VAR, 7), parse_selector("/html[1]/body[1]"))
        other = Env().bind(Var(SEL_VAR, 7), parse_selector("/html[1]"))
        assert stable_digest(env.fingerprint()) != stable_digest(other.fingerprint())

    def test_action_digest_value_memo(self):
        dom = cards_page(2)
        first = scrape_text(parse_selector("//h3[1]"))
        twin = scrape_text(parse_selector("//h3[1]"))
        assert first is not twin
        assert action_digest(first) == action_digest(twin) == digest_int(first)
        assert action_digest(click(parse_selector("//h3[1]"))) != action_digest(first)

    def test_data_key_by_content_not_identity(self):
        one = DataSource({"zips": [10001, 10002]})
        two = DataSource({"zips": [10001, 10002]})
        other = DataSource({"zips": [10001]})
        assert data_key(one) == data_key(two)
        assert data_key(one) != data_key(other)


def _child_keys(payload, queue):
    """Recompute every key in a separate process (spawn or fork)."""
    dom = repro_io.dom_from_json(payload["dom"])
    unpickled = pickle.loads(payload["pickle"])
    action = repro_io.action_from_json(payload["action"])
    queue.put(
        {
            "content_key": dom.content_key(),
            "unpickled_key": unpickled.content_key(),
            "action_digest": action_digest(action),
            "data_key": data_key(DataSource(payload["data"])),
        }
    )


class TestCrossProcessStability:
    def _expected(self):
        dom = cards_page(3)
        action = scrape_text(parse_selector("//div[@class='card'][2]/h3[1]"))
        data = {"zips": [10001, 10002], "q": ["a"]}
        payload = {
            "dom": repro_io.dom_to_json(dom),
            "pickle": pickle.dumps(dom),
            "action": repro_io.action_to_json(action),
            "data": data,
        }
        expected = {
            "content_key": dom.content_key(),
            "unpickled_key": dom.content_key(),
            "action_digest": action_digest(action),
            "data_key": data_key(DataSource(data)),
        }
        return payload, expected

    def test_multiprocessing_child_reproduces_keys(self):
        payload, expected = self._expected()
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        process = context.Process(target=_child_keys, args=(payload, queue))
        process.start()
        try:
            result = queue.get(timeout=60)
        finally:
            process.join()
        assert result == expected

    def test_fresh_interpreter_with_different_hash_seed(self):
        # the strongest stability claim: a brand-new interpreter, with a
        # deliberately different string-hash seed, derives the same keys
        # from the serialized content alone
        payload, expected = self._expected()
        script = (
            "import sys, json, pickle, base64\n"
            "sys.path.insert(0, %r)\n"
            "sys.path.insert(0, %r)\n"
            "from repro import io as repro_io\n"
            "from repro.engine.keys import action_digest, data_key\n"
            "from repro.lang.data import DataSource\n"
            "blob = json.loads(sys.stdin.read())\n"
            "dom = repro_io.dom_from_json(blob['dom'])\n"
            "unpickled = pickle.loads(base64.b64decode(blob['pickle']))\n"
            "action = repro_io.action_from_json(blob['action'])\n"
            "print(json.dumps({'content_key': dom.content_key(),"
            " 'unpickled_key': unpickled.content_key(),"
            " 'action_digest': action_digest(action),"
            " 'data_key': data_key(DataSource(blob['data']))}))\n"
        ) % (_SRC_DIR, _TESTS_DIR)
        import base64
        import json

        wire = dict(payload)
        wire["pickle"] = base64.b64encode(payload["pickle"]).decode("ascii")
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            completed = subprocess.run(
                [sys.executable, "-c", script],
                input=json.dumps(wire),
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert completed.returncode == 0, completed.stderr
            assert json.loads(completed.stdout) == expected, f"seed {seed}"


_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
_SRC_DIR = os.path.join(os.path.dirname(_TESTS_DIR), "src")
