"""Unit tests for rewrite tuples (worklist entries) and validation."""

import pytest

from repro.dom import Predicate, parse_selector
from repro.lang import (
    EMPTY_DATA,
    ActionStmt,
    ChildrenOf,
    ForEachSelector,
    Selector,
    fresh_var,
    selector_of,
)
from repro.lang.ast import SEL_VAR
from repro.synth import (
    DEFAULT_CONFIG,
    SpeculationContext,
    SRewrite,
    extend_with_singletons,
    initial_tuple,
    is_loop,
    validate,
)
from repro.synth.rewrite import RewriteTuple

from helpers import cards_page, scrape_cards_trace


def make_context(actions, snapshots):
    return SpeculationContext(actions, snapshots, EMPTY_DATA, DEFAULT_CONFIG)


class TestRewriteTuple:
    def test_initial_tuple_shape(self):
        dom = cards_page(3)
        actions, _ = scrape_cards_trace(dom, 2)
        tuple_ = initial_tuple(actions)
        assert tuple_.length == 4
        assert tuple_.bounds == (0, 1, 2, 3, 4)
        assert tuple_.covered == 4
        assert not tuple_.ends_with_loop()

    def test_bounds_validation(self):
        stmt = ActionStmt("GoBack")
        with pytest.raises(ValueError):
            RewriteTuple((stmt,), (0,))  # too few bounds
        with pytest.raises(ValueError):
            RewriteTuple((stmt,), (1, 0))  # decreasing

    def test_slice_bounds(self):
        dom = cards_page(3)
        actions, _ = scrape_cards_trace(dom, 2)
        tuple_ = initial_tuple(actions)
        assert tuple_.slice_bounds(2) == (2, 3)

    def test_key_is_alpha_invariant_and_partition_aware(self):
        var_a, var_b = fresh_var(SEL_VAR), fresh_var(SEL_VAR)

        def loop(var):
            return ForEachSelector(
                var,
                ChildrenOf(selector_of(parse_selector("//ul[1]")), Predicate("li")),
                (ActionStmt("ScrapeText", Selector(var, ())),),
            )

        first = RewriteTuple((loop(var_a),), (0, 4))
        second = RewriteTuple((loop(var_b),), (0, 4))
        third = RewriteTuple((loop(var_a),), (0, 5))
        assert first.key() == second.key()
        assert first.key() != third.key()

    def test_extend_with_singletons(self):
        dom = cards_page(4)
        actions, _ = scrape_cards_trace(dom, 3)
        base = initial_tuple(actions[:4])
        base.processed = True
        extended = extend_with_singletons(base, actions[4:6], 4)
        assert extended.length == 6
        assert extended.covered == 6
        assert extended.spec_start == 4  # processed base: only new spans
        assert not extended.processed

    def test_extend_unprocessed_keeps_spec_start(self):
        dom = cards_page(4)
        actions, _ = scrape_cards_trace(dom, 3)
        base = initial_tuple(actions[:4])  # spec_start 0, not processed
        extended = extend_with_singletons(base, actions[4:5], 4)
        assert extended.spec_start == 0

    def test_is_loop_helper(self):
        assert not is_loop(ActionStmt("GoBack"))
        var = fresh_var(SEL_VAR)
        loop = ForEachSelector(
            var,
            ChildrenOf(selector_of(parse_selector("//ul[1]")), Predicate("li")),
            (ActionStmt("ScrapeText", Selector(var, ())),),
        )
        assert is_loop(loop)


class TestValidate:
    def _loop_rewrite(self, dom):
        """The intended card loop as an s-rewrite over the first pair."""
        from repro.lang import DescendantsOf

        var = fresh_var(SEL_VAR)
        loop = ForEachSelector(
            var,
            DescendantsOf(Selector(None, ()), Predicate("div", "class", "card")),
            (
                ActionStmt("ScrapeText", Selector(var, parse_selector("//h3[1]").steps)),
                ActionStmt(
                    "ScrapeText",
                    Selector(var, parse_selector("//div[@class='phone'][1]").steps),
                ),
            ),
        )
        return SRewrite(loop, 0, 1)

    def test_true_rewrite_accepted_with_full_coverage(self):
        dom = cards_page(3)
        actions, snapshots = scrape_cards_trace(dom, 3)
        context = make_context(actions, snapshots)
        base = initial_tuple(actions)
        rewritten = validate(self._loop_rewrite(dom), base, context)
        assert rewritten is not None
        assert rewritten.length == 1
        assert rewritten.covered == 6
        assert rewritten.ends_with_loop()

    def test_spurious_rewrite_rejected(self):
        # loop whose second statement still points at card 1's phone: its
        # second iteration diverges from the recorded trace
        dom = cards_page(3)
        actions, snapshots = scrape_cards_trace(dom, 3)
        context = make_context(actions, snapshots)
        base = initial_tuple(actions)
        var = fresh_var(SEL_VAR)
        from repro.lang import DescendantsOf

        spurious = ForEachSelector(
            var,
            DescendantsOf(Selector(None, ()), Predicate("div", "class", "card")),
            (
                ActionStmt("ScrapeText", Selector(var, parse_selector("//h3[1]").steps)),
                ActionStmt(
                    "ScrapeText",
                    selector_of(parse_selector("//div[@class='card'][1]//div[@class='phone'][1]")),
                ),
            ),
        )
        assert validate(SRewrite(spurious, 0, 1), base, context) is None

    def test_rewrite_must_cross_iteration_boundary(self):
        # validating against only the first iteration's actions: no slice
        # beyond j exists, so the s-rewrite is rejected
        dom = cards_page(3)
        actions, snapshots = scrape_cards_trace(dom, 1)  # 2 actions only
        context = make_context(actions, snapshots)
        base = initial_tuple(actions)
        assert validate(self._loop_rewrite(dom), base, context) is None

    def test_misaligned_boundary_rejected(self):
        # trace cut mid-pair (3 actions): the loop's production (4 actions
        # needs 4 DOMs; only 3 available -> produced 3 = slice [0,3) which
        # IS a boundary -> accepted with r=2.  Use 1.5 pairs where the
        # divergence happens instead: swap the 3rd action to a click.
        from repro.lang import click
        from repro.dom import raw_path, resolve

        dom = cards_page(3)
        actions, snapshots = scrape_cards_trace(dom, 1)
        button = resolve(parse_selector("//h3[2]"), dom)
        actions = actions + [click(raw_path(button))]
        snapshots = [dom] * (len(actions) + 1)
        context = make_context(actions, snapshots)
        base = initial_tuple(actions)
        assert validate(self._loop_rewrite(dom), base, context) is None
