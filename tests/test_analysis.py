"""Unit tests for the abstract program analysis layer (repro.analysis).

Each domain is checked on hand-built programs with known answers:
effect summaries and the mutating > navigating > read-only
classification; termination verdicts per loop form; symbolic cost
intervals (including data-sharpened value loops); selector fragility
scores and the resolve check; the candidate-feasibility NFA; and the
aggregated :func:`analyze_program` report with its unified findings.
"""

import pytest

from repro.analysis import (
    CostInterval,
    EffectSummary,
    PROGRESS,
    TERMINATING,
    UNKNOWN,
    analyze_program,
    effect_of_program,
    findings_payload,
    fragility_of_program,
    program_cost,
    selector_fragility,
    termination_of_program,
)
from repro.analysis.feasibility import infeasible
from repro.dom import parse_selector
from repro.lang import parse_program
from repro.lang.data import DataSource, EMPTY_DATA
from repro.synth.ranking import Candidate, rank

from helpers import cards_page, raw_action, scrape_cards_trace
from repro.lang import click, scrape_text


SCRAPE_LOOP = (
    "foreach i in Children(/html[1]/body[1], div) do\n"
    "  ScrapeText(i/h3[1])"
)

FORUM_WHILE = (
    "while true do\n"
    "  ScrapeText(//div[@class='card'][1]/h3[1])\n"
    "  Click(//button[@class='next'][1])"
)

ANON_WHILE = (
    "while true do\n"
    "  ScrapeText(/html[1]/body[1]/div[2]/h3[1])\n"
    "  Click(/html[1]/body[1]/button[1])"
)


class TestEffects:
    def test_scrapes_are_read_only(self):
        effect = effect_of_program(parse_program(SCRAPE_LOOP))
        assert effect.classification == "read-only"
        assert effect.safe_to_replay

    def test_clicks_are_navigating_but_safe(self):
        effect = effect_of_program(parse_program(FORUM_WHILE))
        assert effect.classification == "navigating"
        assert effect.safe_to_replay

    def test_send_keys_is_mutating(self):
        effect = effect_of_program(
            parse_program('SendKeys(//input[@name=\'q\'][1], "term")')
        )
        assert effect.classification == "mutating"
        assert not effect.safe_to_replay

    def test_mutating_dominates_in_join(self):
        summary = EffectSummary(reads=True).join(EffectSummary(mutates=True))
        assert summary.classification == "mutating"


class TestTermination:
    def test_foreach_terminates(self):
        overall, loops = termination_of_program(parse_program(SCRAPE_LOOP))
        assert overall == TERMINATING
        assert [v.verdict for v in loops] == [TERMINATING]

    def test_anchored_while_makes_progress(self):
        overall, _ = termination_of_program(parse_program(FORUM_WHILE))
        assert overall == PROGRESS

    def test_bare_path_while_is_unknown(self):
        overall, loops = termination_of_program(parse_program(ANON_WHILE))
        assert overall == UNKNOWN
        assert any(v.verdict == UNKNOWN for v in loops)

    def test_loop_free_program_terminates(self):
        overall, loops = termination_of_program(parse_program("ScrapeText(//h3[1])"))
        assert overall == TERMINATING and loops == []


class TestCost:
    def test_straight_line_cost_is_exact(self):
        cost = program_cost(parse_program("ScrapeText(//h3[1])\nClick(//a[1])"))
        assert cost == CostInterval(2, 2)

    def test_node_loop_is_unbounded_above(self):
        cost = program_cost(parse_program(SCRAPE_LOOP))
        assert cost.lo == 0 and cost.hi is None

    def test_while_loop_lower_bound_is_one_body_run(self):
        cost = program_cost(parse_program(FORUM_WHILE))
        assert cost.lo == 1 and cost.hi is None

    def test_value_loop_sharpened_by_data(self):
        program = parse_program(
            'foreach v in ValuePaths(x["zips"]) do\n'
            "  EnterData(//input[@name='q'][1], v)"
        )
        data = DataSource({"zips": ["48104", "48105", "48106"]})
        assert program_cost(program, data) == CostInterval(3, 3)
        unsharpened = program_cost(program)
        assert unsharpened.lo == 0 and unsharpened.hi is None

    def test_interval_rendering(self):
        assert str(CostInterval(2, 5)) == "[2, 5]"
        assert str(CostInterval(0, None)) == "[0, inf)"


class TestFragility:
    def test_raw_path_scores_by_indices(self):
        # /html[1]/body[1]/div[3]: bare-tag steps score their index
        assert selector_fragility(parse_selector("/html[1]/body[1]/div[3]").steps) == 5

    def test_anchored_selector_scores_zero(self):
        assert selector_fragility(parse_selector("//div[@class='card'][1]").steps) == 0

    def test_anchored_with_position_scores_reduced(self):
        assert selector_fragility(parse_selector("//div[@class='card'][3]").steps) == 2

    def test_resolve_check_against_snapshots(self):
        dom = cards_page(3)
        reports = fragility_of_program(
            parse_program("ScrapeText(//div[@class='card'][1]/h3[1])"), (dom,)
        )
        assert [r.resolves for r in reports] == [True]
        reports = fragility_of_program(
            parse_program("ScrapeText(//div[@class='missing'][1])"), (dom,)
        )
        assert [r.resolves for r in reports] == [False]

    def test_symbolic_selectors_are_not_resolve_checked(self):
        reports = fragility_of_program(parse_program(SCRAPE_LOOP), (cards_page(2),))
        roles = {r.role: r.resolves for r in reports}
        assert roles["target"] is None  # mentions the loop variable
        assert roles["collection"] is True


class TestFeasibility:
    def test_raw_selector_loop_body_is_refuted(self):
        # a loop body that kept the raw first-card selector re-resolves
        # to card 1 at iteration 2 while the reference moved to card 2
        dom = cards_page(3).freeze()
        actions, snapshots = scrape_cards_trace(dom, 3)
        stmt = parse_program(
            "foreach i in Children(/html[1]/body[1], div) do\n"
            "  ScrapeText(/html[1]/body[1]/div[2]/h3[1])\n"
            "  ScrapeText(/html[1]/body[1]/div[2]/div[1])"
        ).statements[0]
        assert infeasible(stmt, actions, snapshots, EMPTY_DATA, 0, 4)

    def test_parametrized_loop_body_is_not_refuted(self):
        dom = cards_page(3).freeze()
        actions, snapshots = scrape_cards_trace(dom, 3)
        stmt = parse_program(
            "foreach i in Children(/html[1]/body[1], div) do\n"
            "  ScrapeText(i/h3[1])\n"
            "  ScrapeText(i/div[1])"
        ).statements[0]
        assert not infeasible(stmt, actions, snapshots, EMPTY_DATA, 0, 4)

    def test_kind_mismatch_is_refuted_immediately(self):
        dom = cards_page(2).freeze()
        actions, snapshots = scrape_cards_trace(dom, 2)
        stmt = parse_program("Click(//div[@class='card'][1]/h3[1])").statements[0]
        assert infeasible(stmt, actions, snapshots, EMPTY_DATA, 0, 1)

    def test_zero_requirement_never_refutes(self):
        dom = cards_page(2).freeze()
        actions, snapshots = scrape_cards_trace(dom, 2)
        stmt = parse_program("Click(//a[1])").statements[0]
        assert not infeasible(stmt, actions, snapshots, EMPTY_DATA, 0, 0)


class TestAnalyzeProgram:
    def test_clean_read_only_loop(self):
        analysis = analyze_program(parse_program(SCRAPE_LOOP))
        assert analysis.clean
        summary = analysis.summary_json()
        assert summary["effect"] == "read-only"
        assert summary["safe_replay"] is True
        assert summary["termination"] == "terminating"

    def test_unknown_termination_is_not_clean_but_warns(self):
        analysis = analyze_program(parse_program(ANON_WHILE))
        assert not analysis.clean
        rules = [f.rule for f in analysis.findings]
        assert "possibly-nonterminating" in rules
        # warnings, not errors: the program may still be accepted
        assert all(f.severity != "error" for f in analysis.findings)

    def test_unresolved_selector_is_an_error(self):
        analysis = analyze_program(
            parse_program("ScrapeText(//div[@class='missing'][1])"),
            snapshots=(cards_page(2),),
        )
        assert not analysis.clean
        assert [f.rule for f in analysis.findings if f.severity == "error"] == [
            "unresolved-selector"
        ]

    def test_findings_payload_shape(self):
        analysis = analyze_program(parse_program(ANON_WHILE))
        payload = findings_payload("analyze", analysis.findings)
        assert payload["version"] == 1
        assert payload["tool"] == "analyze"
        assert payload["errors"] == 0
        assert payload["warnings"] >= 1
        assert all(
            set(item) == {"tool", "rule", "severity", "path", "message"}
            for item in payload["findings"]
        )


class TestCostRanking:
    def test_cost_strategy_prefers_cheapest_replay(self):
        dom = cards_page(2)
        bounded = parse_program("ScrapeText(//h3[1])")
        unbounded = parse_program(SCRAPE_LOOP)
        prediction = raw_action(scrape_text, dom, "//h3[1]")
        candidates = [
            Candidate.of(unbounded, prediction, 1),
            Candidate.of(bounded, prediction, 1),
        ]
        ranked = rank(candidates, "cost")
        assert ranked[0].program is bounded

    def test_unknown_strategy_still_rejected(self):
        from repro.util.errors import SynthesisError

        with pytest.raises(SynthesisError):
            rank([], "not-a-strategy")
