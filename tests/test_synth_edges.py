"""Edge-case and failure-injection tests for the synthesis engine."""

import pytest

from repro.benchmarks import benchmark_by_id
from repro.dom import parse_selector, raw_path
from repro.lang import EMPTY_DATA, ForEachSelector, WhileLoop, scrape_link, scrape_text
from repro.semantics import actions_consistent
from repro.synth import SynthesisConfig, Synthesizer

from helpers import cards_page, raw_action, scrape_cards_trace


class TestBudgetsAndLimits:
    def test_zero_timeout_returns_cleanly(self):
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots, timeout=0.0)
        assert result.stats.timed_out
        assert result.predictions == [] or result.predictions

    def test_tiny_store_cap_still_solves_simple_loop(self):
        config = SynthesisConfig(max_store_tuples=4)
        dom = cards_page(5)
        actions, snapshots = scrape_cards_trace(dom, 3)
        synth = Synthesizer(EMPTY_DATA, config)
        result = None
        for k in range(1, len(actions) + 1):
            result = synth.synthesize(actions[:k], snapshots[: k + 1])
        assert result.best_program is not None

    def test_max_worklist_pops_bounds_processing(self):
        config = SynthesisConfig(max_worklist_pops=1)
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA, config).synthesize(actions, snapshots)
        assert result.stats.pops == 1

    def test_small_body_cap_misses_long_iterations(self):
        # the first iteration of the card loop spans 2 statements; with
        # max_body=1 the engine cannot speculate it
        config = SynthesisConfig(max_body=1)
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA, config).synthesize(actions, snapshots)
        assert result.best_program is None


class TestPredictionOutput:
    def test_predictions_deduplicated_across_programs(self):
        dom = cards_page(4)
        actions, snapshots = scrape_cards_trace(dom, 2)
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        # several programs survive but they agree on the next action
        assert len(result.programs) >= 2
        keys = set()
        for option in result.predictions:
            from repro.dom import resolve

            node = resolve(option.selector, snapshots[-1])
            keys.add((option.kind, id(node)))
        assert len(keys) == len(result.predictions)

    def test_scrape_link_loops_synthesize(self):
        dom = cards_page(4)
        actions = []
        for card in (1, 2):
            actions.append(
                raw_action(scrape_link, dom, f"//div[@class='card'][{card}]/h3[1]")
            )
        snapshots = [dom] * 3
        result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
        assert result.best_prediction is not None
        assert result.best_prediction.kind == "ScrapeLink"


class TestNavigationBodies:
    def test_catalog_click_scrape_goback_loop(self):
        benchmark = benchmark_by_id("b45")
        recording = benchmark.record()
        synth = Synthesizer(benchmark.data)
        # two full iterations (click, scrape, back) x 2 = 6 actions
        result = synth.synthesize(*recording.prefix(6))
        assert result.best_program is not None
        loop = result.best_program.statements[0]
        assert isinstance(loop, ForEachSelector)
        kinds = [stmt.kind for stmt in loop.body]
        assert kinds == ["Click", "ScrapeText", "GoBack"]

    def test_while_loop_with_shifting_next_button(self):
        # store-fixed: the next arrow's raw path differs between page 1
        # (no prev button) and later pages — the while click must use a
        # common alternative selector
        benchmark = benchmark_by_id("b33")
        recording = benchmark.record()
        synth = Synthesizer(benchmark.data)
        result = None
        for k in range(1, min(recording.length - 1, 26)):
            result = synth.synthesize(*recording.prefix(k))
        assert result.best_program is not None
        assert isinstance(result.best_program.statements[0], WhileLoop)
        click_selector = result.best_program.statements[0].click.target
        assert "sprite-next-page-arrow" in str(click_selector) or "fa-arrow" in str(
            click_selector
        )


class TestUnsupportedBenchmarks:
    def test_numbered_pagination_never_finds_while(self):
        benchmark = benchmark_by_id("b9")
        recording = benchmark.record()
        synth = Synthesizer(benchmark.data)
        result = None
        for k in range(1, recording.length):
            result = synth.synthesize(*recording.prefix(k))
            for program in result.programs:
                assert not any(
                    isinstance(stmt, WhileLoop) for stmt in program.statements
                ), "no click-terminated while loop can describe numbered pagination"

    def test_match_list_trace_resists_generalization(self):
        # ad rows interleave the match rows: the loop readings available
        # to the DSL cannot reproduce the demonstration past page level
        benchmark = benchmark_by_id("b6")
        recording = benchmark.record()
        synth = Synthesizer(benchmark.data)
        correct = 0
        tests = recording.length - 1
        for k in range(1, tests + 1):
            result = synth.synthesize(*recording.prefix(k))
            expected = recording.actions[k]
            dom = recording.snapshots[k]
            correct += any(
                actions_consistent(option, expected, dom)
                for option in result.predictions
            )
        assert correct < tests  # strictly imperfect on the unsupported case
