"""Unit tests for environments and DOM-trace windows."""

import pytest

from repro.dom import ConcreteSelector, E, page, parse_selector
from repro.lang import SEL_VAR, VAL_VAR, X, Selector, ValuePath, fresh_var
from repro.semantics import DOMTrace, Env
from repro.util import ReproError


class TestEnv:
    def test_empty_is_shared(self):
        assert Env.empty() is Env.empty()
        assert len(Env.empty()) == 0

    def test_bind_is_persistent(self):
        var = fresh_var(SEL_VAR)
        sel = parse_selector("//a[1]")
        env = Env.empty().bind(var, sel)
        assert var in env
        assert var not in Env.empty()
        assert env.lookup(var) == sel

    def test_lookup_unbound_raises(self):
        with pytest.raises(ReproError):
            Env.empty().lookup(fresh_var(SEL_VAR))

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ReproError):
            Env.empty().bind(fresh_var(SEL_VAR), X)
        with pytest.raises(ReproError):
            Env.empty().bind(fresh_var(VAL_VAR), parse_selector("//a[1]"))

    def test_value_binding_must_be_concrete(self):
        symbolic = ValuePath(fresh_var(VAL_VAR), ())
        with pytest.raises(ReproError):
            Env.empty().bind(fresh_var(VAL_VAR), symbolic)

    def test_resolve_selector_substitutes_base(self):
        var = fresh_var(SEL_VAR)
        env = Env.empty().bind(var, parse_selector("//div[2]"))
        symbolic = Selector(var, parse_selector("//h3[1]").steps)
        assert str(env.resolve_selector(symbolic)) == "//div[2]//h3[1]"

    def test_resolve_selector_epsilon(self):
        symbolic = Selector(None, parse_selector("/html[1]").steps)
        assert env_resolves_to(symbolic, "/html[1]")

    def test_resolve_path_substitutes_base(self):
        var = fresh_var(VAL_VAR)
        env = Env.empty().bind(var, X.extend("zips").extend(2))
        symbolic = ValuePath(var, ("inner",))
        resolved = env.resolve_path(symbolic)
        assert resolved.is_concrete
        assert resolved.accessors == ("zips", 2, "inner")

    def test_resolve_concrete_path_identity(self):
        path = X.extend("zips").extend(1)
        assert Env.empty().resolve_path(path) is path


def env_resolves_to(symbolic, expected):
    return str(Env.empty().resolve_selector(symbolic)) == expected


class TestDOMTrace:
    def setup_method(self):
        self.pages = [page(E("p", text=str(i))) for i in range(4)]
        self.trace = DOMTrace(self.pages)

    def test_len_and_bool(self):
        assert len(self.trace) == 4
        assert self.trace
        assert not DOMTrace([])

    def test_head_tail(self):
        assert self.trace.head() is self.pages[0]
        assert self.trace.tail().head() is self.pages[1]
        assert len(self.trace.tail()) == 3

    def test_head_of_empty_raises(self):
        empty = DOMTrace([])
        with pytest.raises(IndexError):
            empty.head()
        with pytest.raises(IndexError):
            empty.tail()

    def test_getitem_bounds(self):
        assert self.trace[3] is self.pages[3]
        with pytest.raises(IndexError):
            self.trace[4]
        with pytest.raises(IndexError):
            self.trace[-1]

    def test_window_relative(self):
        sub = self.trace.window(1, 3)
        assert len(sub) == 2
        assert sub.head() is self.pages[1]
        subsub = sub.window(1)
        assert subsub.head() is self.pages[2]
        assert subsub.stop == sub.stop

    def test_window_validation(self):
        with pytest.raises(ValueError):
            self.trace.window(3, 2)

    def test_iteration(self):
        assert list(self.trace.window(2)) == self.pages[2:]

    def test_shares_base(self):
        assert self.trace.shares_base_with(self.trace.window(1, 2))
        other = DOMTrace(list(self.pages))
        assert not self.trace.shares_base_with(other)

    def test_rejects_nested_trace(self):
        with pytest.raises(TypeError):
            DOMTrace(self.trace)
