"""Property-based soundness tests for the analysis layer.

The analyzer's verdicts must never contradict concrete execution:

* **effects** — replaying a program under the trace semantics only
  emits action kinds the static effect summary admits; in particular a
  read-only-classified program never emits a DOM-mutating (or even
  navigating) action;
* **cost** — the measured action count of a complete concrete replay
  falls inside the statically computed cost interval;
* **pruning** — synthesis with the static candidate filter on and off
  produces byte-identical programs on randomly parameterized
  recordings, with the filter never increasing the engine validation
  count.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_program, effect_of_program
from repro.analysis.effects import MUTATE_KINDS, NAVIGATE_KINDS, READ_KINDS
from repro.benchmarks.sites.plain_lists import NestedListSite, PlainListSite
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.browser import record_ground_truth
from repro.lang import EMPTY_DATA, Program, action_to_statement, parse_program
from repro.lang.pretty import format_program
from repro.semantics import DOMTrace, execute
from repro.synth.config import serial_validation_config
from repro.synth.synthesizer import Synthesizer

FLAT_GT = parse_program(
    "foreach i in Children(/html[1]/body[1]/ul[1], li) do\n"
    "  ScrapeText(i/span[1])\n  ScrapeText(i/b[1])"
)
NESTED_GT = parse_program(
    "foreach g in Children(/html[1]/body[1], div) do\n"
    "  foreach i in Children(g/ul[1], li) do\n    ScrapeText(i)"
)
STORE_GT = parse_program("""
while true do
  foreach r in Dscts(/, div[@class='rightContainer']) do
    ScrapeText(r//h3[1])
  Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
""")


@st.composite
def recordings(draw):
    """A (recording, ground truth, data) triple from a known family."""
    family = draw(st.sampled_from(["flat", "nested", "store"]))
    if family == "flat":
        site = PlainListSite(draw(st.integers(2, 7)), fields=2,
                             seed=f"as{draw(st.integers(0, 5))}")
        return record_ground_truth(site, FLAT_GT), FLAT_GT, EMPTY_DATA
    if family == "nested":
        site = NestedListSite(draw(st.integers(2, 4)), draw(st.integers(2, 4)),
                              seed=f"an{draw(st.integers(0, 5))}")
        return record_ground_truth(site, NESTED_GT), NESTED_GT, EMPTY_DATA
    site = StoreLocatorSite(draw(st.integers(2, 3)), draw(st.integers(2, 4)),
                            fixed_zip=f"48{draw(st.integers(100, 120))}")
    return record_ground_truth(site, STORE_GT), STORE_GT, EMPTY_DATA


def _admitted_kinds(summary) -> set:
    admitted = set()
    if summary.reads:
        admitted |= READ_KINDS
    if summary.navigates:
        admitted |= NAVIGATE_KINDS
    if summary.mutates:
        admitted |= MUTATE_KINDS
    return admitted


class TestEffectSoundness:
    @given(recordings())
    @settings(max_examples=20, deadline=None)
    def test_replay_emits_only_admitted_kinds(self, payload):
        recording, program, data = payload
        summary = effect_of_program(program)
        produced = execute(program, DOMTrace(recording.snapshots), data).actions
        admitted = _admitted_kinds(summary)
        assert {action.kind for action in produced} <= admitted

    @given(recordings())
    @settings(max_examples=20, deadline=None)
    def test_read_only_verdict_means_no_mutation(self, payload):
        recording, program, data = payload
        summary = effect_of_program(program)
        if summary.classification != "read-only":
            return
        produced = execute(program, DOMTrace(recording.snapshots), data).actions
        assert not any(
            action.kind in MUTATE_KINDS | NAVIGATE_KINDS for action in produced
        )

    @given(recordings())
    @settings(max_examples=20, deadline=None)
    def test_singleton_lift_is_always_analyzable(self, payload):
        recording, _, data = payload
        singleton = Program(
            tuple(action_to_statement(action) for action in recording.actions)
        )
        analysis = analyze_program(singleton, data, recording.snapshots)
        # the recorded trace itself replays exactly: its lift is
        # loop-free, hence terminating with an exact cost
        assert analysis.termination == "terminating"
        assert analysis.cost.lo == analysis.cost.hi == recording.length


class TestCostSoundness:
    @given(recordings())
    @settings(max_examples=20, deadline=None)
    def test_complete_replay_count_inside_interval(self, payload):
        recording, program, data = payload
        cost = analyze_program(program, data).cost
        produced = execute(program, DOMTrace(recording.snapshots), data).actions
        assert cost.contains(len(produced)), (
            f"{len(produced)} produced actions outside {cost}"
        )

    @given(recordings(), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_halted_replay_respects_upper_bound(self, payload, cut):
        # upper bounds are sound for *every* run, halted ones included
        # (lower bounds are not: halting can cut a run short)
        recording, program, data = payload
        cut = min(cut, recording.length)
        cost = analyze_program(program, data).cost
        produced = execute(program, DOMTrace(recording.snapshots, 0, cut), data).actions
        assert cost.hi is None or len(produced) <= cost.hi


class TestPruneParity:
    @given(recordings())
    @settings(max_examples=8, deadline=None)
    def test_pruning_never_changes_synthesized_programs(self, payload):
        recording, _, data = payload
        length = recording.length - 1
        if length < 2:
            return
        actions, snapshots = recording.prefix(length)
        outcomes = {}
        for flag in (False, True):
            config = replace(serial_validation_config(), static_prune=flag)
            synthesizer = Synthesizer(data, config)
            result = synthesizer.synthesize(actions, snapshots, timeout=10.0)
            outcomes[flag] = (
                [format_program(p) for p in result.programs],
                result.stats.validations,
            )
            synthesizer.close()
        assert outcomes[True][0] == outcomes[False][0]
        assert outcomes[True][1] <= outcomes[False][1]
