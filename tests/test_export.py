"""Tests for the script exporters (repro.export).

The generated scripts cannot be *run* here (no Selenium/Playwright, no
network), so the tests check three layers: the emitted source is valid
Python (``compile``), the structural skeleton matches the program
(loops, finds, accumulators), and the XPath translation preserves our
selector semantics on tricky cases (descendant indices, token
predicates, quote-bearing attribute values).
"""

import ast

import pytest

from repro.dom.xpath import (
    CHILD,
    DESC,
    Predicate,
    Step,
    TokenPredicate,
)
from repro.export import TARGETS, export_program, to_imacros, to_playwright, to_selenium
from repro.export.common import (
    CodeWriter,
    VarNames,
    predicate_to_xpath,
    steps_to_xpath,
    value_path_expr,
    xpath_string_literal,
)
from repro.lang import ValuePath, parse_program
from repro.util.errors import ExportError

SUBWAY_P4 = """
foreach d1 in ValuePaths(x["zips"]) do
  EnterData(//input[@name='search'][1], d1)
  Click(//button[@class='go'][1])
  while true do
    foreach r1 in Dscts(/, div[@class='rightContainer']) do
      ScrapeText(r1//h3[1])
      ScrapeText(r1//div[@class='locatorPhone'][1])
    Click(//button[@class='next'][1]/span[1])
"""

ALL_KINDS = """
Click(/html[1]/body[1]/a[2])
ScrapeText(//h3[1])
ScrapeLink(//a[@class='detail'][1])
Download(//a[@class='pdf'][1])
GoBack
ExtractURL
SendKeys(//input[1], "hello")
EnterData(//input[@name='q'][1], x["terms"][1])
"""


def compiles(source: str) -> bool:
    compile(source, "<generated>", "exec")
    return True


def balanced_braces(source: str) -> bool:
    """Crude JS sanity check: braces balance outside string literals."""
    depth = 0
    in_string: str = ""
    previous = ""
    for char in source:
        if in_string:
            if char == in_string and previous != "\\":
                in_string = ""
        elif char in "'\"":
            in_string = char
        elif char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                return False
        previous = char
    return depth == 0


# ----------------------------------------------------------------------
# XPath translation
# ----------------------------------------------------------------------
class TestXPathTranslation:
    def test_child_steps_verbatim(self):
        steps = (
            Step(CHILD, Predicate("html"), 1),
            Step(CHILD, Predicate("body"), 1),
            Step(CHILD, Predicate("div"), 3),
        )
        assert steps_to_xpath(steps, "") == "/html[1]/body[1]/div[3]"

    def test_descendant_step_wrapped_for_document_order(self):
        # Our //div[2] is "2nd div in document order"; real XPath needs
        # the parenthesized node-set index.
        steps = (Step(DESC, Predicate("div", "class", "card"), 2),)
        assert steps_to_xpath(steps, "") == "(//div[@class='card'])[2]"

    def test_mixed_axes_nest_parentheses(self):
        steps = (
            Step(CHILD, Predicate("html"), 1),
            Step(DESC, Predicate("div"), 2),
            Step(CHILD, Predicate("h3"), 1),
        )
        assert steps_to_xpath(steps, "") == "(/html[1]//div)[2]/h3[1]"

    def test_relative_origin(self):
        steps = (Step(DESC, Predicate("h3"), 1),)
        assert steps_to_xpath(steps, ".") == "(.//h3)[1]"

    def test_empty_steps_fall_back_to_root(self):
        assert steps_to_xpath((), "") == "/*"

    def test_token_predicate_uses_contains(self):
        xpath = predicate_to_xpath(TokenPredicate("div", "class", "match"))
        assert "contains(concat(' ', normalize-space(@class), ' '), ' match ')" in xpath

    def test_plain_attribute_predicate(self):
        assert predicate_to_xpath(Predicate("a", "id", "go")) == "a[@id='go']"


class TestXPathLiterals:
    def test_plain(self):
        assert xpath_string_literal("abc") == "'abc'"

    def test_single_quote_switches_to_double(self):
        assert xpath_string_literal("it's") == '"it\'s"'

    def test_both_quotes_use_concat(self):
        literal = xpath_string_literal("a'b\"c")
        assert literal.startswith("concat(")
        assert "'a'" in literal and "\"'\"" in literal

    def test_literal_embeds_in_valid_python(self):
        # the generated scripts embed these inside Python string reprs
        value = "mixed 'single' and \"double\""
        literal = xpath_string_literal(value)
        assert compiles(f"x = {literal!r}")


# ----------------------------------------------------------------------
# Value paths
# ----------------------------------------------------------------------
class TestValuePathExpr:
    def test_absolute_path_indexes_data(self):
        path = ValuePath(None, ("zips", 2))
        assert value_path_expr(path, VarNames()) == "data['zips'][1]"

    def test_unbound_variable_raises(self):
        from repro.lang.ast import VAL_VAR, fresh_var

        path = ValuePath(fresh_var(VAL_VAR), ("name",))
        with pytest.raises(ExportError):
            value_path_expr(path, VarNames())


# ----------------------------------------------------------------------
# Whole-script generation
# ----------------------------------------------------------------------
class TestSeleniumExport:
    def test_p4_compiles(self):
        source = to_selenium(parse_program(SUBWAY_P4))
        assert compiles(source)

    def test_all_action_kinds_compile_and_appear(self):
        source = to_selenium(parse_program(ALL_KINDS))
        assert compiles(source)
        assert "driver.back()" in source
        assert "urls.append(driver.current_url)" in source
        assert ".click()" in source
        assert 'get_attribute("href")' in source
        assert "send_keys('hello')" in source
        assert "send_keys(str(data['terms'][0]))" in source

    def test_collections_requery_lazily(self):
        source = to_selenium(parse_program(SUBWAY_P4))
        # the selector loop re-queries its collection every iteration
        assert source.count("find_all(") >= 2  # loop collection + while button
        assert "while True:" in source

    def test_while_loop_click_terminated(self):
        source = to_selenium(parse_program(SUBWAY_P4))
        assert "if not buttons_1:" in source
        assert "buttons_1[0].click()" in source

    def test_nested_value_loop_binds_value(self):
        source = to_selenium(parse_program(SUBWAY_P4))
        assert "for value_1 in data['zips']:" in source
        assert "send_keys(str(value_1))" in source

    def test_source_program_embedded_as_comment(self):
        source = to_selenium(parse_program(SUBWAY_P4))
        assert "#   foreach d1 in ValuePaths" in source

    def test_start_url_baked_in(self):
        source = to_selenium(parse_program("ScrapeText(//h3[1])"), start_url="http://x")
        assert "START_URL = 'http://x'" in source

    def test_defines_run_and_main(self):
        tree = ast.parse(to_selenium(parse_program("ScrapeText(//h3[1])")))
        names = {node.name for node in tree.body if isinstance(node, ast.FunctionDef)}
        assert {"run", "main", "find", "find_all"} <= names


class TestPlaywrightExport:
    def test_p4_compiles(self):
        source = to_playwright(parse_program(SUBWAY_P4))
        assert compiles(source)

    def test_all_action_kinds_compile_and_appear(self):
        source = to_playwright(parse_program(ALL_KINDS))
        assert compiles(source)
        assert "page.go_back()" in source
        assert "urls.append(page.url)" in source
        assert ".inner_text()" in source
        assert ".fill(str(data['terms'][0]))" in source
        assert ".press_sequentially('hello')" in source

    def test_locators_use_xpath_engine(self):
        source = to_playwright(parse_program(SUBWAY_P4))
        assert 'locator("xpath=' in source

    def test_while_loop_counts_buttons(self):
        source = to_playwright(parse_program(SUBWAY_P4))
        assert ".count() == 0:" in source

    def test_nested_loop_uses_nth(self):
        source = to_playwright(parse_program(SUBWAY_P4))
        assert ".nth(index_1 - 1)" in source


class TestIMacrosExport:
    def test_p4_structure(self):
        source = to_imacros(parse_program(SUBWAY_P4))
        assert balanced_braces(source)
        # value loop + while loop + selector loop all present
        assert "for (var vi_1 = 0;" in source
        assert source.count("while (true) {") == 2
        assert "if (!probe(" in source

    def test_all_action_kinds_appear(self):
        source = to_imacros(parse_program(ALL_KINDS))
        assert balanced_braces(source)
        assert 'play("BACK");' in source
        assert "urls.push(currentUrl());" in source
        assert '"TXT"' in source and '"HREF"' in source
        assert "content(\"hello\")" in source
        assert "content(data['terms'][0])" in source

    def test_loop_variables_hold_xpath_strings(self):
        source = to_imacros(parse_program(SUBWAY_P4))
        # the loop element is an XPath string assembled per iteration...
        assert 'var element_1 = "(//div[@class=\'rightContainer\'])[" + index_1 + "]";' in source
        # ...and relative selectors splice into it via `under`
        assert 'under(element_1, "({origin}//h3)[1]")' in source

    def test_while_loop_probes_before_click(self):
        source = to_imacros(parse_program(SUBWAY_P4))
        probe_at = source.index("if (!probe(button_1))")
        click_at = source.index("play('TAG XPATH=\"' + button_1 + '\"');")
        assert probe_at < click_at

    def test_children_collection_indexes_among_children(self):
        source = to_imacros(
            parse_program("foreach r in Children(//ul[1], li) do\n  ScrapeText(r/span[1])")
        )
        assert '"(//ul)[1]/li[" + index_1 + "]"' in source

    def test_source_program_embedded_as_comment(self):
        source = to_imacros(parse_program(SUBWAY_P4))
        assert "//   foreach d1 in ValuePaths" in source

    def test_start_url_plays_goto(self):
        source = to_imacros(parse_program("GoBack"), start_url="http://x")
        assert 'var START_URL = "http://x";' in source
        assert 'play("URL GOTO=" + START_URL);' in source

    def test_double_quoted_attribute_value_rejected(self):
        program = parse_program("Click(//a[@class='it\"s'][1])")
        with pytest.raises(ExportError, match="double quotes"):
            to_imacros(program)


class TestExportDispatch:
    def test_targets_registry(self):
        assert set(TARGETS) == {"selenium", "playwright", "imacros"}

    @pytest.mark.parametrize("target", ["selenium", "playwright"])
    def test_dispatch_produces_python(self, target):
        source = export_program(parse_program("ScrapeText(//h3[1])"), target=target)
        assert compiles(source)

    def test_dispatch_produces_imacros_js(self):
        source = export_program(parse_program("ScrapeText(//h3[1])"), target="imacros")
        assert "iimPlay" in source
        assert balanced_braces(source)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown export target"):
            export_program(parse_program("GoBack"), target="puppeteer")


class TestCodeWriter:
    def test_blocks_indent_and_dedent(self):
        writer = CodeWriter()
        with writer.block("if x:"):
            writer.line("y = 1")
        writer.line("z = 2")
        assert writer.render() == "if x:\n    y = 1\nz = 2\n"

    def test_blank_lines_carry_no_indentation(self):
        writer = CodeWriter()
        with writer.block("if x:"):
            writer.line()
            writer.line("pass")
        assert "\n\n" in writer.render()

    def test_unbalanced_dedent_rejected(self):
        with pytest.raises(ExportError):
            CodeWriter().dedent()


class TestExportedSemantics:
    """Exported scripts must mirror the program we would replay locally."""

    def test_selenium_matches_virtual_replay_structure(self):
        # The exported loop structure must visit items in the same order
        # as the trace semantics: one find per body statement, indexed
        # from 1, collection re-queried between iterations.
        program = parse_program(
            "foreach r in Dscts(/, div[@class='card']) do\n"
            "  ScrapeText(r//h3[1])\n"
            "  ScrapeText(r//div[@class='phone'][1])"
        )
        source = to_selenium(program)
        body_start = source.index("while True:")
        body = source[body_start:]
        first = body.index("(.//h3)[1]")
        second = body.index("(.//div[@class='phone'])[1]")
        assert first < second

    def test_quotes_in_attribute_values_survive(self):
        program = parse_program('Click(//a[@class="it\'s"][1])')
        source = to_selenium(program)
        assert compiles(source)
        assert "it's" in source
