"""Unit tests for anti-unification (Figure 10 rules)."""

from repro.dom import EPSILON, Predicate, parse_selector, raw_path
from repro.lang import (
    SEL_VAR,
    VAL_VAR,
    X,
    ActionStmt,
    ChildrenOf,
    DescendantsOf,
    ForEachSelector,
    ForEachValue,
    Selector,
    ValuePath,
    ValuePathsOf,
    action_to_statement,
    fresh_var,
    scrape_text,
    selector_of,
)
from repro.synth import (
    DEFAULT_CONFIG,
    anti_unify_accessors,
    anti_unify_selectors,
    anti_unify_statements,
    no_selector_config,
)

from helpers import cards_page, node_at, plain_list_page, raw_action


class TestAntiUnifyAccessors:
    def test_single_split(self):
        splits = anti_unify_accessors(("zips", 1), ("zips", 2))
        assert splits == [(("zips",), ())]

    def test_split_with_suffix(self):
        splits = anti_unify_accessors(("rows", 1, "name"), ("rows", 2, "name"))
        assert splits == [(("rows",), ("name",))]

    def test_no_split_when_prefix_differs(self):
        assert anti_unify_accessors(("a", 1), ("b", 2)) == []

    def test_requires_one_and_two(self):
        assert anti_unify_accessors(("zips", 2), ("zips", 3)) == []

    def test_length_mismatch(self):
        assert anti_unify_accessors(("zips", 1), ("zips", 2, "x")) == []

    def test_multiple_candidate_positions(self):
        first = ("a", 1, "b", 1)
        second = ("a", 1, "b", 2)
        # only the last position differs 1 -> 2 with equal context
        assert anti_unify_accessors(first, second) == [(("a", 1, "b"), ())]


class TestAntiUnifySelectors:
    def test_cards_h3_pair(self):
        dom = cards_page(3)
        first = raw_path(node_at(dom, "//div[@class='card'][1]/h3[1]"))
        second = raw_path(node_at(dom, "//div[@class='card'][2]/h3[1]"))
        results = anti_unify_selectors(first, dom, second, dom, DEFAULT_CONFIG)
        assert results
        collections = {str(r.collection) for r in results}
        assert "Dscts(/, div[@class='card'])" in collections
        # first bindings are always at index 1
        assert all("[1]" in str(r.first) for r in results)

    def test_plain_list_children_pair(self):
        dom = plain_list_page(3)
        first = raw_path(node_at(dom, "//li[1]/span[1]"))
        second = raw_path(node_at(dom, "//li[2]/span[1]"))
        results = anti_unify_selectors(
            first, dom, second, dom, no_selector_config()
        )
        assert results
        assert any(
            isinstance(r.collection, ChildrenOf)
            and r.collection.pred == Predicate("li")
            for r in results
        )

    def test_same_selector_cannot_pivot(self):
        dom = cards_page(2)
        sel = raw_path(node_at(dom, "//div[@class='card'][1]/h3[1]"))
        assert anti_unify_selectors(sel, dom, sel, dom, DEFAULT_CONFIG) == []

    def test_non_consecutive_indices_rejected(self):
        dom = cards_page(4)
        first = raw_path(node_at(dom, "//div[@class='card'][1]/h3[1]"))
        third = raw_path(node_at(dom, "//div[@class='card'][3]/h3[1]"))
        assert anti_unify_selectors(first, dom, third, dom, DEFAULT_CONFIG) == []

    def test_trace_starting_at_second_card_rejected(self):
        # Loops iterate from index 1; a demonstration starting at card 2
        # admits no (1, 2) reading.
        dom = cards_page(4)
        second = raw_path(node_at(dom, "//div[@class='card'][2]/h3[1]"))
        third = raw_path(node_at(dom, "//div[@class='card'][3]/h3[1]"))
        assert anti_unify_selectors(second, dom, third, dom, DEFAULT_CONFIG) == []

    def test_general_selector_uses_variable(self):
        dom = cards_page(2)
        first = raw_path(node_at(dom, "//div[@class='card'][1]/h3[1]"))
        second = raw_path(node_at(dom, "//div[@class='card'][2]/h3[1]"))
        for result in anti_unify_selectors(first, dom, second, dom, DEFAULT_CONFIG):
            assert result.general.base == result.var


class TestAntiUnifyActionStatements:
    def test_scrape_pair(self):
        dom = cards_page(2)
        first = action_to_statement(
            raw_action(scrape_text, dom, "//div[@class='card'][1]/h3[1]")
        )
        second = action_to_statement(
            raw_action(scrape_text, dom, "//div[@class='card'][2]/h3[1]")
        )
        results = anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG)
        assert results
        assert all(isinstance(r.stmt, ActionStmt) for r in results)
        assert all(r.stmt.kind == "ScrapeText" for r in results)
        assert all(r.var.kind == SEL_VAR for r in results)

    def test_kind_mismatch_rejected(self):
        from repro.lang import click

        dom = cards_page(2)
        first = action_to_statement(
            raw_action(scrape_text, dom, "//div[@class='card'][1]/h3[1]")
        )
        second = action_to_statement(
            raw_action(click, dom, "//div[@class='card'][2]/h3[1]")
        )
        assert anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG) == []

    def test_parameterless_rejected(self):
        from repro.lang import go_back

        dom = cards_page(1)
        stmt = action_to_statement(go_back())
        assert anti_unify_statements(stmt, dom, stmt, dom, DEFAULT_CONFIG) == []

    def test_enter_data_value_pivot(self):
        dom = cards_page(1)
        sel = selector_of(raw_path(node_at(dom, "//h3[1]")))
        first = ActionStmt("EnterData", sel, value=X.extend("zips").extend(1))
        second = ActionStmt("EnterData", sel, value=X.extend("zips").extend(2))
        results = anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG)
        value_pivots = [r for r in results if r.var.kind == VAL_VAR]
        assert len(value_pivots) == 1
        pivot = value_pivots[0]
        assert isinstance(pivot.collection, ValuePathsOf)
        assert pivot.collection.path.accessors == ("zips",)
        assert pivot.first == ValuePath(None, ("zips", 1))
        assert pivot.stmt.value.base == pivot.var

    def test_send_keys_different_text_rejected(self):
        dom = cards_page(2)
        sel1 = selector_of(raw_path(node_at(dom, "//div[@class='card'][1]/h3[1]")))
        sel2 = selector_of(raw_path(node_at(dom, "//div[@class='card'][2]/h3[1]")))
        first = ActionStmt("SendKeys", sel1, text="a")
        second = ActionStmt("SendKeys", sel2, text="b")
        assert anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG) == []

    def test_send_keys_same_text_selector_pivot(self):
        dom = cards_page(2)
        sel1 = selector_of(raw_path(node_at(dom, "//div[@class='card'][1]/h3[1]")))
        sel2 = selector_of(raw_path(node_at(dom, "//div[@class='card'][2]/h3[1]")))
        first = ActionStmt("SendKeys", sel1, text="a")
        second = ActionStmt("SendKeys", sel2, text="a")
        results = anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG)
        assert results and all(r.stmt.text == "a" for r in results)


class TestAntiUnifyLoops:
    def _inner_loop(self, dom, card_index):
        """A loop over the phone divs of one card (contrived but nested)."""
        var = fresh_var(SEL_VAR)
        base = selector_of(raw_path(node_at(dom, f"//div[@class='card'][{card_index}]")))
        return ForEachSelector(
            var,
            ChildrenOf(base, Predicate("div", "class", "phone")),
            (ActionStmt("ScrapeText", Selector(var, ())),),
        )

    def test_sibling_loops_lift_to_nested(self):
        dom = cards_page(3)
        first = self._inner_loop(dom, 1)
        second = self._inner_loop(dom, 2)
        results = anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG)
        assert results
        lifted = results[0]
        assert isinstance(lifted.stmt, ForEachSelector)
        assert not lifted.stmt.collection.base.is_concrete

    def test_different_bodies_rejected(self):
        dom = cards_page(3)
        first = self._inner_loop(dom, 1)
        var = fresh_var(SEL_VAR)
        second = ForEachSelector(
            var,
            ChildrenOf(
                selector_of(raw_path(node_at(dom, "//div[@class='card'][2]"))),
                Predicate("div", "class", "phone"),
            ),
            (ActionStmt("ScrapeLink", Selector(var, ())),),
        )
        assert anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG) == []

    def test_different_predicates_rejected(self):
        dom = cards_page(3)
        first = self._inner_loop(dom, 1)
        var = fresh_var(SEL_VAR)
        second = ForEachSelector(
            var,
            ChildrenOf(
                selector_of(raw_path(node_at(dom, "//div[@class='card'][2]"))),
                Predicate("h3"),
            ),
            (ActionStmt("ScrapeText", Selector(var, ())),),
        )
        assert anti_unify_statements(first, dom, second, dom, DEFAULT_CONFIG) == []

    def test_value_loops_lift(self):
        dom = cards_page(1)
        sel = selector_of(raw_path(node_at(dom, "//h3[1]")))

        def value_loop(row):
            var = fresh_var(VAL_VAR)
            return ForEachValue(
                var,
                ValuePathsOf(ValuePath(None, ("rows", row, "cells"))),
                (ActionStmt("EnterData", sel, value=ValuePath(var, ())),),
            )

        results = anti_unify_statements(
            value_loop(1), dom, value_loop(2), dom, DEFAULT_CONFIG
        )
        assert len(results) == 1
        lifted = results[0]
        assert isinstance(lifted.stmt, ForEachValue)
        assert lifted.collection.path.accessors == ("rows",)
