"""Parity of index-backed vs legacy ancestor-walk candidate enumeration.

The ``use_index_enumeration`` flag must be behaviour-preserving: both
paths have to produce the *same* candidate lists in the *same* order —
anything else would change speculation order and, through the per-span
caps, the synthesized programs.  These tests pin that contract three
ways: exhaustively over the generated benchmark sites, property-based
over random DOMs, and end-to-end over incremental synthesis sessions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks.suite import benchmark_by_id
from repro.dom import E, raw_path, resolve
from repro.lang import EMPTY_DATA
from repro.lang.ast import canonical_program
from repro.synth.alternatives import (
    alternative_selectors,
    decompositions,
    relative_step_candidates,
)
from repro.synth.config import DEFAULT_CONFIG, no_index_enumeration_config
from repro.synth.synthesizer import Synthesizer

from helpers import cards_page, scrape_cards_trace

#: One benchmark per site family (news, match, wiki, numbered jobs,
#: plain lists, forum, next-button jobs, catalog, sectioned, fixed
#: store) — the generated sites whose selector shapes the enumeration
#: actually sees.
FAMILY_SAMPLE = ("b1", "b6", "b11", "b9", "b12", "b16", "b38", "b41", "b50", "b33")


def recorded_queries(bid):
    """Distinct (selector, snapshot) pairs a benchmark's trace poses."""
    recording = benchmark_by_id(bid).record()
    pairs = []
    seen = set()
    for position, action in enumerate(recording.actions):
        if action.selector is None:
            continue
        key = (action.selector, id(recording.snapshots[position]))
        if key not in seen:
            seen.add(key)
            pairs.append((action.selector, recording.snapshots[position]))
    return pairs


@pytest.mark.parametrize("bid", FAMILY_SAMPLE)
@pytest.mark.parametrize("use_alternatives", [True, False])
def test_benchmark_parity(bid, use_alternatives):
    for selector, dom in recorded_queries(bid):
        for token_predicates in (False, True):
            indexed = decompositions(
                selector,
                dom,
                use_alternatives=use_alternatives,
                token_predicates=token_predicates,
                use_index_enumeration=True,
            )
            legacy = decompositions(
                selector,
                dom,
                use_alternatives=use_alternatives,
                token_predicates=token_predicates,
                use_index_enumeration=False,
            )
            assert indexed == legacy  # same set AND same ranking order
        assert alternative_selectors(
            selector, dom, use_alternatives, use_index_enumeration=True
        ) == alternative_selectors(
            selector, dom, use_alternatives, use_index_enumeration=False
        )


@pytest.mark.parametrize("bid", FAMILY_SAMPLE[:4])
def test_benchmark_relative_parity(bid):
    for selector, dom in recorded_queries(bid):
        target = resolve(selector, dom)
        if target is None:
            continue
        base = target
        while base is not None:
            if base is not target:
                for token_predicates in (False, True):
                    assert relative_step_candidates(
                        base,
                        target,
                        token_predicates=token_predicates,
                        use_index_enumeration=True,
                    ) == relative_step_candidates(
                        base,
                        target,
                        token_predicates=token_predicates,
                        use_index_enumeration=False,
                    )
            base = base.parent


TAGS = ("div", "span", "li", "h3")
CLASSES = ("", "card", "row", "row extra", "meta")


@st.composite
def dom_trees(draw, max_depth=3):
    """Random small frozen pages (multi-token classes included)."""

    def node(depth):
        tag = draw(st.sampled_from(TAGS))
        cls = draw(st.sampled_from(CLASSES))
        attrs = {"class": cls} if cls else {}
        children = []
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                children.append(node(depth + 1))
        return E(tag, attrs, *children)

    body = node(0)
    return E("html", E("body", body)).freeze()


class TestRandomDomParity:
    @given(dom_trees(), st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_decompositions_agree_for_every_node(
        self, root, use_alternatives, token_predicates
    ):
        for node in root.iter_subtree():
            selector = raw_path(node)
            indexed = decompositions(
                selector,
                root,
                use_alternatives=use_alternatives,
                token_predicates=token_predicates,
                use_index_enumeration=True,
            )
            legacy = decompositions(
                selector,
                root,
                use_alternatives=use_alternatives,
                token_predicates=token_predicates,
                use_index_enumeration=False,
            )
            assert indexed == legacy

    @given(dom_trees(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_relative_candidates_agree_for_root_anchors(self, root, token_predicates):
        for node in root.iter_subtree():
            if node is root:
                continue
            assert relative_step_candidates(
                root, node, token_predicates=token_predicates, use_index_enumeration=True
            ) == relative_step_candidates(
                root, node, token_predicates=token_predicates, use_index_enumeration=False
            )


class TestSynthesizerParity:
    def test_sessions_agree_program_for_program(self):
        dom = cards_page(6)
        actions, snapshots = scrape_cards_trace(dom, 4)
        indexed = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        legacy = Synthesizer(EMPTY_DATA, no_index_enumeration_config())
        for cut in range(1, len(actions) + 1):
            r_indexed = indexed.synthesize(actions[:cut], snapshots[: cut + 1])
            r_legacy = legacy.synthesize(actions[:cut], snapshots[: cut + 1])
            assert [canonical_program(p) for p in r_indexed.programs] == [
                canonical_program(p) for p in r_legacy.programs
            ]
            assert [str(a) for a in r_indexed.predictions] == [
                str(a) for a in r_legacy.predictions
            ]
        assert r_indexed.stats.enum_indexed > 0
        assert r_indexed.stats.enum_fallback == 0
        assert r_legacy.stats.enum_indexed == 0

    def test_interleaved_sessions_attribute_their_own_index_builds(self):
        # two sessions over different sites, alternating calls: each
        # call reports exactly the builds its own snapshots forced.
        # Recording the traces resolves selectors (which would pre-build
        # the index), so each session gets a fresh clone of its page.
        actions_a, _ = scrape_cards_trace(cards_page(4), 3)
        actions_b, _ = scrape_cards_trace(cards_page(5), 3)
        dom_a = cards_page(4).clone().freeze()
        dom_b = cards_page(5).clone().freeze()
        snaps_a = [dom_a] * (len(actions_a) + 1)
        snaps_b = [dom_b] * (len(actions_b) + 1)
        session_a = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        session_b = Synthesizer(EMPTY_DATA, DEFAULT_CONFIG)
        first_a = session_a.synthesize(actions_a[:2], snaps_a[:3]).stats
        first_b = session_b.synthesize(actions_b[:2], snaps_b[:3]).stats
        assert first_a.index_builds == 1  # one shared snapshot per site
        assert first_b.index_builds == 1
        # extending over the already-indexed snapshots forces nothing new
        second_a = session_a.synthesize(actions_a, snaps_a).stats
        assert second_a.index_builds == 0
