"""Tests for JSON serialization of recordings, actions, and programs."""

import io
import json

import pytest

from repro.benchmarks import benchmark_by_id
from repro.io import (
    action_from_json,
    action_to_json,
    dom_from_json,
    dom_to_json,
    dump,
    load,
    program_from_json,
    program_to_json,
    recording_from_json,
    recording_to_json,
)
from repro.lang import (
    EMPTY_DATA,
    X,
    canonical_program,
    click,
    enter_data,
    go_back,
    parse_program,
    scrape_text,
    send_keys,
)
from repro.dom import E, page, parse_selector
from repro.semantics import DOMTrace, actions_consistent
from repro.synth import Synthesizer
from repro.util import ParseError


class TestDomJson:
    def test_round_trip_structure(self):
        dom = page(
            E("div", {"class": "card", "id": "one"},
              E("h3", text="hello"), E("p", text="world")),
        )
        rebuilt = dom_from_json(dom_to_json(dom))
        assert rebuilt.structural_key() == dom.structural_key()
        assert rebuilt.frozen

    def test_missing_tag_rejected(self):
        with pytest.raises(ParseError):
            dom_from_json({"attrs": {}})

    def test_minimal_node(self):
        payload = dom_to_json(E("br"))
        assert payload == {"tag": "br"}


class TestActionJson:
    @pytest.mark.parametrize(
        "action",
        [
            click(parse_selector("//a[1]")),
            scrape_text(parse_selector("/html[1]/body[1]/div[2]/h3[1]")),
            send_keys(parse_selector("//input[@name='q'][1]"), "hello, world"),
            enter_data(parse_selector("//input[1]"), X.extend("rows").extend(3).extend("zip")),
            go_back(),
        ],
    )
    def test_round_trip(self, action):
        assert action_from_json(action_to_json(action)) == action

    def test_missing_kind_rejected(self):
        with pytest.raises(ParseError):
            action_from_json({"selector": "//a[1]"})

    def test_bad_accessor_rejected(self):
        with pytest.raises(ParseError):
            action_from_json(
                {"kind": "EnterData", "selector": "//a[1]", "path": [None]}
            )


class TestProgramJson:
    def test_round_trip(self):
        program = parse_program(
            "foreach r in Dscts(/, div[@class='card']) do\n  ScrapeText(r//h3[1])"
        )
        rebuilt = program_from_json(program_to_json(program))
        assert canonical_program(rebuilt) == canonical_program(program)

    def test_missing_program_key(self):
        with pytest.raises(ParseError):
            program_from_json({"version": 1})


class TestRecordingJson:
    def test_round_trip_preserves_synthesis_behavior(self):
        benchmark = benchmark_by_id("b73")
        recording = benchmark.record()
        rebuilt = recording_from_json(recording_to_json(recording))
        assert [str(a) for a in rebuilt.actions] == [str(a) for a in recording.actions]
        assert rebuilt.outputs == recording.outputs
        # synthesis from the reloaded demonstration behaves identically
        cut = 4
        original = Synthesizer(EMPTY_DATA).synthesize(*recording.prefix(cut))
        reloaded = Synthesizer(EMPTY_DATA).synthesize(*rebuilt.prefix(cut))
        assert original.best_prediction is not None
        assert actions_consistent(
            original.best_prediction, reloaded.best_prediction, rebuilt.snapshots[cut]
        )

    def test_snapshot_sharing_is_compact(self):
        benchmark = benchmark_by_id("b73")  # single page: 1 unique snapshot
        payload = recording_to_json(benchmark.record())
        assert len(payload["snapshots"]) == 1
        assert len(payload["snapshot_indices"]) == benchmark.record().length + 1

    def test_shared_snapshots_rebuilt_shared(self):
        benchmark = benchmark_by_id("b73")
        rebuilt = recording_from_json(recording_to_json(benchmark.record()))
        assert rebuilt.snapshots[0] is rebuilt.snapshots[1]

    def test_version_checked(self):
        payload = recording_to_json(benchmark_by_id("b73").record())
        payload["version"] = 99
        with pytest.raises(ParseError):
            recording_from_json(payload)

    def test_index_count_checked(self):
        payload = recording_to_json(benchmark_by_id("b73").record())
        payload["snapshot_indices"] = payload["snapshot_indices"][:-1]
        with pytest.raises(ParseError):
            recording_from_json(payload)

    def test_index_range_checked(self):
        payload = recording_to_json(benchmark_by_id("b73").record())
        payload["snapshot_indices"] = [99] * len(payload["snapshot_indices"])
        with pytest.raises(ParseError):
            recording_from_json(payload)


class TestFileHelpers:
    def test_dump_load_recording(self):
        recording = benchmark_by_id("b74").record()
        buffer = io.StringIO()
        dump(recording, buffer)
        buffer.seek(0)
        loaded = load(buffer)
        assert loaded.outputs == recording.outputs

    def test_dump_load_program(self):
        program = parse_program("Click(//a[1])\nGoBack")
        buffer = io.StringIO()
        dump(program, buffer)
        buffer.seek(0)
        loaded = load(buffer)
        assert canonical_program(loaded) == canonical_program(program)

    def test_dump_rejects_unknown(self):
        with pytest.raises(TypeError):
            dump(42, io.StringIO())

    def test_load_rejects_non_object(self):
        with pytest.raises(ParseError):
            load(io.StringIO("[1, 2, 3]"))

    def test_json_is_plain(self):
        buffer = io.StringIO()
        dump(benchmark_by_id("b74").record(), buffer)
        payload = json.loads(buffer.getvalue())
        assert payload["version"] == 1
