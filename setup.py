"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs fail.  ``python setup.py develop`` uses this
file instead (mirroring pyproject.toml).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of WebRobot: web RPA via interactive "
        "programming-by-demonstration (PLDI 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["webrobot-repro = repro.cli:main"]},
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
