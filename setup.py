"""Legacy setup shim — pyproject.toml is the packaging source of truth.

Kept only because the offline execution environment has no ``wheel``
package, so PEP 517 editable installs fail; ``python setup.py develop``
uses this file instead.  Keep the metadata mirroring pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of WebRobot: web RPA via interactive "
        "programming-by-demonstration (PLDI 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["webrobot-repro = repro.cli:main"]},
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
