"""Shared configuration for the benchmark harnesses.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation (§7).  They run under ``pytest benchmarks/ --benchmark-only``;
the regenerated artifact is printed to stdout (run with ``-s`` to watch).

Environment knobs honoured across benches:

* ``REPRO_TRACE_CAP``    — prediction tests per benchmark (default 120)
* ``REPRO_TIMEOUT``      — per-test synthesis timeout (default 1.0 s)
* ``REPRO_SUBSET``       — restrict to a comma-separated benchmark list
* ``REPRO_Q2_TRACE_CAP`` — cheaper cap for the 3-variant ablation run
* ``REPRO_Q3_TRACE_CAP`` — task-length cap for interactive sessions
* ``REPRO_Q4_TIMEOUT``   — per-run baseline budget (default 60 s)
* ``REPRO_PAR_*``        — parallel-validation bench subjects/sessions/
  workers/floor (see ``bench_parallel_validation.py``)

``--quick`` shrinks the perf benches (fewer sessions, shorter traces,
slightly relaxed speedup floors) to a CI-smoke-tier footprint; see the
``quick`` fixture.  The full runs remain the source of record.
"""

import os
import sys

import pytest

# `tests/helpers.py` style path setup is not needed here; benches import
# only the installed `repro` package.


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run the perf benches in their reduced CI smoke configuration",
    )


@pytest.fixture
def quick(request):
    """Whether the bench should use its reduced smoke configuration."""
    return request.config.getoption("--quick")


def pytest_configure(config):
    # pytest-benchmark defaults: one round is meaningful for experiment
    # harnesses (they are deterministic end-to-end drivers, not
    # microbenchmarks), so keep calibration off.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
