"""Observability overhead bench: disabled-path cost, behaviour parity.

Runs the same incremental-synthesis workload three ways over the
serial stack:

* **obs off** — the metrics registry kill-switched
  (``REPRO_OBS=0`` semantics via ``set_enabled(False)``) and tracing
  disabled: every instrumentation site reduces to one flag check
  returning a shared null object;
* **metrics on** — the default production path: registry enabled,
  tracing off.  This is the leg the overhead gate measures;
* **tracing on** — spans recorded to the in-memory ring buffer under
  one root trace context, the way ``synthesize --trace-out`` runs.

Three assertions gate the result:

* min-of-N wall clock of the *metrics on* leg is within
  ``REPRO_OBS_MAX_RATIO`` (default 1.05 — the ≤5%% budget) of the
  *obs off* leg; legs are interleaved round-robin so drift hits both;
* the synthesized programs of every call of every session are
  byte-identical across all three legs — observability never changes
  behaviour;
* every span recorded by the *tracing on* leg carries the root's
  trace_id (the propagation invariant the service relies on).

``REPRO_OBS_BIDS`` picks the subjects; ``REPRO_OBS_SESSIONS`` the
sessions per subject; ``REPRO_OBS_ROUNDS`` the min-of-N repeat count.
``--quick`` drops to one subject × two rounds for the CI smoke tier.
"""

import os
import time

from repro.benchmarks.suite import benchmark_by_id
from repro.harness.report import fmt_ms, render_table
from repro.lang.pretty import format_program
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.synth.config import serial_validation_config
from repro.synth.synthesizer import Synthesizer

#: Validation-pressure subjects: enough engine work per call that the
#: measurement reflects the instrumented hot path, not fixture setup.
DEFAULT_BIDS = "b9,b12,b15"


def _subjects(spec):
    """(bid, benchmark, recording) per subject."""
    subjects = []
    for token in spec.split(","):
        bid = token.strip()
        benchmark = benchmark_by_id(bid)
        subjects.append((bid, benchmark, benchmark.record()))
    return subjects


def _run_workload(config, subjects, sessions):
    """Drive ``sessions`` incremental sessions over every subject.

    Returns (wall-clock total, per-session program renderings).
    """
    total = 0.0
    programs = []
    for _ in range(sessions):
        for _, benchmark, recording in subjects:
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            synthesizer = Synthesizer(benchmark.data, config)
            per_call = []
            started = time.perf_counter()
            for cut in range(1, length + 1):
                result = synthesizer.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=10.0
                )
                per_call.append(
                    tuple(format_program(program) for program in result.programs)
                )
            total += time.perf_counter() - started
            programs.append(per_call)
            synthesizer.close()
    return total, programs


def test_obs_overhead_and_parity(benchmark, quick):
    bids = os.environ.get("REPRO_OBS_BIDS", "b9" if quick else DEFAULT_BIDS)
    subjects = _subjects(bids)
    sessions = int(os.environ.get("REPRO_OBS_SESSIONS", "1"))
    rounds = int(os.environ.get("REPRO_OBS_ROUNDS", "2" if quick else "3"))
    max_ratio = float(os.environ.get("REPRO_OBS_MAX_RATIO", "1.05"))
    config = serial_validation_config()
    registry = obs_metrics.registry()

    def leg_off():
        registry.set_enabled(False)
        obs_tracing.disable()
        try:
            return _run_workload(config, subjects, sessions)
        finally:
            registry.set_enabled(True)

    def leg_metrics():
        registry.set_enabled(True)
        obs_tracing.disable()
        return _run_workload(config, subjects, sessions)

    def leg_tracing():
        registry.set_enabled(True)
        obs_tracing.enable()
        root = obs_context.new_root()
        try:
            with obs_context.use(root):
                total, programs = _run_workload(config, subjects, sessions)
            return total, programs, root, list(obs_tracing.events())
        finally:
            obs_tracing.disable()
            obs_tracing.reset()

    def run_all():
        # warm caches and code paths once, untimed
        _run_workload(config, subjects, sessions)
        # interleave the timed legs, alternating order per round, so
        # environmental drift and order bias hit both equally
        off_times, on_times = [], []
        off_programs = on_programs = None
        for round_index in range(rounds):
            legs = [("off", leg_off), ("on", leg_metrics)]
            if round_index % 2:
                legs.reverse()
            for name, leg in legs:
                total, programs = leg()
                if name == "off":
                    off_times.append(total)
                    off_programs = programs
                else:
                    on_times.append(total)
                    on_programs = programs
        traced_total, traced_programs, root, events = leg_tracing()
        return (
            min(off_times),
            min(on_times),
            traced_total,
            off_programs,
            on_programs,
            traced_programs,
            root,
            events,
        )

    (
        off_time,
        on_time,
        traced_time,
        off_programs,
        on_programs,
        traced_programs,
        root,
        events,
    ) = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ratio = on_time / off_time if off_time else 1.0
    benchmark.extra_info["subjects"] = bids
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["ratio"] = round(ratio, 4)
    benchmark.extra_info["spans"] = len(events)
    print()
    print(f"Observability overhead on {len(subjects)} subjects, min of {rounds}")
    print(
        render_table(
            ["variant", "total", "spans recorded"],
            [
                ["obs off", fmt_ms(off_time), 0],
                ["metrics on", fmt_ms(on_time), 0],
                ["tracing on", fmt_ms(traced_time), len(events)],
            ],
        )
    )
    print(f"metrics-on ratio: {ratio:.3f} (budget {max_ratio:.2f})")
    # behaviour preservation first: observability must never change
    # what gets synthesized
    assert off_programs == on_programs, "metrics changed the synthesized programs"
    assert off_programs == traced_programs, "tracing changed the synthesized programs"
    # propagation invariant: every span of the traced leg carries the
    # root's trace_id
    assert events, "the traced leg recorded no spans"
    stray = [e for e in events if e["args"].get("trace_id") != root.trace_id]
    assert not stray, f"{len(stray)} spans lost the root trace_id"
    # the overhead gate proper
    assert ratio <= max_ratio, (
        f"metrics-on leg ran {ratio:.3f}x the disabled leg (budget {max_ratio})"
    )
