"""Service warm-start bench: cross-process execution reuse over one store.

Drives the multi-session workload through the *service* subsystem — one
:class:`~repro.service.sessions.SessionManager` per worker process,
sessions created / fed action by action / closed, exactly what ``repro
serve`` does per request — under three cache architectures, each in a
**fresh child process**:

* **memory** — the in-process backend: every process starts cold
  (today's default, the baseline);
* **file, cold store** — the persistent SQLite backend over an empty
  store: same work, plus the write-through that populates the store;
* **file, warm store** — a *new* process over the store the previous
  process left behind: executions are served from disk instead of the
  evaluator.  This is the ``repro serve`` restart / second-worker case,
  and it only works because every cache key is value-addressed
  (:mod:`repro.engine.keys`) — no object id survives the process
  boundary.

Assertions:

* the synthesized program lists of every call of every session are
  **byte-identical** across all three runs (the backend replays
  recorded outcomes verbatim — a correctness gate, not a tolerance);
* the cold-store run never sees a warm hit; the warm run does;
* the warm-start win clears the floor: cross-process hit rate
  ``warm_hits / (warm_hits + misses)`` ≥ 50% **or** wall-clock speedup
  over the memory baseline ≥ 1.3× (the rate is the architectural
  claim; the speedup depends on how execution-bound the box is);
* an end-to-end leg boots a real ``repro serve`` worker process over
  the warm store, drives one session through the thin HTTP client, and
  checks it synthesizes the same final candidates with warm hits.

``REPRO_SERVICE_BIDS`` picks the subjects (``+`` suffix = scaled
instance); ``REPRO_SERVICE_SESSIONS`` the sessions per subject;
``REPRO_SERVICE_MIN_SPEEDUP`` / ``REPRO_SERVICE_MIN_RATE`` the floors.
``--quick`` shrinks the workload for the CI smoke tier.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import replace

from repro.benchmarks.suite import benchmark_by_id
from repro.harness.report import fmt_ms, fmt_pct, render_table
from repro.synth.config import DEFAULT_CONFIG

#: Loop-heavy, execution-dominated subjects (the work the persistent
#: backend actually dedups across processes) — the parallel-validation
#: bench's reasoning applies unchanged.
DEFAULT_BIDS = "b1+,b2+,b5+,b15,b73"


def _subjects(spec):
    """(label, benchmark, recording) per subject; ``+`` = scaled site."""
    subjects = []
    for token in spec.split(","):
        token = token.strip()
        scaled = token.endswith("+")
        bid = token[:-1] if scaled else token
        benchmark = benchmark_by_id(bid)
        recording = benchmark.scaled_recording() if scaled else benchmark.record()
        subjects.append((token, benchmark, recording))
    return subjects


def _drive_sessions(backend, subjects, sessions):
    """Run the workload through a SessionManager; return measurements.

    Runs *inside a child process*.  Every session goes through the
    service surface (create / record-action / close); programs are the
    per-call candidate renderings — the byte-identity evidence.
    """
    from repro.service.sessions import SessionManager

    config = replace(
        DEFAULT_CONFIG,
        shared_cache=True,
        validation_workers=0,
        cache_backend=backend,
    )
    manager = SessionManager(config, timeout=10.0)
    programs = []
    elapsed = 0.0
    for _ in range(sessions):
        for _, benchmark, recording in subjects:
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            started = time.perf_counter()
            sid = manager.create(snapshots[0], data=benchmark.data)
            per_call = []
            for position, action in enumerate(actions):
                manager.record_action(sid, action, snapshots[position + 1])
                per_call.append(
                    tuple(
                        item.program for item in manager.candidates(sid).candidates
                    )
                )
            manager.close(sid)
            elapsed += time.perf_counter() - started
            programs.append(per_call)
    totals = manager.stats()["totals"]
    return {
        "elapsed": elapsed,
        "programs": programs,
        "warm_hits": totals["warm_start_hits"],
        "hits": totals["cache_hits"],
        "misses": totals["cache_misses"],
    }


def _child(backend, store_dir, spec, sessions, pipe):
    """Child-process entry: isolate caches, drive, ship results back."""
    os.environ["REPRO_CACHE_DIR"] = store_dir
    from repro.engine.cache import reset_process_cache
    from repro.service.backends import flush_backends, reset_backends

    reset_process_cache()
    reset_backends()
    try:
        result = _drive_sessions(backend, _subjects(spec), sessions)
        flush_backends()  # os._exit skips atexit: push buffered entries out
        pipe.send(result)
    finally:
        pipe.close()


def _run_child(backend, store_dir, spec, sessions):
    context = multiprocessing.get_context("fork")
    parent_end, child_end = context.Pipe()
    process = context.Process(
        target=_child, args=(backend, store_dir, spec, sessions, child_end)
    )
    process.start()
    child_end.close()
    try:
        result = parent_end.recv()
    finally:
        process.join()
    assert process.exitcode == 0, f"{backend} child exited {process.exitcode}"
    return result


def _serve_leg(store_dir, recording, data, reference_final):
    """Boot a real `repro serve` worker over the warm store; verify it."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = store_dir
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--backend", "file", "--timeout", "10",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        line = process.stdout.readline().strip()
        assert "listening on" in line, f"unexpected server banner: {line!r}"
        url = line.split()[-1]
        from repro.service.client import ServiceClient

        with ServiceClient(url, timeout=120.0) as client:
            assert client.health()
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            sid = client.create_session(snapshots[0], data=data)
            proposed = None
            for position, action in enumerate(actions):
                proposed = client.record_action(sid, action, snapshots[position + 1])
            served_final = tuple(
                item.program for item in client.candidates(sid).candidates
            )
            stats = client.stats()
            client.close_session(sid)
        assert served_final == reference_final, (
            "served programs diverged from the in-process run"
        )
        assert stats["backend"] == "file"
        return proposed.stats.warm_start_hits, stats
    finally:
        process.terminate()
        process.wait(timeout=30)


def test_service_warm_start(benchmark, quick):
    spec = os.environ.get(
        "REPRO_SERVICE_BIDS", "b1+,b15" if quick else DEFAULT_BIDS
    )
    sessions = int(os.environ.get("REPRO_SERVICE_SESSIONS", "2" if quick else "4"))
    min_speedup = float(os.environ.get("REPRO_SERVICE_MIN_SPEEDUP", "1.3"))
    min_rate = float(os.environ.get("REPRO_SERVICE_MIN_RATE", "0.5"))
    subjects = _subjects(spec)  # validates the spec before forking

    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as store_dir:

        def run_trio():
            memory = _run_child("memory", store_dir, spec, sessions)
            cold = _run_child("file", store_dir, spec, sessions)
            warm = _run_child("file", store_dir, spec, sessions)
            return memory, cold, warm

        memory, cold, warm = benchmark.pedantic(run_trio, rounds=1, iterations=1)

        lookups = warm["warm_hits"] + warm["misses"]
        rate = warm["warm_hits"] / lookups if lookups else 0.0
        speedup = memory["elapsed"] / warm["elapsed"] if warm["elapsed"] else 0.0
        benchmark.extra_info["subjects"] = spec
        benchmark.extra_info["sessions"] = sessions
        benchmark.extra_info["memory_seconds"] = round(memory["elapsed"], 4)
        benchmark.extra_info["cold_seconds"] = round(cold["elapsed"], 4)
        benchmark.extra_info["warm_seconds"] = round(warm["elapsed"], 4)
        benchmark.extra_info["warm_hits"] = warm["warm_hits"]
        benchmark.extra_info["warm_rate"] = round(rate, 3)
        benchmark.extra_info["speedup"] = round(speedup, 2)
        print()
        print(
            f"Service warm start on {len(subjects)} subjects × {sessions} "
            f"sessions (fresh process per run, one store)"
        )
        print(
            render_table(
                ["run", "total", "warm hits", "misses"],
                [
                    ["memory backend (cold)", fmt_ms(memory["elapsed"]),
                     memory["warm_hits"], memory["misses"]],
                    ["file backend, cold store", fmt_ms(cold["elapsed"]),
                     cold["warm_hits"], cold["misses"]],
                    ["file backend, warm store", fmt_ms(warm["elapsed"]),
                     warm["warm_hits"], warm["misses"]],
                ],
            )
        )
        print(
            f"cross-process hit rate: {fmt_pct(rate)}; "
            f"speedup vs memory: {speedup:.2f}x"
        )

        # correctness first: byte-identical programs across architectures
        assert memory["programs"] == cold["programs"], (
            "the write-through backend changed the synthesized programs"
        )
        assert memory["programs"] == warm["programs"], (
            "warm-started synthesis changed the synthesized programs"
        )
        assert memory["warm_hits"] == 0, "memory backend cannot warm-start"
        assert cold["warm_hits"] == 0, "an empty store cannot warm-start"
        assert warm["warm_hits"] > 0, "the warm store never served a hit"
        assert rate >= min_rate or speedup >= min_speedup, (
            f"no warm-start win: rate {rate:.2f} < {min_rate} and "
            f"speedup {speedup:.2f}x < {min_speedup}x"
        )

        # end-to-end: a real `repro serve` worker over the same store
        label, bench_subject, recording = subjects[-1]
        reference_final = memory["programs"][len(subjects) - 1][-1]
        served_warm_hits, stats = _serve_leg(
            store_dir, recording, bench_subject.data.value, reference_final
        )
        benchmark.extra_info["served_warm_hits"] = served_warm_hits
        print(
            f"served leg ({label}): final call warm hits {served_warm_hits}, "
            f"backend {stats['backend']}, "
            f"persisted {stats['persisted_bytes']} bytes"
        )
        assert stats["totals"]["warm_start_hits"] > 0, (
            "the served worker never warm-started from the store"
        )
