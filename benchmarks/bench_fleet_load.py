"""Fleet load bench: concurrent sessions against a spawned fleet, with
warm-start-over-the-wire and byte-identity as correctness gates.

Spawns a real fleet — one ``repro cache-serve`` process plus one
``repro serve --workers N`` process whose workers persist through
``remote://`` — then replays suite demonstrations as two waves of
concurrent sessions (:func:`repro.fleet.loadtest.run_loadtest`):

* **seed wave** → worker 0 only; closing each session flushes its
  execution-cache entries to the cache tier;
* **warm wave** → the remaining workers, which have never seen the
  subjects and can warm-start only through the network.

Assertions (gates, not tolerances):

* no session errored and no request surfaced a 5xx;
* every session's final candidate programs are **byte-identical** to an
  in-process :class:`~repro.service.sessions.SessionManager` replaying
  the same demonstration — the fleet tier must not change synthesis;
* the warm wave's remote warm-start rate clears
  ``REPRO_FLEET_MIN_WARM_RATE`` (default 0.5) — the cache tier is
  actually serving across process boundaries, not decorating them;
* the shared keep-alive pool reused at least one connection — the
  satellite win this bench exists to measure.

Reported: p50/p95/p99 per-action latency, throughput, warm rate, pool
reuse counts; the full report lands in ``BENCH_fleet_load.json``
(``REPRO_FLEET_OUT`` overrides).  ``REPRO_FLEET_WORKERS`` /
``REPRO_FLEET_SESSIONS`` / ``REPRO_FLEET_BIDS`` scale the run;
``--quick`` shrinks it to the CI smoke tier.
"""

import os

from repro.fleet.loadtest import FleetHarness, run_loadtest, write_report
from repro.harness.report import fmt_ms, fmt_pct, render_table

DEFAULT_BIDS = "b1,b4"


def test_fleet_load(benchmark, quick):
    spec = os.environ.get("REPRO_FLEET_BIDS", "b1" if quick else DEFAULT_BIDS)
    subjects = [token.strip() for token in spec.split(",") if token.strip()]
    workers = int(os.environ.get("REPRO_FLEET_WORKERS", "2"))
    sessions = int(
        os.environ.get("REPRO_FLEET_SESSIONS", "2" if quick else "4")
    )
    concurrency = int(
        os.environ.get("REPRO_FLEET_CONCURRENCY", "2" if quick else "4")
    )
    min_warm_rate = float(os.environ.get("REPRO_FLEET_MIN_WARM_RATE", "0.5"))
    out = os.environ.get("REPRO_FLEET_OUT", "BENCH_fleet_load.json")

    def run():
        with FleetHarness(workers=workers) as fleet:
            return run_loadtest(
                fleet.worker_urls,
                subjects=subjects,
                sessions_per_wave=sessions,
                concurrency=concurrency,
                verify=True,
                cache_url=fleet.cache_url,
            )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    # correctness gates before any perf claims
    assert report.errors == [], f"sessions errored: {report.errors}"
    assert report.verified is True, (
        "fleet candidates diverged from the in-process reference"
    )
    assert report.warm_rate >= min_warm_rate, (
        f"remote warm rate {report.warm_rate:.2f} below {min_warm_rate}"
    )
    assert report.pool.get("reused", 0) > 0, (
        "the keep-alive pool never reused a connection"
    )

    path = write_report(report, out)
    benchmark.extra_info.update(
        subjects=spec,
        workers=workers,
        sessions=sessions * 2,
        calls=report.calls,
        p50_ms=round(report.p50_ms, 1),
        p95_ms=round(report.p95_ms, 1),
        p99_ms=round(report.p99_ms, 1),
        throughput_rps=round(report.throughput_rps, 2),
        warm_rate=round(report.warm_rate, 3),
        pool_reused=report.pool.get("reused", 0),
    )
    print()
    print(
        f"Fleet load: {workers} workers, {sessions} sessions/wave "
        f"× {len(subjects)} subjects (report: {path})"
    )
    print(
        render_table(
            ["metric", "value"],
            [
                ["actions", report.calls],
                ["elapsed", fmt_ms(report.elapsed_s)],
                ["throughput", f"{report.throughput_rps:.1f} rps"],
                ["p50", fmt_ms(report.p50_ms / 1000.0)],
                ["p95", fmt_ms(report.p95_ms / 1000.0)],
                ["p99", fmt_ms(report.p99_ms / 1000.0)],
                ["remote warm rate", fmt_pct(report.warm_rate)],
                ["pool reuse", report.pool.get("reused", 0)],
                ["verified", report.verified],
            ],
        )
    )
