"""Engine-cache bench: memoized vs uncached simulated execution.

Runs the incremental scaling workload (every prefix of a long recorded
demonstration, exactly what the front end does after each user action)
twice: once with the execution engine's caching layers on — the
execution/consistency memo plus the per-snapshot DOM indexes — and once
with both disabled.  Records the wall-clock speedup and the cache hit
rate in the benchmark's JSON (``extra_info``).

The timeout is deliberately generous so call times reflect the work
actually done rather than the deadline; the paper-faithful 1-second
budget would clip both variants to the same ceiling on long traces.

``REPRO_CACHE_BENCH`` picks the subject benchmark;
``REPRO_CACHE_LEN`` bounds the trace length;
``REPRO_CACHE_MIN_SPEEDUP`` adjusts the asserted floor (default 1.5).
``--quick`` halves the trace bound and relaxes the floor to 1.3 for
the CI smoke tier (shared runners are noisy; full runs keep 1.5).
"""

import os

from repro.engine import index as dom_index
from repro.harness.report import fmt_ms, fmt_pct, render_table
from repro.harness.scaling import DEFAULT_BENCHMARK, ScalingSeries, run_scaling
from repro.synth.config import DEFAULT_CONFIG, no_execution_cache_config


def _run_variants(bid: str, max_length: int) -> list[ScalingSeries]:
    cached = run_scaling(
        bid, max_length, timeout=10.0, variants=[("cache on", DEFAULT_CONFIG)]
    )[0]
    previous = dom_index.set_dom_indexes(False)
    try:
        uncached = run_scaling(
            bid,
            max_length,
            timeout=10.0,
            variants=[("cache off", no_execution_cache_config())],
        )[0]
    finally:
        dom_index.set_dom_indexes(previous)
    return [cached, uncached]


def test_engine_cache_speedup(benchmark, quick):
    bid = os.environ.get("REPRO_CACHE_BENCH", DEFAULT_BENCHMARK)
    max_length = int(os.environ.get("REPRO_CACHE_LEN", "40" if quick else "80"))
    min_speedup = float(
        os.environ.get("REPRO_CACHE_MIN_SPEEDUP", "1.3" if quick else "1.5")
    )
    series = benchmark.pedantic(
        _run_variants, args=(bid, max_length), rounds=1, iterations=1
    )
    cached, uncached = series
    speedup = uncached.total_time / cached.total_time if cached.total_time else 0.0
    benchmark.extra_info["benchmark"] = bid
    benchmark.extra_info["calls"] = len(cached.times)
    benchmark.extra_info["cached_seconds"] = round(cached.total_time, 4)
    benchmark.extra_info["uncached_seconds"] = round(uncached.total_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cache_hit_rate"] = round(cached.cache_hit_rate, 4)
    benchmark.extra_info["cache_hits"] = cached.cache_hits
    benchmark.extra_info["cache_misses"] = cached.cache_misses
    benchmark.extra_info["index_builds"] = cached.index_builds
    print()
    print(f"Engine cache on {bid} ({len(cached.times)} incremental calls)")
    print(
        render_table(
            ["variant", "total", "hit rate"],
            [
                [cached.name, fmt_ms(cached.total_time), fmt_pct(cached.cache_hit_rate)],
                [uncached.name, fmt_ms(uncached.total_time), "—"],
            ],
        )
    )
    print(f"speedup: {speedup:.2f}x")
    assert cached.cache_hit_rate > 0.5, "execution cache should serve most lookups"
    assert speedup >= min_speedup
