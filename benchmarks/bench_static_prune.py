"""Static-pruning bench: engine validations saved, programs unchanged.

Runs the multi-session scaling workload — several incremental
demonstration sessions per subject, the same shape as
``bench_parallel_validation.py`` — twice over the serial stack: once
with the static feasibility analysis disabled and once enabled
(:mod:`repro.analysis.feasibility` refuting speculated candidates
before the scheduler dispatches them to the execution engine).

Subjects are validation-pressure benchmarks: demonstrations whose
speculation emits many candidates per pop that Algorithm 3 must then
reject one engine execution at a time — exactly the waste the
emission-NFA refutation eliminates.  (The loop-absorbing news-family
subjects validate almost nothing per pop after the first calls and
would only dilute the measurement.)

Two assertions gate the result:

* the synthesized programs of every call of every session are
  byte-identical with pruning on and off — the refutation is a sound
  filter over candidates validation would reject, never a behaviour
  change;
* the pruned run executes at least 15% fewer engine validations
  (``SynthesisStats.validations``), and the pruned counter accounts
  for the gap.

``REPRO_PRUNE_BIDS`` picks the subjects; ``REPRO_PRUNE_SESSIONS`` the
demonstration sessions per subject; ``REPRO_PRUNE_MIN_REDUCTION``
adjusts the asserted floor (default 0.15).  ``--quick`` drops to one
session per subject for the CI smoke tier.
"""

import os
import time
from dataclasses import replace

from repro.benchmarks.suite import benchmark_by_id
from repro.harness.report import fmt_ms, render_table
from repro.lang.pretty import format_program
from repro.synth.config import no_static_prune_config, serial_validation_config
from repro.synth.synthesizer import Synthesizer

#: Validation-pressure subjects: many speculated candidates per pop,
#: most of which Algorithm 3 rejects (the prunable regime).
DEFAULT_BIDS = "b9,b12,b15,b16,b18,b19,b20"


def _subjects(spec):
    """(bid, benchmark, recording) per subject."""
    subjects = []
    for token in spec.split(","):
        bid = token.strip()
        benchmark = benchmark_by_id(bid)
        subjects.append((bid, benchmark, benchmark.record()))
    return subjects


def _run_workload(config, subjects, sessions):
    """Drive ``sessions`` incremental sessions over every subject.

    Returns total synthesize wall-clock, per-session program renderings
    (the byte-identity evidence), and the validation/pruned counters.
    """
    total = 0.0
    programs = []
    validations = 0
    pruned = 0
    for _ in range(sessions):
        for _, benchmark, recording in subjects:
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            synthesizer = Synthesizer(benchmark.data, config)
            per_call = []
            started = time.perf_counter()
            for cut in range(1, length + 1):
                result = synthesizer.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=10.0
                )
                validations += result.stats.validations
                pruned += result.stats.pruned
                per_call.append(
                    tuple(format_program(program) for program in result.programs)
                )
            total += time.perf_counter() - started
            programs.append(per_call)
            synthesizer.close()
    return total, programs, validations, pruned


def test_static_prune_saves_validations(benchmark, quick):
    subjects = _subjects(os.environ.get("REPRO_PRUNE_BIDS", DEFAULT_BIDS))
    sessions = int(os.environ.get("REPRO_PRUNE_SESSIONS", "1" if quick else "2"))
    min_reduction = float(os.environ.get("REPRO_PRUNE_MIN_REDUCTION", "0.15"))
    base = serial_validation_config()

    def run_pair():
        unpruned = _run_workload(no_static_prune_config(base), subjects, sessions)
        pruned = _run_workload(replace(base, static_prune=True), subjects, sessions)
        return unpruned, pruned

    unpruned, pruned = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    off_time, off_programs, off_validations, off_pruned = unpruned
    on_time, on_programs, on_validations, on_pruned = pruned
    reduction = (
        (off_validations - on_validations) / off_validations
        if off_validations
        else 0.0
    )
    benchmark.extra_info["subjects"] = ",".join(bid for bid, _, _ in subjects)
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["validations_off"] = off_validations
    benchmark.extra_info["validations_on"] = on_validations
    benchmark.extra_info["pruned"] = on_pruned
    benchmark.extra_info["reduction"] = round(reduction, 4)
    print()
    print(
        f"Static pruning on {len(subjects)} subjects × {sessions} sessions"
    )
    print(
        render_table(
            ["variant", "total", "validations run", "statically pruned"],
            [
                ["analysis off", fmt_ms(off_time), off_validations, off_pruned],
                ["analysis on", fmt_ms(on_time), on_validations, on_pruned],
            ],
        )
    )
    print(f"validation reduction: {reduction * 100:.1f}% (floor {min_reduction * 100:.0f}%)")
    # behaviour preservation first: every call of every session must
    # synthesize byte-identical program lists with pruning on and off
    assert off_programs == on_programs, (
        "static pruning changed the synthesized programs"
    )
    assert off_pruned == 0, "the disabled variant must not prune"
    assert on_pruned > 0, "the enabled variant never pruned a candidate"
    assert reduction >= min_reduction
