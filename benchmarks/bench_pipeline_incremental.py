"""Pipelined + resumable incremental synthesis vs the serial stack.

The interactive workload the streaming work targets: one long
demonstration (a wide list scrape, the paper's motivating shape) grown
one action at a time, synthesizing after every action — the
per-keystroke loop a recorder UI drives.  Two variants:

* **serial**: ``serial_validation_config()`` — the ``SerialScheduler``
  loop with resumable loops pinned off.  Byte-exact with the
  pre-pipeline synthesizer; the ablation baseline.
* **pipelined**: ``pipeline_config()`` — the ``PipelineScheduler``
  overlapping next-pop speculation with the current pop's validation
  drain, plus resumable loop execution (continuation entries in the
  execution cache make extension/generalization cost O(new actions)
  instead of O(trace²)).

Three assertions gate the result:

* the synthesized program lists of every call are byte-identical
  between the variants (the pipeline changes the schedule, never the
  output);
* end-to-end wall clock clears the speedup floor (default 1.3×);
* latency stays *flat* as the demonstration grows: the median of the
  last ten calls is within the flatness factor (default 2×) of the
  early-call median — the serial baseline degrades super-linearly on
  the same trace.

``REPRO_PIPE_CARDS`` sets the demonstration width (two actions per
card); ``REPRO_PIPE_MIN_SPEEDUP`` / ``REPRO_PIPE_MAX_LATE_RATIO``
adjust the asserted floors.  ``--quick`` shrinks the trace and relaxes
the floors for the CI smoke tier; the full run is the source of record.
"""

import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import cards_page, scrape_cards_trace  # noqa: E402

from repro.harness.report import fmt_ms, render_table  # noqa: E402
from repro.lang import EMPTY_DATA  # noqa: E402
from repro.lang.pretty import format_program  # noqa: E402
from repro.synth.config import (  # noqa: E402
    pipeline_config,
    serial_validation_config,
)
from repro.synth.synthesizer import Synthesizer  # noqa: E402


def _drive_session(config, actions, snapshots):
    """Synthesize after every action; return (total, programs, latencies, stats)."""
    synthesizer = Synthesizer(EMPTY_DATA, config)
    programs = []
    latencies = []
    resume_hits = 0
    started = time.perf_counter()
    for cut in range(1, len(actions) + 1):
        call_started = time.perf_counter()
        result = synthesizer.synthesize(
            actions[:cut], snapshots[: cut + 1], timeout=10.0
        )
        latencies.append(time.perf_counter() - call_started)
        resume_hits += result.stats.cache_resume_hits
        programs.append(tuple(format_program(p) for p in result.programs))
    total = time.perf_counter() - started
    synthesizer.close()
    return total, programs, latencies, resume_hits


def _latency_profile(latencies):
    """(early median, late median): calls 10–40 vs the last ten.

    The first few calls precede loop formation (no extension work yet),
    so "early" starts once the loop exists and the steady interactive
    regime has begun.
    """
    early = statistics.median(latencies[10:40])
    late = statistics.median(latencies[-10:])
    return early, late


def test_pipeline_incremental_speedup(benchmark, quick):
    cards = int(os.environ.get("REPRO_PIPE_CARDS", "40" if quick else "50"))
    min_speedup = float(
        os.environ.get("REPRO_PIPE_MIN_SPEEDUP", "1.15" if quick else "1.3")
    )
    max_late_ratio = float(
        os.environ.get("REPRO_PIPE_MAX_LATE_RATIO", "3.0" if quick else "2.0")
    )
    dom = cards_page(cards)
    actions, snapshots = scrape_cards_trace(dom, cards)

    def run_pair():
        # untimed warm-up builds the snapshot index both variants see,
        # so the timed runs differ only in scheduler + resume machinery
        _drive_session(serial_validation_config(), actions, snapshots)
        serial = _drive_session(serial_validation_config(), actions, snapshots)
        pipelined = _drive_session(pipeline_config(), actions, snapshots)
        return serial, pipelined

    serial, pipelined = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    serial_time, serial_programs, serial_latencies, serial_resume = serial
    pipe_time, pipe_programs, pipe_latencies, pipe_resume = pipelined
    speedup = serial_time / pipe_time if pipe_time else 0.0
    serial_early, serial_late = _latency_profile(serial_latencies)
    pipe_early, pipe_late = _latency_profile(pipe_latencies)
    pipe_ratio = pipe_late / pipe_early if pipe_early else 0.0
    serial_ratio = serial_late / serial_early if serial_early else 0.0

    benchmark.extra_info["cards"] = cards
    benchmark.extra_info["calls"] = len(actions)
    benchmark.extra_info["serial_seconds"] = round(serial_time, 4)
    benchmark.extra_info["pipeline_seconds"] = round(pipe_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["serial_late_ratio"] = round(serial_ratio, 2)
    benchmark.extra_info["pipeline_late_ratio"] = round(pipe_ratio, 2)
    benchmark.extra_info["resume_hits"] = pipe_resume

    print()
    print(f"Incremental synthesis over a {len(actions)}-action demonstration")
    print(
        render_table(
            ["variant", "total", "early call", "late call", "late/early"],
            [
                [
                    "serial, no resume",
                    fmt_ms(serial_time),
                    fmt_ms(serial_early),
                    fmt_ms(serial_late),
                    f"{serial_ratio:.2f}x",
                ],
                [
                    "pipelined + resume",
                    fmt_ms(pipe_time),
                    fmt_ms(pipe_early),
                    fmt_ms(pipe_late),
                    f"{pipe_ratio:.2f}x",
                ],
            ],
        )
    )
    print(f"speedup: {speedup:.2f}x; loop resume hits: {pipe_resume}")

    # behaviour preservation first: every call must synthesize
    # byte-identical program lists under both variants
    assert serial_programs == pipe_programs, (
        "the pipeline changed the synthesized programs"
    )
    assert serial_resume == 0, "the serial baseline must not take resume hits"
    assert pipe_resume > 0, "resumable loops never engaged"
    assert speedup >= min_speedup
    # streaming latency: the pipelined variant stays interactive as the
    # demonstration grows
    assert pipe_ratio <= max_late_ratio
