"""Regenerates Figure 12 (Q1): per-benchmark accuracy, synthesis-time
quartiles, and intended-final-program marks, plus the §7.1 aggregates.

The paper's headline numbers for comparison: 68% of benchmarks reach
≥95% accuracy within 0.5 s per prediction; 91% end with the intended
program; final programs average 6 statements (max 18); 32 benchmarks
need doubly-nested loops and 6 need three or more levels.

Full run over all 76 benchmarks; restrict with ``REPRO_SUBSET`` or lower
``REPRO_TRACE_CAP`` for a quicker pass.
"""

from repro.harness.q1 import run_q1


def test_q1_figure12(benchmark):
    report = benchmark.pedantic(run_q1, rounds=1, iterations=1)
    print()
    print(report.render_figure12())
    print()
    print(report.render_figure12_chart())
    print()
    print(report.render_aggregates())
    # the engine must automate a solid majority of the suite
    assert report.solved_intended >= 0.75 * len(report.results)
