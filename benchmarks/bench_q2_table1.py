"""Regenerates Table 1 (Q2): the ablation study.

Runs the Q1 protocol under three configurations — full-fledged, no
alternative selectors, no incremental synthesis — and prints benchmarks
solved, median/average accuracy, and average time per test next to the
paper's values (69/38/45 solved; 98%/88%/96% median accuracy;
90%/57%/72% average accuracy; 23/54/32 ms).

This is three full Q1 passes; ``REPRO_Q2_TRACE_CAP`` (default 50) and
``REPRO_Q2_TIMEOUT`` (default 0.5 s) keep the default run affordable —
for full-fidelity numbers use ``REPRO_Q2_TRACE_CAP=120 REPRO_Q2_TIMEOUT=1``.
"""

import os

from repro.harness.q2 import run_q2


def _cap() -> int:
    return int(os.environ.get("REPRO_Q2_TRACE_CAP", "50"))


def _timeout() -> float:
    return float(os.environ.get("REPRO_Q2_TIMEOUT", "0.5"))


def test_q2_table1(benchmark):
    report = benchmark.pedantic(
        run_q2,
        kwargs={"trace_cap": _cap(), "timeout": _timeout()},
        rounds=1,
        iterations=1,
    )
    print()
    print(report.render_table1())
    full, no_selector, no_incremental = report.variants
    # the ablation ordering the paper reports must reproduce
    assert full.solved >= no_incremental.solved >= no_selector.solved
    assert full.solved > no_selector.solved
    assert full.average_accuracy >= no_incremental.average_accuracy
    assert no_incremental.average_accuracy > no_selector.average_accuracy
