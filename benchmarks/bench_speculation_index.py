"""Speculation-index bench: bucket-driven vs ancestor-walk enumeration.

Runs the incremental scaling workload — every prefix of a recorded
demonstration, session after session, exactly what the front end does
for each user on a shared site — over the news-family benchmarks, once
with ``use_index_enumeration`` on (candidates read off the per-snapshot
bucket layer of :class:`repro.engine.index.SnapshotIndex`) and once
with the legacy ancestor-walk enumeration.  On these sites execution is
almost all engine-cache hits, so speculation's candidate enumeration is
the dominant cost and the index pays directly.

Two assertions gate the result:

* the synthesized programs of every call are byte-identical between
  the variants (the flag is behaviour-preserving, not approximate);
* the wall-clock speedup clears the floor (default 1.3×).

``REPRO_SPEC_BIDS`` picks the subject benchmarks;
``REPRO_SPEC_SESSIONS`` the demonstration sessions per benchmark;
``REPRO_SPEC_LEN`` bounds the per-session trace length;
``REPRO_SPEC_MIN_SPEEDUP`` adjusts the asserted floor (default 1.3).
``--quick`` shrinks sessions for the CI smoke tier and relaxes the
floor to 1.15 (shared CI runners are noisy; the full run keeps 1.3).
"""

import os

from repro.harness.report import fmt_ms, fmt_pct, render_table
from repro.harness.scaling import run_scaling
from repro.synth.config import DEFAULT_CONFIG, no_index_enumeration_config

#: News-family subjects: moderate DOMs, loop-heavy traces, and no
#: pathological worklist blowups that would drown enumeration time.
DEFAULT_BIDS = "b1,b2,b4,b5,b13"


def _run_variant(name, config, bids, sessions, max_length):
    """Total synthesize wall-clock + per-call programs over the workload."""
    total = 0.0
    enum_indexed = enum_fallback = 0
    programs = []
    for _ in range(sessions):
        for bid in bids:
            series = run_scaling(
                bid,
                max_length,
                timeout=10.0,
                variants=[(name, config)],
                collect_programs=True,
            )[0]
            total += series.total_time
            enum_indexed += series.enum_indexed
            enum_fallback += series.enum_fallback
            programs.append(series.programs)
    return total, programs, enum_indexed, enum_fallback


def _run_pair(bids, sessions, max_length):
    indexed = _run_variant("index on", DEFAULT_CONFIG, bids, sessions, max_length)
    legacy = _run_variant(
        "index off", no_index_enumeration_config(), bids, sessions, max_length
    )
    return indexed, legacy


def test_speculation_index_speedup(benchmark, quick):
    bids = os.environ.get("REPRO_SPEC_BIDS", DEFAULT_BIDS).split(",")
    sessions = int(os.environ.get("REPRO_SPEC_SESSIONS", "4" if quick else "8"))
    max_length = int(os.environ.get("REPRO_SPEC_LEN", "120"))
    min_speedup = float(
        os.environ.get("REPRO_SPEC_MIN_SPEEDUP", "1.15" if quick else "1.3")
    )
    indexed, legacy = benchmark.pedantic(
        _run_pair, args=(bids, sessions, max_length), rounds=1, iterations=1
    )
    indexed_time, indexed_programs, enum_indexed, indexed_fallback = indexed
    legacy_time, legacy_programs, _, enum_fallback = legacy
    speedup = legacy_time / indexed_time if indexed_time else 0.0
    benchmark.extra_info["benchmarks"] = ",".join(bids)
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["indexed_seconds"] = round(indexed_time, 4)
    benchmark.extra_info["legacy_seconds"] = round(legacy_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["indexed_enumerations"] = enum_indexed
    benchmark.extra_info["legacy_enumerations"] = enum_fallback
    print()
    print(
        f"Speculation enumeration on {','.join(bids)} "
        f"({sessions} sessions per benchmark)"
    )
    print(
        render_table(
            ["variant", "total", "enumerations"],
            [
                ["index on", fmt_ms(indexed_time), enum_indexed],
                ["index off", fmt_ms(legacy_time), enum_fallback],
            ],
        )
    )
    print(f"speedup: {speedup:.2f}x")
    # behaviour preservation first: every call of every session must
    # synthesize byte-identical program lists under both variants
    assert indexed_programs == legacy_programs, (
        "index-backed enumeration changed the synthesized programs"
    )
    assert enum_indexed > 0, "the indexed variant never took the indexed path"
    share = enum_indexed / (enum_indexed + indexed_fallback)
    print(f"indexed enumeration share: {fmt_pct(share)}")
    assert share == 1.0, "frozen benchmark snapshots should always be indexable"
    assert speedup >= min_speedup
