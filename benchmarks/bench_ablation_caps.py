"""Ablation bench: the bounded-search caps (DESIGN.md design choices).

The paper mentions "several additional optimizations" without detail;
this repo's analogues are the search caps (``max_rewrites_per_span``,
``max_loop_bodies_per_span``, ``max_store_tuples``,
``max_parametrize_variants``).  This bench quantifies them on a
representative suite slice: the defaults must not lose intended
programs relative to the loose configuration.

Restrict further with ``REPRO_ABLATION_SUBSET``; lower
``REPRO_ABLATION_CAP`` for a quicker pass.
"""

import os

from repro.harness.ablations import (
    DEFAULT_SUBSET,
    render_variants,
    run_caps_ablation,
)


def _subset():
    raw = os.environ.get("REPRO_ABLATION_SUBSET", "").strip()
    if not raw:
        return DEFAULT_SUBSET
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _cap():
    return int(os.environ.get("REPRO_ABLATION_CAP", "40"))


def test_caps_ablation(benchmark):
    outcomes = benchmark.pedantic(
        run_caps_ablation, args=(_subset(), _cap()), rounds=1, iterations=1
    )
    print()
    print(render_variants("Search-cap ablation", outcomes))
    by_name = {outcome.name: outcome for outcome in outcomes}
    default = next(o for name, o in by_name.items() if name.startswith("default"))
    loose = next(o for name, o in by_name.items() if name.startswith("loose"))
    # the default caps must not cost intended programs vs. unbounded-ish
    assert default.solved >= loose.solved
