"""Extension bench: replay survival under page drift.

Quantifies the two robustness mechanisms — the paper's selector search
(attribute-anchored synthesized programs) and this repo's selector
repair (fingerprint re-anchoring) — across the drift ladder of
:mod:`repro.harness.drift`.  The headline shape asserted here:

* recorded raw paths fail from the first layout change onward, and
  repair rescues them at every level;
* synthesized programs survive pure layout drift unrepaired;
* repair never makes any outcome worse.
"""

from repro.harness.drift import DRIFT_LEVELS, render_drift, run_drift_study


def test_repair_drift(benchmark):
    rows = benchmark.pedantic(run_drift_study, rounds=1, iterations=1)
    print()
    print(render_drift(rows))
    assert [row.level for row in rows] == list(DRIFT_LEVELS)
    by_level = {row.level: row for row in rows}
    # clean replay is perfect for everyone
    clean = by_level["clean"]
    assert clean.brittle_plain.verdict == "ok"
    assert clean.synth_plain.verdict == "ok"
    # raw paths break at the first banner; repair rescues them everywhere
    assert by_level["banner"].brittle_plain.verdict == "failed"
    assert all(row.brittle_repaired.succeeded for row in rows)
    # attribute anchors survive pure layout drift without repair
    assert by_level["banner"].synth_plain.verdict == "ok"
    # repair never degrades an outcome
    for row in rows:
        assert row.brittle_repaired.succeeded >= row.brittle_plain.succeeded
        assert row.synth_repaired.succeeded >= row.synth_plain.succeeded
