"""Scaling bench: per-call synthesis time vs. trace length (§5.4).

Shows the shape behind Table 1's "No incremental" row: the incremental
engine's per-call cost stays roughly flat as the demonstration grows,
while the from-scratch engine re-explores the whole trace on every
call.  The assertion compares the two engines on the *final* trace
bucket, where the gap is widest.

``REPRO_SCALING_BENCH`` picks the subject benchmark;
``REPRO_SCALING_LEN`` bounds the trace length.
"""

import os

from repro.harness.scaling import DEFAULT_BENCHMARK, render_scaling, run_scaling


def test_incremental_scaling(benchmark):
    bid = os.environ.get("REPRO_SCALING_BENCH", DEFAULT_BENCHMARK)
    max_length = int(os.environ.get("REPRO_SCALING_LEN", "80"))
    series = benchmark.pedantic(
        run_scaling, args=(bid, max_length), rounds=1, iterations=1
    )
    print()
    print(render_scaling(series))
    incremental, scratch = series
    # compare mean time over the last bucket: incremental must win
    last_inc = incremental.bucket_means(10)[-1][1]
    last_scratch = scratch.bucket_means(10)[-1][1]
    assert last_inc <= last_scratch
