"""Session-migration bench: export on worker A, resume on worker B, exactly.

De-stickies the service: a live demonstration session is serialized
into a protocol :class:`~repro.protocol.messages.SessionSnapshot`
(canonical JSON via the protocol codec), shipped across a **real
process boundary**, imported into a fresh
:class:`~repro.service.sessions.SessionManager`, and then *both*
workers continue the remainder of the demonstration independently:

* **source worker** (child process 1) — drives the first ``cut``
  actions of each subject, exports the session (wire bytes), keeps the
  non-evicted copy and finishes the trace: its per-call candidate
  lists are the reference;
* **target worker** (child process 2, fresh caches, memory backend —
  nothing shared but the wire bytes) — imports each snapshot, which
  replays the prefix through a fresh synthesizer, then finishes the
  trace the same way.

Assertions (correctness gates, not tolerances):

* every subject's post-migration per-call candidate lists are
  **byte-identical** between the two workers — the acceptance bar of
  the migration design (the rewrite store is value-addressed end to
  end, so replay reconstructs it exactly);
* the import replay cost stays proportional: resuming is bounded by
  ``REPRO_MIG_MAX_RESUME_RATIO`` × the source's cost of reaching the
  same prefix (default 3× — replay re-pays the incremental calls, it
  must not blow up asymptotically).

Reported: snapshot wire bytes per subject, export / import / continue
wall-clocks.  ``REPRO_MIG_BIDS`` picks the subjects (``+`` = scaled
instance), ``REPRO_MIG_CUT_FRACTION`` where the hand-off happens;
``--quick`` shrinks the workload for the CI smoke tier.
"""

import multiprocessing
import os
import time
from dataclasses import replace

from repro.benchmarks.suite import benchmark_by_id
from repro.harness.report import fmt_ms, render_table
from repro.synth.config import DEFAULT_CONFIG

DEFAULT_BIDS = "b1+,b5+,b15,b73"


def _subjects(spec):
    subjects = []
    for token in spec.split(","):
        token = token.strip()
        scaled = token.endswith("+")
        bid = token[:-1] if scaled else token
        benchmark = benchmark_by_id(bid)
        recording = benchmark.scaled_recording() if scaled else benchmark.record()
        subjects.append((token, benchmark, recording))
    return subjects


def _manager():
    from repro.service.sessions import SessionManager

    config = replace(
        DEFAULT_CONFIG, shared_cache=True, validation_workers=0, cache_backend="memory"
    )
    return SessionManager(config, timeout=10.0)


def _continue_trace(manager, sid, actions, snapshots, cut):
    """Feed actions[cut:]; return the per-call candidate lists."""
    per_call = []
    for position in range(cut, len(actions)):
        manager.record_action(sid, actions[position], snapshots[position + 1])
        per_call.append(
            tuple(item.program for item in manager.candidates(sid).candidates)
        )
    return per_call


def _source_worker(spec, cut_fraction, pipe):
    """Child 1: demonstrate, export mid-trace, keep going (reference)."""
    from repro.engine.cache import reset_process_cache
    from repro.protocol.codec import DEFAULT_CODEC
    from repro.service.backends import reset_backends

    reset_process_cache()
    reset_backends()
    try:
        manager = _manager()
        results = []
        for label, benchmark, recording in _subjects(spec):
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            cut = max(1, int(length * cut_fraction))
            started = time.perf_counter()
            sid = manager.create(snapshots[0], data=benchmark.data)
            for position in range(cut):
                manager.record_action(sid, actions[position], snapshots[position + 1])
            prefix_elapsed = time.perf_counter() - started
            started = time.perf_counter()
            wire = DEFAULT_CODEC.encode(manager.export_snapshot(sid, evict=False))
            export_elapsed = time.perf_counter() - started
            per_call = _continue_trace(manager, sid, actions, snapshots, cut)
            manager.close(sid)
            results.append(
                {
                    "label": label,
                    "cut": cut,
                    "length": length,
                    "wire": wire,
                    "wire_bytes": len(wire),
                    "prefix_elapsed": prefix_elapsed,
                    "export_elapsed": export_elapsed,
                    "per_call": per_call,
                }
            )
        pipe.send(results)
    finally:
        pipe.close()


def _target_worker(spec, handoffs, pipe):
    """Child 2: fresh process, import each snapshot, finish the trace."""
    from repro.engine.cache import reset_process_cache
    from repro.protocol.codec import DEFAULT_CODEC
    from repro.service.backends import reset_backends

    reset_process_cache()
    reset_backends()
    try:
        manager = _manager()
        results = []
        for (label, benchmark, recording), handoff in zip(_subjects(spec), handoffs):
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            started = time.perf_counter()
            snapshot = DEFAULT_CODEC.decode(handoff["wire"])
            sid = manager.import_snapshot(snapshot).session
            import_elapsed = time.perf_counter() - started
            per_call = _continue_trace(manager, sid, actions, snapshots, handoff["cut"])
            manager.close(sid)
            results.append(
                {
                    "label": label,
                    "import_elapsed": import_elapsed,
                    "per_call": per_call,
                }
            )
        pipe.send(results)
    finally:
        pipe.close()


def _run_child(target, args):
    context = multiprocessing.get_context("fork")
    parent_end, child_end = context.Pipe()
    process = context.Process(target=target, args=args + (child_end,))
    process.start()
    child_end.close()
    try:
        result = parent_end.recv()
    finally:
        process.join()
    assert process.exitcode == 0, f"migration child exited {process.exitcode}"
    return result


def test_session_migration_round_trip(benchmark, quick):
    spec = os.environ.get("REPRO_MIG_BIDS", "b1+,b15" if quick else DEFAULT_BIDS)
    cut_fraction = float(os.environ.get("REPRO_MIG_CUT_FRACTION", "0.6"))
    max_resume_ratio = float(os.environ.get("REPRO_MIG_MAX_RESUME_RATIO", "3.0"))
    subjects = _subjects(spec)  # validates the spec before forking

    def run_pair():
        exported = _run_child(_source_worker, (spec, cut_fraction))
        handoffs = [
            {"wire": item["wire"], "cut": item["cut"]} for item in exported
        ]
        imported = _run_child(_target_worker, (spec, handoffs))
        return exported, imported

    exported, imported = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    rows = []
    total_wire = 0
    for source, target in zip(exported, imported):
        total_wire += source["wire_bytes"]
        rows.append(
            [
                source["label"],
                f"{source['cut']}/{source['length']}",
                f"{source['wire_bytes']}",
                fmt_ms(source["export_elapsed"]),
                fmt_ms(target["import_elapsed"]),
                "yes" if source["per_call"] == target["per_call"] else "NO",
            ]
        )
    print()
    print(f"Session migration over {len(subjects)} subjects (two forked workers)")
    print(
        render_table(
            ["subject", "handoff", "wire bytes", "export", "import+replay", "exact"],
            rows,
        )
    )

    benchmark.extra_info["subjects"] = spec
    benchmark.extra_info["wire_bytes_total"] = total_wire
    benchmark.extra_info["import_seconds"] = round(
        sum(item["import_elapsed"] for item in imported), 4
    )

    # the acceptance bar: byte-identical candidates after the hand-off
    for source, target in zip(exported, imported):
        assert source["per_call"] == target["per_call"], (
            f"{source['label']}: migrated session diverged from the source worker"
        )
        assert source["per_call"], (
            f"{source['label']}: no post-migration calls — raise the trace length"
        )
    # resuming is a replay of the prefix: it must stay proportional
    prefix_cost = sum(item["prefix_elapsed"] for item in exported)
    resume_cost = sum(item["import_elapsed"] for item in imported)
    assert resume_cost <= max_resume_ratio * max(prefix_cost, 1e-9), (
        f"import replay cost {resume_cost:.3f}s exceeds "
        f"{max_resume_ratio}x the source prefix cost {prefix_cost:.3f}s"
    )
