"""Regenerates the §7.3 (Q3) end-to-end numbers.

Two parts: the simulated 8-participant user study (5 tasks in 3 phases;
the paper reports all participants completing every task after
demonstrating 6-10 actions, with per-phase demonstration times of
16.88 s / 19.44 s / 64.44 s), and the full-suite end-to-end sweep (the
paper solves 76% of benchmarks interactively).
"""

from repro.harness.q3 import run_study, run_sweep


def test_q3_user_study(benchmark):
    outcome = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print()
    print(outcome.render())
    assert outcome.completed_all == outcome.participants
    # phase 3 (data entry) costs the most demonstration effort, as in the
    # paper's measured seconds
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(outcome.demo_seconds[3]) > mean(outcome.demo_seconds[1])


def test_q3_end_to_end_sweep(benchmark):
    outcome = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(outcome.render())
    solved_fraction = len(outcome.solved) / len(outcome.reports)
    assert solved_fraction >= 0.70  # paper: 76%
