"""Ablation bench: ranking strategies (Algorithm 1 line 8).

The paper ranks generalizing programs smallest-first (§4: "we aim to
synthesize a smallest program in size").  This bench compares that
default against the alternative strategies in
:mod:`repro.synth.ranking` on a representative suite slice: the paper's
choice must solve at least as many benchmarks as any alternative.

Restrict with ``REPRO_ABLATION_SUBSET`` / ``REPRO_ABLATION_CAP``.
"""

import os

from repro.harness.ablations import (
    DEFAULT_SUBSET,
    render_variants,
    run_ranking_ablation,
)


def _subset():
    raw = os.environ.get("REPRO_ABLATION_SUBSET", "").strip()
    if not raw:
        return DEFAULT_SUBSET
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _cap():
    return int(os.environ.get("REPRO_ABLATION_CAP", "40"))


def test_ranking_ablation(benchmark):
    outcomes = benchmark.pedantic(
        run_ranking_ablation, args=(_subset(), _cap()), rounds=1, iterations=1
    )
    print()
    print(render_variants("Ranking-strategy ablation", outcomes))
    by_name = {outcome.name: outcome for outcome in outcomes}
    size = by_name["ranking=size"]
    assert size.solved == max(outcome.solved for outcome in outcomes)
