"""Regenerates §7's "Statistics of benchmarks" block.

Checks that the suite reproduces the paper's corpus statistics exactly
(76 benchmarks; 29 entry / 60 navigation / 33 pagination / 28 all-three).
"""

from repro.harness.stats import render_statistics, suite_statistics


def test_suite_statistics(benchmark):
    stats = benchmark(suite_statistics)
    print()
    print(render_statistics())
    assert stats["total"] == 76
    assert stats["entry"] == 29
    assert stats["navigation"] == 60
    assert stats["pagination"] == 33
    assert stats["entry+extraction+navigation"] == 28
