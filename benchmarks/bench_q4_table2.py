"""Regenerates Table 2 (Q4): the egg-style baseline comparison.

Nine selector-loop-only benchmarks; for each, the baseline and WebRobot
are measured at the shortest trace length yielding an intended program,
plus the cost of saturating the complete trace.  The paper's shape must
hold: the correct-by-construction baseline is competitive on single
loops, orders of magnitude slower on doubly-nested ones (b12-class), and
exhausts its budget on three-level nesting (b56), while WebRobot stays
within one second throughout.
"""

from repro.harness.q4 import run_q4


def test_q4_table2(benchmark):
    report = benchmark.pedantic(run_q4, rounds=1, iterations=1)
    print()
    print(report.render_table2())
    by_bid = {row.bid: row for row in report.rows}
    flat_full = [by_bid[bid].baseline.full_time for bid in ("b73", "b74", "b75", "b76")]
    nested = by_bid["b12"].baseline
    triple = by_bid["b56"].baseline
    # single loops: well under a second on the full trace
    assert all(value is not None and value < 1.0 for value in flat_full)
    # doubly-nested: at least an order of magnitude costlier than flat
    assert nested.full_timed_out or nested.full_time > 10 * max(flat_full)
    # three-level: near or past the budget
    assert triple.full_timed_out or triple.full_time > 30.0
    # WebRobot solves every benchmark within its 1s budget
    for row in report.rows:
        assert row.webrobot.shortest_length is not None
        assert row.webrobot.shortest_time < 1.5
