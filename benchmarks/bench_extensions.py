"""Extension bench: the paper's published failure cases, solved opt-in.

§7.1 names two mechanisms WebRobot does not support: disjunctive
selectors (b6, "match or match highlight") and numbered pagination
(b9/b10, timesjobs-style page-number blocks).  This repo implements
both as opt-in extensions (``use_token_predicates``,
``use_numbered_pagination``).  The bench verifies the published
behaviour is preserved by default (the cases stay unsolved) and that
each extension turns its case into an intended program.

Lower ``REPRO_EXT_CAP`` for a quicker pass; ``REPRO_EXT_SUBSET``
restricts the cases.
"""

import os

from repro.harness.ablations import render_extensions, run_extensions_report


def _cap():
    return int(os.environ.get("REPRO_EXT_CAP", "60"))


def _bids():
    raw = os.environ.get("REPRO_EXT_SUBSET", "").strip()
    if not raw:
        return None
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def test_extensions_solve_published_failures(benchmark):
    cases = benchmark.pedantic(
        run_extensions_report, args=(_cap(), 1.0, _bids()), rounds=1, iterations=1
    )
    print()
    print(render_extensions(cases))
    for case in cases:
        # the published system's failure is reproduced by default ...
        assert not case.baseline.intended, f"{case.bid} unexpectedly solved by default"
        # ... and the matching extension solves it
        assert case.extended.intended, f"{case.bid} not solved with extension"
