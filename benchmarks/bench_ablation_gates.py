"""Ablation bench: the shape-periodicity gates (DESIGN.md design choice).

:mod:`repro.synth.periodicity` adds two prefilters to Algorithm 2's span
enumeration.  The pivot gate precomputes a necessary condition of the
anti-unification rules, so it must solve exactly the same benchmarks as
the ungated engine; the window gate prunes harder and is measured here
for its accuracy/time trade.

Restrict with ``REPRO_ABLATION_SUBSET``; lower ``REPRO_ABLATION_CAP``
for a quicker pass.
"""

import os

from repro.harness.ablations import (
    DEFAULT_SUBSET,
    render_variants,
    run_gates_ablation,
)


def _subset():
    raw = os.environ.get("REPRO_ABLATION_SUBSET", "").strip()
    if not raw:
        return DEFAULT_SUBSET
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _cap():
    return int(os.environ.get("REPRO_ABLATION_CAP", "40"))


def test_gates_ablation(benchmark):
    outcomes = benchmark.pedantic(
        run_gates_ablation, args=(_subset(), _cap()), rounds=1, iterations=1
    )
    print()
    print(render_variants("Shape-gate ablation", outcomes))
    by_name = {outcome.name: outcome for outcome in outcomes}
    gated = next(o for name, o in by_name.items() if name.startswith("pivot gate"))
    ungated = by_name["no gates"]
    # the pivot gate is behaviour-preserving: same benchmarks solved
    assert gated.solved == ungated.solved
    assert gated.mean_accuracy == ungated.mean_accuracy
