"""Parallel-validation bench: the concurrent synthesis stack vs serial.

Runs the multi-session scaling workload — several demonstration
sessions per benchmark, session after session, exactly what a server
replaying many users over the same sites does — under the two
architectures this repo supports:

* **serial**: the legacy stack, pinned explicitly — the
  ``SerialScheduler`` validation loop over a private per-session
  execution cache (``serial_validation_config``).  Byte-exact with the
  pre-scheduler synthesizer.
* **concurrent**: ``PoolScheduler`` validation workers over the
  process-level ``SharedExecutionCache``
  (``parallel_validation_config``) — sessions intern their snapshots
  and reuse each other's executions, so every session after the first
  runs mostly out of cache.

Subjects are the news-family scaled instances plus two plain-list
benchmarks: loop-heavy traces whose synthesis time is dominated by
simulated execution — the work the shared cache actually dedups across
sessions.  (Speculation-dominated subjects like the store-entry family
share almost nothing and would only dilute the measurement.)

Two assertions gate the result:

* the synthesized programs of every call of every session are
  byte-identical between the architectures (the scheduler's rank-order
  merge and the shared cache are behaviour-preserving, not
  approximate);
* the wall-clock speedup clears the floor (default 1.4×), and the
  concurrent variant actually shared (cross-session hits > 0).

An untimed warm-up session runs first so both variants are measured in
the same warm-snapshot-index regime (indexes attach to the recorded
snapshots, which all in-process sessions view).

``REPRO_PAR_BIDS`` picks the subjects (``+`` suffix = scaled instance);
``REPRO_PAR_SESSIONS`` the demonstration sessions per subject;
``REPRO_PAR_WORKERS`` the pool width (default 4);
``REPRO_PAR_MIN_SPEEDUP`` adjusts the asserted floor (default 1.4).
``--quick`` halves the sessions and relaxes the floor to 1.25 for the
CI smoke tier (shared runners are noisy; full runs keep 1.4).
"""

import os
import time

from repro.benchmarks.suite import benchmark_by_id
from repro.engine.cache import process_cache, reset_process_cache
from repro.harness.report import fmt_ms, render_table
from repro.lang.pretty import format_program
from repro.synth.config import parallel_validation_config, serial_validation_config
from repro.synth.synthesizer import Synthesizer

#: News-family scaled instances (execution-dominated, loop-heavy) plus
#: two plain-list benchmarks whose pops are large enough to engage the
#: pool's wave dispatch.
DEFAULT_BIDS = "b1+,b2+,b4+,b5+,b13+,b15,b73"


def _subjects(spec):
    """(label, benchmark, recording) per subject; ``+`` = scaled site."""
    subjects = []
    for token in spec.split(","):
        token = token.strip()
        scaled = token.endswith("+")
        bid = token[:-1] if scaled else token
        benchmark = benchmark_by_id(bid)
        recording = benchmark.scaled_recording() if scaled else benchmark.record()
        subjects.append((token, benchmark, recording))
    return subjects


def _run_workload(config, subjects, sessions, collect_programs=True):
    """Drive ``sessions`` incremental sessions over every subject.

    Returns total synthesize wall-clock, per-session program renderings
    (the byte-identity evidence), total cross-session cache hits, and
    the worker count the schedulers reported.
    """
    total = 0.0
    programs = []
    cross_hits = 0
    workers = 0
    for _ in range(sessions):
        for _, benchmark, recording in subjects:
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            synthesizer = Synthesizer(benchmark.data, config)
            per_call = []
            started = time.perf_counter()
            for cut in range(1, length + 1):
                result = synthesizer.synthesize(
                    actions[:cut], snapshots[: cut + 1], timeout=10.0
                )
                cross_hits += result.stats.cache_cross_session_hits
                workers = max(workers, result.stats.validation_workers)
                if collect_programs:
                    per_call.append(
                        tuple(format_program(program) for program in result.programs)
                    )
            total += time.perf_counter() - started
            programs.append(per_call)
            synthesizer.close()
    return total, programs, cross_hits, workers


def test_parallel_validation_speedup(benchmark, quick):
    subjects = _subjects(os.environ.get("REPRO_PAR_BIDS", DEFAULT_BIDS))
    sessions = int(os.environ.get("REPRO_PAR_SESSIONS", "4" if quick else "8"))
    pool_workers = int(os.environ.get("REPRO_PAR_WORKERS", "4"))
    min_speedup = float(
        os.environ.get("REPRO_PAR_MIN_SPEEDUP", "1.25" if quick else "1.4")
    )

    def run_pair():
        # untimed warm-up: build the snapshot indexes + enum memos both
        # variants will see, so the timed runs differ only in scheduler
        # and cache architecture
        _run_workload(
            serial_validation_config(), subjects, 1, collect_programs=False
        )
        serial = _run_workload(serial_validation_config(), subjects, sessions)
        reset_process_cache()
        concurrent = _run_workload(
            parallel_validation_config(workers=pool_workers), subjects, sessions
        )
        shared = process_cache()
        interned = shared.interned_snapshots
        reset_process_cache()
        return serial, concurrent, interned

    serial, concurrent, interned = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    serial_time, serial_programs, serial_cross, serial_workers = serial
    pool_time, pool_programs, pool_cross, reported_workers = concurrent
    speedup = serial_time / pool_time if pool_time else 0.0
    benchmark.extra_info["subjects"] = ",".join(label for label, _, _ in subjects)
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["serial_seconds"] = round(serial_time, 4)
    benchmark.extra_info["concurrent_seconds"] = round(pool_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cross_session_hits"] = pool_cross
    benchmark.extra_info["interned_snapshots"] = interned
    print()
    print(
        f"Concurrent synthesis on {len(subjects)} subjects × {sessions} sessions "
        f"({pool_workers} validation workers)"
    )
    print(
        render_table(
            ["variant", "total", "cross-session hits"],
            [
                ["serial, private caches", fmt_ms(serial_time), serial_cross],
                ["pool, shared cache", fmt_ms(pool_time), pool_cross],
            ],
        )
    )
    print(f"speedup: {speedup:.2f}x; interned snapshots: {interned}")
    # behaviour preservation first: every call of every session must
    # synthesize byte-identical program lists under both architectures
    assert serial_programs == pool_programs, (
        "concurrent validation changed the synthesized programs"
    )
    assert serial_workers == 0, "the serial variant must not use a pool"
    assert reported_workers == pool_workers, "the pool variant never pooled"
    assert serial_cross == 0, "private caches cannot share across sessions"
    assert pool_cross > 0, "the shared cache never served a cross-session hit"
    assert speedup >= min_speedup
