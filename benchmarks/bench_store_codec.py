"""Store codec bench: binary payloads + tiered persistence, gated.

Drives the multi-session service workload (the same create /
record-action / close loop as ``bench_service_sessions``) through the
persistent :class:`~repro.service.backends.FileBackend` under the two
payload codecs and both tier policies, each run in a **fresh child
process** so every measurement starts cold:

* **memory** — the in-process backend: the cold baseline every
  persistent run has to beat;
* **file / json, untiered** — the ablation fallback: JSON rows,
  everything persisted;
* **file / binary, untiered** — the binary codec over the same
  workload: the codec-only footprint comparison;
* **file / binary, tiered** (the default config) — cheap exact
  interior entries are recomputed instead of stored: the tier-policy
  footprint comparison;
* **file / binary, warm** — a new process over the tiered store: the
  restart case the store exists for;
* **file / binary, warm, private caches** — same warm store, but
  every session keeps a *private* in-memory cache: the backend sees
  repeat probes and answers them from its decoded-entry LRU.

Assertions (floors env-overridable, see below):

* the synthesized program lists of every call of every session are
  **byte-identical** across all six runs — neither the codec, the
  tier policy, nor the cache topology may change synthesis output;
* the binary store is smaller than the JSON store on disk;
* tiering cuts the untiered binary footprint by ≥ 1.5×;
* the warm file-backend run beats the cold in-memory baseline
  (speedup ≥ 1.0× **or** cross-process hit rate ≥ 50%, the same
  escape hatch as the service bench: the rate is the architectural
  claim, the wall-clock depends on how execution-bound the box is);
* the warm run's decoded-entry cache absorbed repeat probes — the
  mechanism that keeps the decode cost off the hot path;
* a codec microbenchmark over the store's own payload corpus
  (decoded, then re-aliased through one shared
  :class:`~repro.service.backends.StepInterner`, exactly how live
  writes share step rows): both codecs decode to equal values,
  binary is ≥ 4× smaller, and its pure-Python encode+decode
  round-trip stays within a bounded CPU factor of C ``json``.

The codec's trade is stated, not hidden: a pure-Python token loop
cannot out-run CPython's C ``json`` on round-trip CPU (measured
~1.5–2× slower per payload), so the win is **bytes** — ~8× smaller
rows and wire frames — plus the decoded-entry LRU and the tier
policy, which keep decodes off the repeat-read path entirely.  The
CPU ceiling asserted here is a *regression* gate, not a speed claim.

``REPRO_CODEC_BIDS`` picks the subjects (``+`` suffix = scaled
instance); ``REPRO_CODEC_SESSIONS`` the sessions per subject;
``REPRO_CODEC_MIN_SPEEDUP`` / ``REPRO_CODEC_MIN_RATE`` /
``REPRO_CODEC_MIN_FOOTPRINT`` / ``REPRO_CODEC_MIN_SIZE_RATIO`` /
``REPRO_CODEC_MAX_CPU_RATIO`` the floors and ceiling;
``REPRO_CODEC_REPS`` the microbench repetitions (min-of-N, codecs
interleaved per rep).  ``--quick`` shrinks the workload for the CI
smoke tier.
"""

import multiprocessing
import os
import sqlite3
import tempfile
import time
from dataclasses import replace

from repro.benchmarks.suite import benchmark_by_id
from repro.harness.report import fmt_bytes, fmt_ms, fmt_pct, render_table
from repro.protocol.codec import CODECS, sniff_codec
from repro.service.backends import (
    CONSISTENCY,
    StepInterner,
    entry_from_payload,
    entry_to_payload,
)
from repro.synth.config import DEFAULT_CONFIG

#: Loop-heavy, execution-dominated subjects — the entries the store
#: actually holds are dominated by their loop-body executions.
DEFAULT_BIDS = "b1+,b2+,b15,b73"


def _subjects(spec):
    """(label, benchmark, recording) per subject; ``+`` = scaled site."""
    subjects = []
    for token in spec.split(","):
        token = token.strip()
        scaled = token.endswith("+")
        bid = token[:-1] if scaled else token
        benchmark = benchmark_by_id(bid)
        recording = benchmark.scaled_recording() if scaled else benchmark.record()
        subjects.append((token, benchmark, recording))
    return subjects


def _drive_sessions(backend, subjects, sessions, shared=True):
    """Run the workload through a SessionManager; return measurements.

    ``shared=False`` gives every session a *private* in-memory cache
    over the one store — the multi-tenant shape where the backend sees
    repeat probes and its decoded-entry LRU earns its keep.
    """
    from repro.service.sessions import SessionManager

    config = replace(
        DEFAULT_CONFIG,
        shared_cache=True if shared else None,
        validation_workers=0,
        cache_backend=backend,
    )
    manager = SessionManager(config, timeout=10.0, share_cache=shared)
    programs = []
    elapsed = 0.0
    for _ in range(sessions):
        for _, benchmark, recording in subjects:
            length = recording.length - 1
            actions, snapshots = recording.prefix(length)
            started = time.perf_counter()
            sid = manager.create(snapshots[0], data=benchmark.data)
            per_call = []
            for position, action in enumerate(actions):
                manager.record_action(sid, action, snapshots[position + 1])
                per_call.append(
                    tuple(
                        item.program for item in manager.candidates(sid).candidates
                    )
                )
            manager.close(sid)
            elapsed += time.perf_counter() - started
            programs.append(per_call)
    stats = manager.stats()
    totals = stats["totals"]
    return {
        "elapsed": elapsed,
        "programs": programs,
        "warm_hits": totals["warm_start_hits"],
        "misses": totals["cache_misses"],
        "codec": stats.get("codec"),
        "decode_hits": stats.get("decode_hits", 0),
        "decode_bytes": stats.get("decode_bytes", 0),
    }


def _child(backend, store_dir, env, spec, sessions, shared, pipe):
    """Child-process entry: isolate caches and env, drive, ship results."""
    os.environ["REPRO_CACHE_DIR"] = store_dir
    os.environ.update(env)
    from repro.engine.cache import reset_process_cache
    from repro.service.backends import flush_backends, resolve_backend, reset_backends

    reset_process_cache()
    reset_backends()
    try:
        result = _drive_sessions(backend, _subjects(spec), sessions, shared)
        if backend == "file":
            backend_obj = resolve_backend("file")
            result["tier_skips"] = backend_obj.tier_skips
            result["decode_hits"] = backend_obj.decode_hits
            result["decode_bytes"] = backend_obj.decode_bytes
        flush_backends()  # os._exit skips atexit: push buffered entries out
        pipe.send(result)
    finally:
        pipe.close()


def _run_child(backend, store_dir, env, spec, sessions, shared=True):
    context = multiprocessing.get_context("fork")
    parent_end, child_end = context.Pipe()
    process = context.Process(
        target=_child,
        args=(backend, store_dir, env, spec, sessions, shared, child_end),
    )
    process.start()
    child_end.close()
    try:
        result = parent_end.recv()
    finally:
        process.join()
    assert process.exitcode == 0, f"{backend} child exited {process.exitcode}"
    return result


def _store_rows(store_dir):
    """Every ``(kind, payload-blob)`` row of a store, plus byte totals."""
    connection = sqlite3.connect(os.path.join(store_dir, "execution-cache.sqlite"))
    try:
        rows = [
            (kind, bytes(blob))
            for kind, blob in connection.execute(
                "SELECT kind, payload FROM entries ORDER BY rowid"
            )
        ]
        count, total = connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
        ).fetchone()
    finally:
        connection.close()
    return rows, int(count), int(total)


def _corpus(rows):
    """The store's payload dicts, re-aliased the way live writes are.

    Entry payloads round-trip through one shared
    :class:`StepInterner`, so repeated selector steps share one row
    list per payload set — the aliasing :func:`entry_to_payload`
    produces in production, which the binary encoder's identity memo
    turns into back-references.
    """
    interner = StepInterner()
    payloads = []
    for kind, blob in rows:
        payload = sniff_codec(blob).decode_payload(blob)
        if kind != CONSISTENCY:
            payload = entry_to_payload(
                *entry_from_payload(payload, interner), interner
            )
        payloads.append(payload)
    return payloads


def _measure_codecs(payloads, reps):
    """Min-of-N encode/decode seconds and total bytes per codec.

    The codecs are interleaved within each repetition so clock drift
    and cache warmth hit both equally; min-of-N keeps scheduler noise
    out of the comparison.
    """
    results = {
        name: {"encode": float("inf"), "decode": float("inf"), "bytes": 0}
        for name in ("json", "binary")
    }
    decoded = {}
    for _ in range(reps):
        for name in ("json", "binary"):
            codec = CODECS[name]
            slot = results[name]
            started = time.perf_counter()
            blobs = [codec.encode_payload(payload) for payload in payloads]
            slot["encode"] = min(slot["encode"], time.perf_counter() - started)
            started = time.perf_counter()
            decoded[name] = [codec.decode_payload(blob) for blob in blobs]
            slot["decode"] = min(slot["decode"], time.perf_counter() - started)
            slot["bytes"] = sum(len(blob) for blob in blobs)
    assert decoded["json"] == decoded["binary"], (
        "the codecs decoded the same payloads to different values"
    )
    assert decoded["binary"] == payloads, "binary round-trip changed a payload"
    return results


def test_store_codec(benchmark, quick):
    spec = os.environ.get(
        "REPRO_CODEC_BIDS", "b1+,b15" if quick else DEFAULT_BIDS
    )
    sessions = int(os.environ.get("REPRO_CODEC_SESSIONS", "1" if quick else "2"))
    reps = int(os.environ.get("REPRO_CODEC_REPS", "5" if quick else "9"))
    min_speedup = float(os.environ.get("REPRO_CODEC_MIN_SPEEDUP", "1.0"))
    min_rate = float(os.environ.get("REPRO_CODEC_MIN_RATE", "0.5"))
    min_footprint = float(os.environ.get("REPRO_CODEC_MIN_FOOTPRINT", "1.5"))
    min_size_ratio = float(os.environ.get("REPRO_CODEC_MIN_SIZE_RATIO", "4.0"))
    max_cpu_ratio = float(os.environ.get("REPRO_CODEC_MAX_CPU_RATIO", "3.0"))
    subjects = _subjects(spec)  # validates the spec before forking

    untiered = {"REPRO_STORE_TIERING": "0"}
    tiered = {"REPRO_STORE_TIERING": "1"}
    with tempfile.TemporaryDirectory(prefix="repro-codec-bench-") as root:
        dir_json = os.path.join(root, "json")
        dir_full = os.path.join(root, "binary-full")
        dir_tiered = os.path.join(root, "binary-tiered")

        def run_legs():
            memory = _run_child("memory", root, {}, spec, sessions)
            json_full = _run_child(
                "file", dir_json, {"REPRO_CODEC": "json", **untiered},
                spec, sessions,
            )
            bin_full = _run_child(
                "file", dir_full, {"REPRO_CODEC": "binary", **untiered},
                spec, sessions,
            )
            bin_tiered = _run_child(
                "file", dir_tiered, {"REPRO_CODEC": "binary", **tiered},
                spec, sessions,
            )
            bin_warm = _run_child(
                "file", dir_tiered, {"REPRO_CODEC": "binary", **tiered},
                spec, sessions,
            )
            # repeat sessions so the store sees the same keys twice —
            # the decoded-entry LRU only earns hits on repeat probes
            bin_reuse = _run_child(
                "file", dir_tiered, {"REPRO_CODEC": "binary", **tiered},
                spec, max(2, sessions), shared=False,
            )
            return memory, json_full, bin_full, bin_tiered, bin_warm, bin_reuse

        memory, json_full, bin_full, bin_tiered, bin_warm, bin_reuse = (
            benchmark.pedantic(run_legs, rounds=1, iterations=1)
        )

        # correctness first: neither the codec nor the tier policy may
        # change what gets synthesized
        for label, run in (
            ("json untiered", json_full),
            ("binary untiered", bin_full),
            ("binary tiered", bin_tiered),
            ("binary warm", bin_warm),
        ):
            assert memory["programs"] == run["programs"], (
                f"the {label} run changed the synthesized programs"
            )
        per_round = memory["programs"][: len(subjects)]
        assert bin_reuse["programs"] == per_round * max(2, sessions), (
            "private per-session caches changed the synthesized programs"
        )
        assert memory["warm_hits"] == 0, "memory backend cannot warm-start"
        assert bin_tiered["warm_hits"] == 0, "an empty store cannot warm-start"
        assert bin_warm["warm_hits"] > 0, "the warm store never served a hit"

        # footprint: codec cut (json vs binary) and tier cut (full vs
        # tiered), both over identical workloads
        full_rows, full_entries, full_bytes = _store_rows(dir_full)
        _, json_entries, json_bytes = _store_rows(dir_json)
        _, tiered_entries, tiered_bytes = _store_rows(dir_tiered)
        codec_ratio = json_bytes / full_bytes if full_bytes else 0.0
        tier_ratio = full_bytes / tiered_bytes if tiered_bytes else 0.0

        # warm start vs the cold in-memory baseline
        lookups = bin_warm["warm_hits"] + bin_warm["misses"]
        rate = bin_warm["warm_hits"] / lookups if lookups else 0.0
        speedup = (
            memory["elapsed"] / bin_warm["elapsed"] if bin_warm["elapsed"] else 0.0
        )

        # codec microbench over the store's own payloads
        micro = _measure_codecs(_corpus(full_rows), reps)
        json_micro, bin_micro = micro["json"], micro["binary"]
        json_total = json_micro["encode"] + json_micro["decode"]
        bin_total = bin_micro["encode"] + bin_micro["decode"]
        micro_size = (
            json_micro["bytes"] / bin_micro["bytes"] if bin_micro["bytes"] else 0.0
        )
        cpu_ratio = bin_total / json_total if json_total else float("inf")

        benchmark.extra_info.update(
            subjects=spec,
            sessions=sessions,
            memory_seconds=round(memory["elapsed"], 4),
            warm_seconds=round(bin_warm["elapsed"], 4),
            speedup=round(speedup, 2),
            warm_rate=round(rate, 3),
            json_store_bytes=json_bytes,
            binary_store_bytes=full_bytes,
            tiered_store_bytes=tiered_bytes,
            codec_ratio=round(codec_ratio, 2),
            tier_ratio=round(tier_ratio, 2),
            tier_skips=bin_tiered.get("tier_skips", 0),
            decode_hits=bin_reuse["decode_hits"],
            micro_size_ratio=round(micro_size, 2),
            micro_cpu_ratio=round(cpu_ratio, 2),
        )
        print()
        print(
            f"Store codec on {len(subjects)} subjects × {sessions} sessions "
            f"(fresh process per leg)"
        )
        print(
            render_table(
                ["leg", "total", "warm hits", "store entries", "store bytes"],
                [
                    ["memory (cold baseline)", fmt_ms(memory["elapsed"]),
                     memory["warm_hits"], "-", "-"],
                    ["file json, untiered", fmt_ms(json_full["elapsed"]),
                     json_full["warm_hits"], json_entries, fmt_bytes(json_bytes)],
                    ["file binary, untiered", fmt_ms(bin_full["elapsed"]),
                     bin_full["warm_hits"], full_entries, fmt_bytes(full_bytes)],
                    ["file binary, tiered", fmt_ms(bin_tiered["elapsed"]),
                     bin_tiered["warm_hits"], tiered_entries,
                     fmt_bytes(tiered_bytes)],
                    ["file binary, warm store", fmt_ms(bin_warm["elapsed"]),
                     bin_warm["warm_hits"], tiered_entries,
                     fmt_bytes(tiered_bytes)],
                ],
            )
        )
        print(
            f"codec footprint: binary {codec_ratio:.2f}x smaller than json; "
            f"tiering: {tier_ratio:.2f}x on top "
            f"({bin_tiered.get('tier_skips', 0)} writes skipped)"
        )
        print(
            f"warm start: {fmt_pct(rate)} hit rate, {speedup:.2f}x vs cold "
            f"memory; private-cache leg's decoded-entry cache served "
            f"{bin_reuse['decode_hits']} hits / "
            f"{fmt_bytes(bin_reuse['decode_bytes'])}"
        )
        print(
            f"codec micro ({len(full_rows)} payloads, min of {reps}): "
            f"binary {micro_size:.2f}x smaller, round-trip CPU "
            f"{cpu_ratio:.2f}x json "
            f"(encode {bin_micro['encode'] / json_micro['encode']:.2f}x, "
            f"decode {bin_micro['decode'] / json_micro['decode']:.2f}x)"
        )

        assert full_bytes < json_bytes, (
            f"binary store ({full_bytes}B) not smaller than json "
            f"({json_bytes}B)"
        )
        assert tier_ratio >= min_footprint, (
            f"tiering cut the store only {tier_ratio:.2f}x "
            f"(< {min_footprint}x): {full_bytes}B -> {tiered_bytes}B"
        )
        assert bin_tiered.get("tier_skips", 0) > 0, (
            "the tier policy never skipped a write"
        )
        assert speedup >= min_speedup or rate >= min_rate, (
            f"warm start lost to cold memory: speedup {speedup:.2f}x "
            f"< {min_speedup}x and rate {rate:.2f} < {min_rate}"
        )
        assert bin_reuse["decode_hits"] > 0, (
            "the decoded-entry cache never absorbed a repeat probe even "
            "with private per-session caches over one warm store"
        )
        assert micro_size >= min_size_ratio, (
            f"binary only {micro_size:.2f}x smaller than json "
            f"(< {min_size_ratio}x)"
        )
        assert cpu_ratio <= max_cpu_ratio, (
            f"binary round-trip CPU regressed to {cpu_ratio:.2f}x json "
            f"(> {max_cpu_ratio}x): encode {bin_micro['encode']:.4f}s + "
            f"decode {bin_micro['decode']:.4f}s vs json {json_total:.4f}s"
        )
